"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path


def write_result(results_dir: Path, name: str, title: str, body: str) -> None:
    """Persist one benchmark's table so EXPERIMENTS.md numbers are traceable."""
    text = f"{title}\n{'=' * len(title)}\n\n{body}\n"
    (results_dir / f"{name}.txt").write_text(text)
    print("\n" + text)
