"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
from pathlib import Path

#: The repository root (benchmarks/ lives directly under it).
REPO_ROOT = Path(__file__).resolve().parent.parent


def write_result(results_dir: Path, name: str, title: str, body: str) -> None:
    """Persist one benchmark's table so EXPERIMENTS.md numbers are traceable."""
    text = f"{title}\n{'=' * len(title)}\n\n{body}\n"
    (results_dir / f"{name}.txt").write_text(text)
    print("\n" + text)


def write_json(name: str, payload: dict) -> Path:
    """Persist one benchmark's numbers machine-readably at the repo root.

    Lands as ``BENCH_<name>.json`` so dashboards and regression tooling can
    diff runs without scraping the human-oriented tables; the JSON carries
    the same numbers the ``.txt`` table renders.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path
