"""Fan-out partial aggregation vs. fetch-all-rows-then-aggregate.

A grouped count over N cameras can be answered two ways: ship every selected
row to the coordinator and aggregate there, or let each shard compute partial
aggregates (COUNT/SUM/MIN/MAX associative states, AVG as sum+count) and merge
the *group tuples* at the coordinator.  Both must produce identical groups;
the pushdown ships a per-group tuple per shard instead of a per-row
dictionary, so its coordinator-side data volume is bounded by the number of
groups, not the corpus.

Classification cost dominates wall-clock at any scale (both strategies
classify the same rows once), so the benchmark reports coordinator-side
tuples shipped as the headline metric and wall-clock for context.
"""

import time

import numpy as np

from _util import write_result
from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.experiments.reporting import format_table

CATEGORY = "komondor"
ROWS_SQL = f"SELECT * FROM all_cameras WHERE contains_object({CATEGORY})"
AGG_SQL = (f"SELECT location, COUNT(*) FROM all_cameras "
           f"WHERE contains_object({CATEGORY}) GROUP BY location")
CONSTRAINTS = UserConstraints(max_accuracy_loss=0.05)


def _shards(workspace, n_shards, shard_rows):
    return {f"cam_{index}": generate_corpus(
        (get_category(CATEGORY),), n_images=shard_rows,
        image_size=workspace.scale.image_size,
        rng=np.random.default_rng(210 + index),
        positive_rate=0.3 + 0.1 * index)
        for index in range(n_shards)}


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _aggregate_rows_on_coordinator(rows):
    """The baseline: fetch every selected row, group-count in the client."""
    counts = {}
    for row in rows:
        counts[row["location"]] = counts.get(row["location"], 0) + 1
    return counts


def test_fanout_partial_aggregation(benchmark, default_workspace, smoke_mode,
                                    results_dir):
    n_shards = 2 if smoke_mode else 4
    shard_rows = 16 if smoke_mode else 48
    cameras = _shards(default_workspace, n_shards, shard_rows)

    # Two fresh databases over the same shards so each strategy pays the
    # classification cost once, from cold caches.
    rows_db = default_workspace.database("camera", corpus=dict(cameras),
                                         constraints=CONSTRAINTS)
    agg_db = default_workspace.database("camera", corpus=dict(cameras),
                                        constraints=CONSTRAINTS)

    def fetch_then_aggregate():
        rows = rows_db.execute(ROWS_SQL).fetchall()
        return rows, _aggregate_rows_on_coordinator(rows)

    (rows, row_counts), rows_s = _timed(fetch_then_aggregate)
    merged, agg_s = _timed(lambda: agg_db.execute(AGG_SQL))

    # Both strategies must agree group by group.
    pushdown_counts = {row["location"]: row["count(*)"] for row in merged}
    assert pushdown_counts == row_counts

    # The pushdown ships one group tuple per (shard, group); the baseline
    # ships every selected row.  Labels are materialized by now, so the
    # per-shard recount is pure bookkeeping.
    groups_shipped = sum(
        len(agg_db.execute(f"SELECT location, COUNT(*) FROM {table} "
                           f"WHERE contains_object({CATEGORY}) "
                           "GROUP BY location"))
        for table in agg_db.tables())
    rows_shipped = len(rows)

    # -- benchmark hook: warm pushdown (materialized labels; plan + partial
    # aggregation + merge only).
    benchmark.pedantic(lambda: agg_db.execute(AGG_SQL), rounds=3, iterations=1)
    _, warm_agg_s = _timed(lambda: agg_db.execute(AGG_SQL))
    _, warm_rows_s = _timed(fetch_then_aggregate)

    table_rows = [
        ["fetch rows, aggregate at coordinator", f"{rows_shipped}",
         f"{rows_s * 1e3:.1f}", f"{warm_rows_s * 1e3:.1f}"],
        ["per-shard partials, merge group tuples",
         f"{groups_shipped}", f"{agg_s * 1e3:.1f}", f"{warm_agg_s * 1e3:.1f}"],
    ]
    body = format_table(
        ["strategy", "tuples to coordinator", "cold ms", "warm ms"],
        table_rows)
    body += (f"\n\nquery: {AGG_SQL}\n"
             f"shards: {n_shards} x {shard_rows} rows at "
             f"{default_workspace.scale.image_size}px; scenario: camera; "
             f"groups: {len(pushdown_counts)}; smoke mode: {smoke_mode}")
    write_result(results_dir, "bench_aggregates",
                 "Fan-out partial aggregation vs. fetch-all-then-aggregate",
                 body)

    # Warm, the pushdown never builds per-row dictionaries; it must not be
    # grossly slower than the row path at any scale.
    assert warm_agg_s < max(warm_rows_s * 3, 0.05), (
        f"partial aggregation ({warm_agg_s:.3f}s) grossly slower than "
        f"fetch-all ({warm_rows_s:.3f}s)")
