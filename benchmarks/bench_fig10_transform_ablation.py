"""Figure 10: average throughput of optimal cascades when the cascade set is
restricted to different input-transformation subsets (None / Color Variations /
Resizing / Full).

Paper shape to reproduce: resolution reduction is by far the most valuable
transformation (nearly an order of magnitude over None in the paper), color
variations help less, and the Full set is the best of all.
"""

from _util import write_result
from repro.experiments.ablation import TRANSFORM_SUBSETS, transform_ablation
from repro.experiments.reporting import format_table

SCENARIO = "infer_only"


def test_fig10_transform_ablation(benchmark, default_workspace, results_dir):
    rows = benchmark.pedantic(
        transform_ablation, args=(default_workspace,),
        kwargs={"scenario_name": SCENARIO}, rounds=1, iterations=1)

    table = [[row.category] + [f"{row.subset_throughputs[name]:,.0f}"
                               for name in TRANSFORM_SUBSETS]
             for row in rows]
    averages = ["average"] + [
        f"{sum(row.subset_throughputs[name] for row in rows) / len(rows):,.0f}"
        for name in TRANSFORM_SUBSETS]
    body = (f"scenario: {SCENARIO}; ALC-average throughput (fps) of optimal "
            "cascades,\ncomputed over the Full set's accuracy range per "
            "predicate.\n\n"
            + format_table(["predicate", "none", "color variations", "resizing",
                            "full"], table + [averages]))
    write_result(results_dir, "fig10_transform_ablation",
                 "Figure 10 — effect of input-transformation subsets", body)

    def mean(name):
        return sum(row.subset_throughputs[name] for row in rows) / len(rows)

    # Full is the best subset, and both transformation families beat None.
    assert mean("full") >= mean("none")
    assert mean("resize") >= mean("none")
    assert mean("color") >= mean("none")
    # Resolution reduction is the dominant transformation, as in the paper.
    assert mean("resize") >= mean("color")
