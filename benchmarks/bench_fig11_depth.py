"""Figure 11: evolution of the Pareto frontier (and of the evaluation cost) as
the maximum cascade depth grows.

Paper shape to reproduce: moving beyond two levels plus a reference tail adds
almost no throughput while the cascade set — and with it the evaluation time
at system-initialization — grows combinatorially, which is why the paper caps
its cascades at "two level + ResNet50".
"""

from _util import write_result
from repro.experiments.ablation import depth_analysis
from repro.experiments.reporting import format_table

CATEGORY = "fence"
SCENARIO = "camera"
POOL_SIZE = 8


def test_fig11_cascade_depth(benchmark, default_workspace, results_dir):
    rows = benchmark.pedantic(
        depth_analysis, args=(default_workspace, CATEGORY),
        kwargs={"scenario_name": SCENARIO, "max_depth": 3, "pool_size": POOL_SIZE},
        rounds=1, iterations=1)

    table = [[row.label, f"{row.n_cascades:,}", f"{row.evaluation_seconds:.2f}",
              f"{row.average_throughput:,.0f}"]
             for row in rows]
    body = (f"predicate: {CATEGORY}   scenario: {SCENARIO}   "
            f"model pool: {POOL_SIZE} best models\n\n"
            + format_table(["cascade set", "cascades", "evaluation (s)",
                            "avg optimal throughput (fps)"], table))
    write_result(results_dir, "fig11_depth",
                 "Figure 11 — effect of increasing cascade depth", body)

    # Cascade counts explode with depth while throughput gains flatten out.
    n_cascades = [row.n_cascades for row in rows]
    assert n_cascades == sorted(n_cascades)
    assert n_cascades[-1] > 20 * n_cascades[1]
    depth2 = next(r for r in rows if r.max_depth == 2 and r.with_reference_tail)
    depth3 = next(r for r in rows if r.max_depth == 3 and r.with_reference_tail)
    gain = (depth3.average_throughput - depth2.average_throughput)
    assert gain <= 0.25 * depth2.average_throughput + 1e-9
