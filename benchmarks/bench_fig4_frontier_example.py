"""Figure 4: all cascades and the Pareto frontier for one deployment scenario,
compared with the cascades that would be "optimal" if only inference costs
were considered.

Paper shape to reproduce: the scenario-aware frontier dominates the re-priced
inference-only frontier, i.e. ignoring data-handling costs leaves throughput
on the table at most accuracy levels.
"""

from _util import write_result
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import frontier_example

CATEGORY = "komondor"
SCENARIO = "camera"


def test_fig4_frontier_example(benchmark, default_workspace, results_dir):
    comparison = benchmark.pedantic(
        frontier_example, args=(default_workspace, CATEGORY),
        kwargs={"scenario_name": SCENARIO}, rounds=1, iterations=1)

    frontier_rows = [[f"{accuracy:.3f}", f"{throughput:,.0f}"]
                     for accuracy, throughput in
                     sorted(comparison.aware_frontier, reverse=True)]
    oblivious_rows = [[f"{accuracy:.3f}", f"{throughput:,.0f}"]
                      for accuracy, throughput in
                      sorted(comparison.oblivious_frontier, reverse=True)]
    body = (f"predicate: {CATEGORY}   scenario: {SCENARIO}\n"
            f"cascades evaluated: {len(comparison.all_points):,}\n\n"
            "Scenario-aware Pareto frontier (accuracy, fps):\n"
            + format_table(["accuracy", "throughput (fps)"], frontier_rows)
            + "\n\nINFER-ONLY-optimal cascades re-priced under this scenario:\n"
            + format_table(["accuracy", "throughput (fps)"], oblivious_rows)
            + f"\n\nALC gain of scenario awareness: "
              f"{comparison.awareness_gain():.2f}x")
    write_result(results_dir, "fig4_frontier_example",
                 "Figure 4 — cascade space and frontiers for one scenario", body)

    assert comparison.awareness_gain() >= 1.0 - 1e-9
    assert len(comparison.all_points) > len(comparison.aware_frontier)
