"""Figure 5: TAHOMA's cascade design space vs. the Baseline cascade space.

Paper shape to reproduce: TAHOMA's space (input transformations + deeper
cascades) is markedly larger than the Baseline space (full-size, full-color
inputs, reference-classifier tails), and its Pareto frontier dominates the
baseline frontier — a double-digit ALC speedup in the paper.
"""

from _util import write_result
from repro.experiments.reporting import format_table
from repro.experiments.speedups import design_space_comparison

CATEGORY = "komondor"
SCENARIO = "camera"


def test_fig5_design_space(benchmark, default_workspace, results_dir):
    comparison = benchmark.pedantic(
        design_space_comparison, args=(default_workspace, CATEGORY),
        kwargs={"scenario_name": SCENARIO}, rounds=1, iterations=1)

    rows = [
        ["TAHOMA", len(comparison.tahoma_points), len(comparison.tahoma_frontier),
         f"{max(t for _, t in comparison.tahoma_frontier):,.0f}"],
        ["Baseline", len(comparison.baseline_points),
         len(comparison.baseline_frontier),
         f"{max(t for _, t in comparison.baseline_frontier):,.0f}"],
    ]
    body = (f"predicate: {CATEGORY}   scenario: {SCENARIO}\n\n"
            + format_table(["cascade set", "cascades", "frontier points",
                            "fastest frontier fps"], rows)
            + f"\n\nTAHOMA ALC speedup over Baseline: "
              f"{comparison.tahoma_speedup():.1f}x")
    write_result(results_dir, "fig5_design_space",
                 "Figure 5 — TAHOMA vs Baseline cascade design space", body)

    assert len(comparison.tahoma_points) > 10 * len(comparison.baseline_points)
    assert comparison.tahoma_speedup() >= 1.0
