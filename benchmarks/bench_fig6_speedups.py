"""Figure 6: average speedup of TAHOMA over the baselines, per deployment scenario.

Paper shape to reproduce: under INFER ONLY, TAHOMA shows its largest speedups
over the fine-tuned reference classifier (98x in the paper) and over the
Baseline cascades (35x average / 59x at the fastest baseline's accuracy);
data-handling overheads shrink the gains in the other scenarios, with ARCHIVE
the smallest (around 2x in the paper) — but TAHOMA wins in every scenario.
"""

from _util import write_result
from repro.experiments.reporting import format_table
from repro.experiments.speedups import average_speedups

SCENARIOS = ("infer_only", "ongoing", "camera", "archive")


def test_fig6_average_speedups(benchmark, default_workspace, results_dir):
    rows = benchmark.pedantic(average_speedups,
                              args=(default_workspace, SCENARIOS),
                              rounds=1, iterations=1)

    table = [[row.scenario_name, f"{row.vs_reference:.1f}x",
              f"{row.vs_baseline_fastest:.1f}x", f"{row.vs_baseline_average:.1f}x"]
             for row in rows]
    body = ("Average over the 10 Table II predicates.\n\n"
            + format_table(["scenario", "vs reference (ResNet50 stand-in)",
                            "vs Baseline (fastest)", "vs Baseline (average)"],
                           table))
    write_result(results_dir, "fig6_speedups",
                 "Figure 6 — TAHOMA speedups over the baselines", body)

    by_name = {row.scenario_name: row for row in rows}
    # TAHOMA wins in every scenario.
    assert all(row.vs_reference > 1.0 for row in rows)
    assert all(row.vs_baseline_average > 1.0 for row in rows)
    # The speedup is largest when data handling is ignored and smallest when
    # everything must be loaded and transformed (ARCHIVE).
    assert by_name["infer_only"].vs_reference >= by_name["archive"].vs_reference
    assert by_name["infer_only"].vs_baseline_average >= by_name["archive"].vs_baseline_average
