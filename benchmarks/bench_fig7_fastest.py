"""Figure 7: throughput of the fastest Pareto-optimal cascade vs. the reference
classifier, per deployment scenario.

Paper shape to reproduce: the fastest cascades are typically single specialized
classifiers; under INFER ONLY they reach ~280x the reference classifier's
throughput (20,926 fps vs ~75 fps in the paper) at the price of some accuracy
(~12% in the paper), and realistic scenarios (ONGOING/CAMERA/ARCHIVE) shrink
but do not eliminate the gap.
"""

from _util import write_result
from repro.experiments.reporting import format_table
from repro.experiments.speedups import fastest_throughput

SCENARIOS = ("infer_only", "ongoing", "camera", "archive")


def test_fig7_fastest_cascades(benchmark, default_workspace, results_dir):
    rows = benchmark.pedantic(fastest_throughput,
                              args=(default_workspace, SCENARIOS),
                              rounds=1, iterations=1)

    table = [[row.scenario_name, f"{row.reference_fps:,.0f}",
              f"{row.tahoma_fastest_fps:,.0f}", f"{row.speedup:.0f}x",
              f"{row.accuracy_drop * 100:.1f}%"]
             for row in rows]
    body = ("Average over the 10 Table II predicates.\n\n"
            + format_table(["scenario", "reference fps", "TAHOMA fastest fps",
                            "speedup", "accuracy given up"], table))
    write_result(results_dir, "fig7_fastest",
                 "Figure 7 — fastest optimal cascade vs reference classifier", body)

    by_name = {row.scenario_name: row for row in rows}
    assert all(row.speedup > 1.0 for row in rows)
    # The INFER ONLY gap is the largest of the four scenarios.
    assert by_name["infer_only"].speedup == max(row.speedup for row in rows)
    # The reference classifier sits near its calibrated ~75 fps anchor.
    assert abs(by_name["infer_only"].reference_fps - 75.0) / 75.0 < 0.05
