"""Figure 8: NoScope vs. TAHOMA+DD on the two video streams.

Paper shape to reproduce: with the same difference detector, the same oracle
and the same target precision (0.95), TAHOMA+DD outperforms the NoScope
pipeline on both streams, with a much larger margin on the harder stream
(jackson in the paper: 27.5x vs 3.1x on coral) because TAHOMA's cascade avoids
falling back to the expensive oracle.
"""

from _util import write_result
from repro.experiments.noscope_exp import noscope_comparison
from repro.experiments.presets import DEFAULT_SCALE
from repro.experiments.reporting import format_table

STREAMS = ("coral", "jackson")


def test_fig8_noscope_comparison(benchmark, results_dir):
    results = benchmark.pedantic(
        noscope_comparison, args=(DEFAULT_SCALE,),
        kwargs={"stream_names": STREAMS, "seed": 0}, rounds=1, iterations=1)

    table = []
    for comparison in results:
        noscope, tahoma = comparison.noscope, comparison.tahoma_dd
        table.append([comparison.stream_name,
                      f"{noscope.throughput:,.0f}", f"{noscope.accuracy:.3f}",
                      f"{noscope.oracle_fraction * 100:.0f}%",
                      f"{tahoma.throughput:,.0f}", f"{tahoma.accuracy:.3f}",
                      f"{comparison.speedup:.1f}x",
                      f"{noscope.reuse_fraction * 100:.0f}%"])
    body = ("Synthetic stand-ins for the NoScope datasets; INFER ONLY cost\n"
            "accounting, shared oracle and difference detector, precision 0.95.\n\n"
            + format_table(["stream", "NoScope fps", "NoScope acc",
                            "NoScope oracle use", "TAHOMA+DD fps",
                            "TAHOMA+DD acc", "speedup", "frames reused"], table))
    write_result(results_dir, "fig8_noscope",
                 "Figure 8 — NoScope vs TAHOMA+DD on video streams", body)

    assert len(results) == 2
    for comparison in results:
        assert comparison.speedup >= 1.0
        assert comparison.tahoma_dd.accuracy >= comparison.noscope.accuracy - 0.1
