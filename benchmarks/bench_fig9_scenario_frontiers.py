"""Figure 9: Pareto frontiers under the CAMERA scenario vs. the cascades that
would be Pareto-optimal under INFER ONLY, for several predicates.

Paper shape to reproduce: the inference-only-optimal cascades, re-priced under
the real scenario, form a non-convex curve below the scenario-aware frontier —
ignoring data-handling costs forfeits throughput for most accuracy levels.
"""

from _util import write_result
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import scenario_frontiers

CATEGORIES = ["amphibian", "fence", "scorpion", "wallet"]
SCENARIO = "camera"


def test_fig9_scenario_frontiers(benchmark, default_workspace, results_dir):
    comparisons = benchmark.pedantic(
        scenario_frontiers, args=(default_workspace, CATEGORIES),
        kwargs={"scenario_name": SCENARIO}, rounds=1, iterations=1)

    table = []
    for comparison in comparisons:
        aware_best = max(t for _, t in comparison.aware_frontier)
        oblivious_best = max(t for _, t in comparison.oblivious_frontier)
        table.append([comparison.category, len(comparison.aware_frontier),
                      f"{aware_best:,.0f}", f"{oblivious_best:,.0f}",
                      f"{comparison.awareness_gain():.2f}x"])
    body = (f"scenario: {SCENARIO} (vs INFER ONLY-optimal cascades re-priced)\n\n"
            + format_table(["predicate", "frontier points", "aware best fps",
                            "oblivious best fps", "ALC gain"], table))
    write_result(results_dir, "fig9_scenario_frontiers",
                 "Figure 9 — scenario-aware vs oblivious frontiers per predicate",
                 body)

    assert [c.category for c in comparisons] == CATEGORIES
    for comparison in comparisons:
        assert comparison.awareness_gain() >= 1.0 - 1e-9
