"""Streaming ingest vs. full rebuild: the cost of growing an archive.

The ONGOING scenario's promise is that a growing database never redoes work:
``db.ingest(frames)`` extends the corpus, the materialized virtual columns
and the registered representations in place, so a repeated query classifies
only the frames that arrived since it last ran.  The alternative — rebuilding
via ``register_corpus`` on the merged corpus — throws away every materialized
label and representation and re-classifies the whole archive.

This benchmark grows a corpus in batches under both strategies and reports
per-batch query latency and the number of images classified, plus the store
footprint with and without a byte budget.
"""

import time

import numpy as np

from _util import write_result
from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.experiments.reporting import format_table

N_INITIAL = 48
BATCH_SIZE = 16
N_BATCHES = 3
CATEGORY = "komondor"
SQL = f"SELECT * FROM images WHERE contains_object({CATEGORY})"
CONSTRAINTS = UserConstraints(max_accuracy_loss=0.05)


def _corpus(workspace, n_images, seed):
    return generate_corpus((get_category(CATEGORY),), n_images=n_images,
                           image_size=workspace.scale.image_size,
                           rng=np.random.default_rng(seed), positive_rate=0.6)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_ingest_vs_rebuild(benchmark, default_workspace, results_dir):
    initial = _corpus(default_workspace, N_INITIAL, seed=21)
    batches = [_corpus(default_workspace, BATCH_SIZE, seed=22 + i)
               for i in range(N_BATCHES)]

    # -- incremental: one long-lived database, frames ingested as they arrive.
    db = default_workspace.database("ongoing", corpus=initial,
                                    constraints=CONSTRAINTS)
    _, warmup_s = _timed(lambda: db.execute(SQL))
    rows = [["initial", "-", f"{N_INITIAL}", f"{warmup_s * 1e3:.1f}",
             f"{N_INITIAL}"]]
    for index, batch in enumerate(batches):
        db.ingest(batch.images, metadata=batch.metadata, content=batch.content)
        result, elapsed_s = _timed(lambda: db.execute(SQL))
        rows.append([f"batch {index + 1}", "ingest", f"{len(db.corpus)}",
                     f"{elapsed_s * 1e3:.1f}",
                     f"{result.images_classified[CATEGORY]}"])

    # -- rebuild: register_corpus on the merged corpus, caches start cold.
    rebuild = default_workspace.database("ongoing", constraints=CONSTRAINTS)
    for index, batch in enumerate(batches):
        merged = _corpus(default_workspace, N_INITIAL, seed=21)
        for earlier in batches[:index + 1]:
            merged.append(earlier.images, metadata=earlier.metadata,
                          content=earlier.content)
        rebuild.register_corpus(merged)
        result, elapsed_s = _timed(lambda: rebuild.execute(SQL))
        rows.append([f"batch {index + 1}", "rebuild", f"{len(merged)}",
                     f"{elapsed_s * 1e3:.1f}",
                     f"{result.images_classified[CATEGORY]}"])

    # The incremental path must only ever classify the new frames.
    ingest_classified = [int(row[4]) for row in rows[1:N_BATCHES + 1]]
    assert all(count == BATCH_SIZE for count in ingest_classified)

    # -- benchmark hook: one ingest + query round on the live database.
    def ingest_round():
        batch = _corpus(default_workspace, BATCH_SIZE, seed=99)
        db.ingest(batch.images, metadata=batch.metadata)
        return db.execute(SQL)

    benchmark.pedantic(ingest_round, rounds=3, iterations=1)

    unbounded_bytes = db.executor.store.bytes_stored()
    table = format_table(
        ["step", "strategy", "rows", "query ms", "classified"], rows)
    body = (f"{table}\n\n"
            f"store footprint (unbounded): {unbounded_bytes:,} simulated "
            f"bytes across {len(db.executor.store)} representations\n")
    write_result(results_dir, "bench_ingest",
                 "Streaming ingest vs. full rebuild (ONGOING)", body)
