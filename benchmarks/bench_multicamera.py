"""Cross-camera fan-out vs. sequential per-table queries.

A multi-table catalog answers ``SELECT * FROM all_cameras`` by planning once
per shard (each with its own observed selectivity) and running the shard
executors concurrently on a thread pool — classification is NumPy
matmul-bound and releases the GIL, so N cameras should cost closer to the
slowest shard than to the sum of all shards.  This benchmark builds N
synthetic camera shards, runs the same content query both ways from cold
caches, checks the merged rows equal the union of the per-table results, and
reports wall-clock for each strategy.

The fan-out-beats-sequential assertion needs real concurrency: it runs only
at full scale on a machine with at least two CPU cores (a single-core host
can only interleave threads, so wall-clock parity is the physical best
case).  Under ``--smoke`` — or on one core — the bar relaxes to "fan-out
adds no meaningful overhead", and the result-equivalence checks always run,
so the catalog path cannot silently rot.
"""

import os
import time

import numpy as np

from _util import write_result
from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.experiments.reporting import format_table

CATEGORY = "komondor"
FANOUT_SQL = f"SELECT * FROM all_cameras WHERE contains_object({CATEGORY})"
CONSTRAINTS = UserConstraints(max_accuracy_loss=0.05)


def _shards(workspace, n_shards, shard_rows):
    return {f"cam_{index}": generate_corpus(
        (get_category(CATEGORY),), n_images=shard_rows,
        image_size=workspace.scale.image_size,
        rng=np.random.default_rng(100 + index),
        positive_rate=0.3 + 0.1 * index)
        for index in range(n_shards)}


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_fanout_vs_sequential(benchmark, default_workspace, smoke_mode,
                              results_dir):
    n_shards = 2 if smoke_mode else 4
    shard_rows = 16 if smoke_mode else 48
    cameras = _shards(default_workspace, n_shards, shard_rows)

    # Two fresh databases over the same shards: per-table caches start cold
    # in both, so each strategy pays the full classification cost once.
    sequential_db = default_workspace.database("camera", corpus=dict(cameras),
                                               constraints=CONSTRAINTS)
    fanout_db = default_workspace.database("camera", corpus=dict(cameras),
                                           constraints=CONSTRAINTS)

    def run_sequential():
        return {table: sequential_db.execute(
            f"SELECT * FROM {table} WHERE contains_object({CATEGORY})")
            for table in sequential_db.tables()}

    per_table, sequential_s = _timed(run_sequential)
    merged, fanout_s = _timed(lambda: fanout_db.execute(FANOUT_SQL))

    # Fan-out answers exactly the union of the per-table queries.
    assert merged.tables == tuple(cameras)
    for table, result in per_table.items():
        np.testing.assert_array_equal(merged.per_table(table).image_ids,
                                      result.image_ids)
        assert merged.images_classified[table][CATEGORY] == shard_rows

    # -- benchmark hook: warm fan-out (materialized labels, plan + merge only).
    benchmark.pedantic(lambda: fanout_db.execute(FANOUT_SQL),
                       rounds=3, iterations=1)

    speedup = sequential_s / fanout_s if fanout_s > 0 else float("inf")
    rows = [
        ["sequential per-table", f"{n_shards}", f"{n_shards * shard_rows}",
         f"{sequential_s * 1e3:.1f}", "1.00x"],
        ["fan-out (all_cameras)", f"{n_shards}", f"{n_shards * shard_rows}",
         f"{fanout_s * 1e3:.1f}", f"{speedup:.2f}x"],
    ]
    cores = os.cpu_count() or 1
    body = format_table(
        ["strategy", "shards", "rows", "wall-clock ms", "speedup"], rows)
    body += (f"\n\nquery: {FANOUT_SQL}\n"
             f"shards: {n_shards} x {shard_rows} rows at "
             f"{default_workspace.scale.image_size}px; scenario: camera; "
             f"smoke mode: {smoke_mode}; cpu cores: {cores}")
    write_result(results_dir, "bench_multicamera",
                 "Cross-camera fan-out vs. sequential per-table queries", body)

    if not smoke_mode and cores >= 2:
        # The acceptance bar: concurrent shards beat the sequential loop.
        assert fanout_s < sequential_s, (
            f"fan-out ({fanout_s:.3f}s) not faster than sequential "
            f"({sequential_s:.3f}s) over {n_shards} shards on {cores} cores")
    else:
        # One core (or toy sizes) can at best interleave, and at ~50ms total
        # the timings are scheduler noise — only trip on gross pathology
        # (e.g. the fan-out machinery suddenly doing superlinear work).
        assert fanout_s < sequential_s * 3, (
            f"fan-out ({fanout_s:.3f}s) grossly slower than sequential "
            f"({sequential_s:.3f}s)")
