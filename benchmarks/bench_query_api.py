"""Facade overhead: repro.db.VisualDatabase vs the raw QueryProcessor.

The ``repro.db`` facade adds SQL parsing, planning (cascade selection +
selectivity-ordered content predicates) and ResultSet construction on top of
the executor the raw :class:`~repro.query.processor.QueryProcessor` shim also
uses.  This benchmark times a multi-predicate query through both entry points
with a cold and a warm representation store, so the facade's bookkeeping can
be read off against the dominant classification cost.
"""

import time

import numpy as np

from _util import write_json, write_result
from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.experiments.reporting import format_table
from repro.query.processor import QueryProcessor
from repro.query.sql import parse_query

N_IMAGES = 48
CATEGORIES = ("komondor", "scorpion")
# Content-only so both predicates sweep the whole corpus: that is the case
# where the persistent representation store materializes corpus-wide and a
# warm re-run can skip the transforms.
SQL = ("SELECT * FROM images "
       "WHERE contains_object(komondor) AND contains_object(scorpion)")
CONSTRAINTS = UserConstraints(max_accuracy_loss=0.05)


def _corpus(workspace):
    return generate_corpus(tuple(get_category(name) for name in CATEGORIES),
                           n_images=N_IMAGES,
                           image_size=workspace.scale.image_size,
                           rng=np.random.default_rng(17), positive_rate=0.8)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_query_api_overhead(benchmark, default_workspace, smoke_mode,
                            results_dir):
    corpus = _corpus(default_workspace)
    optimizers = {name: default_workspace.predicates[name].optimizer
                  for name in CATEGORIES}
    profiler = default_workspace.profiler("archive")
    query = parse_query(SQL, constraints=CONSTRAINTS)

    # -- raw processor: cold store, then labels invalidated but store warm.
    processor = QueryProcessor(corpus, optimizers, profiler)
    raw_result, raw_cold_s = _timed(lambda: processor.execute(query))
    processor._executor.invalidate()
    _, raw_warm_s = _timed(lambda: processor.execute(query))

    # -- facade: same executor machinery behind parse/plan/ResultSet.
    db = default_workspace.database("archive", corpus=corpus,
                                   constraints=CONSTRAINTS)

    def facade_cold():
        db.executor.clear_cache()
        return db.execute(SQL)

    facade_result = benchmark.pedantic(facade_cold, rounds=3, iterations=1)
    _, facade_cold_s = _timed(facade_cold)
    db.executor.invalidate()
    _, facade_warm_s = _timed(lambda: db.execute(SQL))

    # Planning alone (no classification): repeat on materialized columns.
    _, facade_hot_s = _timed(lambda: db.execute(SQL))

    assert np.array_equal(facade_result.image_ids, raw_result.selected_indices)

    def fmt(seconds):
        return f"{seconds * 1e3:.1f}"

    rows = [
        ["raw QueryProcessor", "cold", fmt(raw_cold_s), "1.00x"],
        ["raw QueryProcessor", "warm store", fmt(raw_warm_s),
         f"{raw_warm_s / raw_cold_s:.2f}x"],
        ["repro.db facade", "cold", fmt(facade_cold_s),
         f"{facade_cold_s / raw_cold_s:.2f}x"],
        ["repro.db facade", "warm store", fmt(facade_warm_s),
         f"{facade_warm_s / raw_cold_s:.2f}x"],
        ["repro.db facade", "materialized (plan only)", fmt(facade_hot_s),
         f"{facade_hot_s / raw_cold_s:.2f}x"],
    ]
    body = format_table(["entry point", "representation store", "ms",
                         "vs raw cold"], rows)
    body += (f"\n\nquery: {SQL}\n"
             f"corpus: {N_IMAGES} images at "
             f"{default_workspace.scale.image_size}px; "
             f"scenario: archive; constraints: max_accuracy_loss=0.05")
    write_result(results_dir, "query_api_overhead",
                 "repro.db facade overhead vs raw QueryProcessor", body)

    def rows_per_sec(seconds):
        return float(N_IMAGES / seconds) if seconds > 0 else 0.0

    write_json("query", {
        "corpus_rows": N_IMAGES,
        "image_size": default_workspace.scale.image_size,
        "sql": SQL,
        "rows_per_sec": {
            "raw_cold": rows_per_sec(raw_cold_s),
            "raw_warm": rows_per_sec(raw_warm_s),
            "facade_cold": rows_per_sec(facade_cold_s),
            "facade_warm": rows_per_sec(facade_warm_s),
            "facade_materialized": rows_per_sec(facade_hot_s),
        },
        "seconds": {
            "raw_cold": raw_cold_s,
            "raw_warm": raw_warm_s,
            "facade_cold": facade_cold_s,
            "facade_warm": facade_warm_s,
            "facade_materialized": facade_hot_s,
        },
        # The database's own view of the same run: plan/execute latency
        # histograms, rows classified per cascade, store hit/miss counts.
        "telemetry": db.telemetry()["metrics"],
    })

    # The facade must not add classification work: with a warm store both
    # entry points re-classify the same rows, and the plan-only run must be
    # far cheaper than any classifying run.  At SMOKE_SCALE classification is
    # near-free, so the timing comparison is noise — skip it there.
    if not smoke_mode:
        assert facade_hot_s < facade_cold_s
