"""Retention-window soak: an endless feed through a bounded table.

Without retention, a long-running ``db.ingest()`` loop grows the corpus, the
base relation and every materialized virtual column forever.  With
``RetentionPolicy(max_rows=N)`` the table is a sliding window: this benchmark
streams many times the window's worth of frames through one table and checks
the promises that make the window usable — the corpus never exceeds N rows,
query latency reaches a steady state instead of growing with feed length,
and surviving rows are never re-classified (each round's query classifies
exactly the new frames).  It reports per-round query latency, the peak
corpus length observed, and the store footprint.
"""

import time

import numpy as np

from _util import write_result
from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.db import RetentionPolicy
from repro.experiments.reporting import format_table

CATEGORY = "komondor"
SQL = f"SELECT * FROM images WHERE contains_object({CATEGORY})"
CONSTRAINTS = UserConstraints(max_accuracy_loss=0.05)


def _corpus(workspace, n_images, seed):
    return generate_corpus((get_category(CATEGORY),), n_images=n_images,
                           image_size=workspace.scale.image_size,
                           rng=np.random.default_rng(seed), positive_rate=0.5)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_retention_soak(benchmark, default_workspace, smoke_mode, results_dir):
    window = 16 if smoke_mode else 48
    batch_size = window // 2
    n_rounds = 6 if smoke_mode else 12  # ingest 3x / 6x the window

    db = default_workspace.database("ongoing", corpus=_corpus(
        default_workspace, window, seed=11), constraints=CONSTRAINTS)
    db.set_retention("images", RetentionPolicy(max_rows=window))
    db.execute(SQL)  # first query: registers ONGOING representations

    rows, peak_rows, latencies_ms = [], len(db.corpus), []
    for index in range(n_rounds):
        batch = _corpus(default_workspace, batch_size, seed=20 + index)
        db.ingest(batch.images, metadata=batch.metadata, content=batch.content)
        peak_rows = max(peak_rows, len(db.corpus))
        result, elapsed_s = _timed(lambda: db.execute(SQL))
        latencies_ms.append(elapsed_s * 1e3)
        rows.append([f"round {index + 1}", f"{len(db.corpus)}",
                     f"{db.executor.id_offset}", f"{elapsed_s * 1e3:.1f}",
                     f"{result.images_classified[CATEGORY]}"])
        # Steady state: surviving rows keep their labels, so each round
        # classifies exactly the freshly ingested frames.
        assert result.images_classified[CATEGORY] == batch_size
        assert len(db.corpus) <= window

    assert peak_rows <= window
    total_ingested = window + n_rounds * batch_size
    assert db.executor.id_offset == total_ingested - window

    # -- benchmark hook: one steady-state ingest + query round.
    def soak_round():
        batch = _corpus(default_workspace, batch_size, seed=99)
        db.ingest(batch.images, metadata=batch.metadata)
        return db.execute(SQL)

    benchmark.pedantic(soak_round, rounds=3, iterations=1)

    steady_ms = float(np.median(latencies_ms[n_rounds // 2:]))
    store = db.executor.store
    table = format_table(
        ["step", "rows", "id offset", "query ms", "classified"], rows)
    body = (f"{table}\n\n"
            f"window: {window} rows; fed {total_ingested} frames total "
            f"({total_ingested / window:.1f}x the window)\n"
            f"peak corpus length: {peak_rows} (bound: {window})\n"
            f"steady-state query latency: {steady_ms:.1f} ms (median of the "
            f"last {n_rounds - n_rounds // 2} rounds)\n"
            f"store footprint: {store.bytes_stored():,} simulated bytes "
            f"across {len(store)} representations\n")
    write_result(results_dir, "bench_retention",
                 "Retention-window soak (bounded streaming state)", body)
