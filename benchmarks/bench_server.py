"""Network serving layer under concurrent clients: latency and plan cache.

N client threads each hold one connection to an in-process
:class:`~repro.server.server.VisualDatabaseServer` and issue a dashboard-like
mix — a repeated content query (exact plan-cache hits), the same shape with a
rotating literal (rebinds), an aggregate and a cross-camera fan-out — against
a two-camera catalog.  Reported per query shape: request count and p50/p99
round-trip latency (client-observed, over a real TCP socket), plus the served
database's plan-cache hit rate and the admission controller's counters.

The wire protocol adds JSON framing and a socket round trip per request; the
point of the benchmark is that under concurrency the serving layer stays
well-behaved — every query completes, nothing is rejected at this load, and
repeated shapes are served from the plan cache instead of re-running cascade
selection.
"""

import threading
import time

import numpy as np

from _util import write_json, write_result
from repro.core.selector import UserConstraints
from repro.data.categories import get_category
from repro.data.corpus import generate_corpus
from repro.experiments.reporting import format_table
from repro.server import connect, serve

CATEGORY = "komondor"
N_CLIENTS = 4
ROUNDS_PER_CLIENT = 6
CONSTRAINTS = UserConstraints(max_accuracy_loss=0.05)
LOCATIONS = ("detroit", "seattle", "austin")

QUERIES = {
    "repeated content (cache hit)":
        f"SELECT * FROM cam_0 WHERE contains_object({CATEGORY}) LIMIT 8",
    "rebound literal (cache rebind)":
        "SELECT image_id FROM cam_1 WHERE location = '{location}'",
    "aggregate":
        "SELECT count(*) FROM cam_0",
    "fan-out":
        f"SELECT * FROM all_cameras WHERE contains_object({CATEGORY}) "
        "LIMIT 6",
}


def _shards(workspace):
    return {f"cam_{index}": generate_corpus(
        (get_category(CATEGORY),), n_images=36,
        image_size=workspace.scale.image_size,
        rng=np.random.default_rng(200 + index),
        positive_rate=0.4 + 0.2 * index)
        for index in range(2)}


def _client_loop(address, seed, latencies, errors):
    """One client session: the query mix, round-tripped over the socket."""
    try:
        with connect(*address, timeout=120) as conn:
            for step in range(ROUNDS_PER_CLIENT):
                for label, template in QUERIES.items():
                    sql = template.format(
                        location=LOCATIONS[(seed + step) % len(LOCATIONS)])
                    start = time.perf_counter()
                    cursor = conn.execute(sql)
                    rows = cursor.fetchall()
                    elapsed = time.perf_counter() - start
                    assert len(rows) == cursor.rowcount
                    latencies[label].append(elapsed)
    except Exception as exc:  # noqa: BLE001 - surfaced by the assert below
        errors.append(exc)


def test_server_concurrent_latency(benchmark, default_workspace, smoke_mode,
                                   results_dir):
    db = default_workspace.database("archive", corpus=_shards(default_workspace),
                                    constraints=CONSTRAINTS)
    with serve(db, port=0, max_workers=4, max_queue=32) as server:
        # Warm pass: train-free here, but it materializes virtual columns and
        # primes the plan cache, so the measured pass sees steady state.
        with connect(*server.address, timeout=120) as conn:
            for label, template in QUERIES.items():
                conn.execute(template.format(location=LOCATIONS[0])).fetchall()

        latencies = {label: [] for label in QUERIES}
        errors: list = []

        def run_clients():
            threads = [threading.Thread(target=_client_loop,
                                        args=(server.address, seed,
                                              latencies, errors),
                                        name=f"bench-client-{seed}")
                       for seed in range(N_CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        benchmark.pedantic(run_clients, rounds=1, iterations=1)
        assert errors == []

        cache_stats = db.plan_cache.stats()
        admission = server.admission.stats()
        queries = server.counters.snapshot()

        # The wire `metrics` command must expose every declared metric even
        # where this load produced no traffic (the CI smoke contract).
        with connect(*server.address, timeout=120) as conn:
            exposition = conn.metrics(format="text")
            telemetry = conn.metrics()
        from repro.telemetry.metrics import CATALOG
        for spec in CATALOG:
            assert f"# TYPE {spec.name} {spec.kind}" in exposition, spec.name

    def fmt(seconds):
        return f"{seconds * 1e3:.2f}"

    rows = []
    payload: dict = {
        "clients": N_CLIENTS,
        "rounds_per_client": ROUNDS_PER_CLIENT,
        "latency_ms": {},
        "plan_cache": cache_stats,
        "admission": admission,
        "queries": queries,
        # Registry snapshot of the same run: per-command request latency
        # histograms, queue depth, unified plan-cache/admission counters.
        "telemetry": telemetry,
    }
    for label, samples in latencies.items():
        data = np.array(samples)
        rows.append([label, str(len(data)), fmt(np.percentile(data, 50)),
                     fmt(np.percentile(data, 99))])
        payload["latency_ms"][label] = {
            "requests": len(data),
            "p50": float(np.percentile(data, 50) * 1e3),
            "p99": float(np.percentile(data, 99) * 1e3),
        }
    body = format_table(["query shape", "requests", "p50 ms", "p99 ms"], rows)
    body += (f"\n\nclients: {N_CLIENTS} concurrent sessions x "
             f"{ROUNDS_PER_CLIENT} rounds over TCP; "
             f"workers: {admission['max_workers']}, "
             f"queue: {admission['max_queue']}\n"
             f"plan cache: {cache_stats['hits']} hits, "
             f"{cache_stats['rebinds']} rebinds, "
             f"{cache_stats['misses']} misses "
             f"(hit rate {cache_stats['hit_rate']:.2f})\n"
             f"queries: {queries['completed']} completed, "
             f"{queries['failed']} failed, {queries['rejected']} rejected")
    write_result(results_dir, "server_latency",
                 "Serving layer: concurrent-client latency and plan cache",
                 body)
    write_json("server", payload)

    # Every request completed and none were rejected at this modest load.
    total = N_CLIENTS * ROUNDS_PER_CLIENT * len(QUERIES)
    assert queries["completed"] >= total
    assert queries["failed"] == 0 and queries["rejected"] == 0
    # Repeated shapes were served from the plan cache: after the warm pass
    # every repeated/rotating query is a hit or rebind, never a fresh plan.
    assert cache_stats["hits"] >= N_CLIENTS * ROUNDS_PER_CLIENT
    assert cache_stats["hit_rate"] > 0.5
