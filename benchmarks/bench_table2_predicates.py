"""Table II: the ten binary predicates and their synthetic render parameters.

The paper's Table II lists ten ImageNet categories chosen at random as the
experimental binary predicates.  The reproduction keeps the same names and
synset ids but maps each to a procedural renderer; this benchmark regenerates
the table and times corpus generation for one predicate (the data substrate
every other experiment sits on).
"""

import numpy as np

from _util import write_result
from repro.data.categories import TABLE2_CATEGORIES, get_category
from repro.data.corpus import build_predicate_splits
from repro.experiments.presets import DEFAULT_SCALE
from repro.experiments.reporting import format_table


def test_table2_predicates(benchmark, results_dir):
    def render_one_predicate():
        return build_predicate_splits(
            get_category("komondor"), n_train=DEFAULT_SCALE.n_train,
            n_config=DEFAULT_SCALE.n_config, n_eval=DEFAULT_SCALE.n_eval,
            image_size=DEFAULT_SCALE.image_size, rng=np.random.default_rng(0))

    splits = benchmark.pedantic(render_one_predicate, rounds=1, iterations=1)

    rows = [[index + 1, category.name, category.imagenet_id, category.shape,
             category.texture_frequency]
            for index, category in enumerate(TABLE2_CATEGORIES)]
    body = format_table(
        ["#", "predicate", "imagenet id", "synthetic shape", "texture freq"], rows)
    body += ("\n\nper-predicate splits (train/config/eval): "
             f"{splits.sizes()} images at {DEFAULT_SCALE.image_size}px")
    write_result(results_dir, "table2_predicates",
                 "Table II — binary predicates (synthetic substitutes)", body)

    assert len(TABLE2_CATEGORIES) == 10
    assert splits.sizes() == (DEFAULT_SCALE.n_train, DEFAULT_SCALE.n_config,
                              DEFAULT_SCALE.n_eval)
