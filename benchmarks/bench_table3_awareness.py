"""Table III: throughput when cascades are chosen scenario-obliviously vs.
scenario-aware, at several permissible accuracy-loss budgets.

Paper shape to reproduce: with no accuracy budget the two choices coincide
(0% gain), and as the budget grows scenario awareness buys double-digit
percentage throughput gains in scenarios where data-handling costs reorder the
frontier, while never hurting.
"""

from _util import write_result
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import scenario_awareness_table

LOSS_LEVELS = (0.0, 0.02, 0.05, 0.10)
SCENARIOS = ("archive", "camera", "ongoing")


def test_table3_scenario_awareness(benchmark, default_workspace, results_dir):
    rows = benchmark.pedantic(
        scenario_awareness_table, args=(default_workspace,),
        kwargs={"loss_levels": LOSS_LEVELS, "scenario_names": SCENARIOS},
        rounds=1, iterations=1)

    table = [[row.scenario_name, f"{row.accuracy_loss * 100:.0f}%",
              f"{row.oblivious_fps:,.1f}", f"{row.aware_fps:,.1f}",
              f"+{row.gain_percent:.1f}%"]
             for row in rows]
    body = ("Average over the 10 Table II predicates.  'Oblivious' selects on\n"
            "the INFER ONLY frontier and is re-priced under the scenario's true\n"
            "costs; 'aware' selects on the scenario's own frontier.\n\n"
            + format_table(["scenario", "permissible accuracy loss",
                            "oblivious fps", "aware fps", "gain"], table))
    write_result(results_dir, "table3_awareness",
                 "Table III — scenario-oblivious vs scenario-aware selection", body)

    for row in rows:
        assert row.aware_fps >= row.oblivious_fps - 1e-9
    # At a 0% budget both strategies pick maximally accurate cascades; any
    # gains must come from the nonzero budgets.
    max_gain = max(row.gain_percent for row in rows)
    assert max_gain >= 0.0
    nonzero_gains = [row.gain_percent for row in rows if row.accuracy_loss > 0]
    assert max(nonzero_gains) >= max(
        row.gain_percent for row in rows if row.accuracy_loss == 0)
