"""Storage-engine durability costs: WAL overhead, recovery time, snapshots.

The segment-based storage engine makes three performance promises:

* journaling is an O(batch) tax on ingest (one ``.npz`` payload + one
  fsync'd log line per batch), not an O(corpus) one,
* recovery time is proportional to the log tail replayed — checkpoints
  bound it, and replay batches the relation rebuild so a long tail is
  O(total rows), not O(records x rows),
* queries execute against a frozen snapshot, so read latency holds steady
  while ``ingest()`` + ``retain()`` churn the same shard.

This benchmark measures all three on a metadata-only table (no predicate
models — the numbers isolate the storage engine).  Results land in
``benchmarks/results/wal.txt`` and, machine-readably, ``BENCH_wal.json`` at
the repo root.
"""

import statistics
import threading
import time

import numpy as np

from _util import write_json, write_result
from repro.data.corpus import ImageCorpus
from repro.db import RetentionPolicy, VisualDatabase, connect
from repro.experiments.reporting import format_table

IMAGE_SIZE = 16
BATCH_ROWS = 32
SQL = "SELECT image_id, timestamp FROM cam"


def _corpus(n_rows, t0=0.0, seed=0):
    rng = np.random.default_rng(seed)
    return ImageCorpus(
        images=rng.random((n_rows, IMAGE_SIZE, IMAGE_SIZE, 3)),
        metadata={"timestamp": np.arange(t0, t0 + n_rows, dtype=np.float64),
                  "location": np.array(["detroit"] * n_rows)})


def _batch(t0, seed):
    corpus = _corpus(BATCH_ROWS, t0=t0, seed=seed)
    return corpus.images, dict(corpus.metadata)


def _ingest_run(database, n_batches):
    start = time.perf_counter()
    clock = 1000.0
    for index in range(n_batches):
        database.ingest(*_batch(clock, seed=index + 1), table="cam")
        clock += BATCH_ROWS
    return time.perf_counter() - start


def test_wal_storage_engine(smoke_mode, results_dir, tmp_path):
    n_batches = 4 if smoke_mode else 16
    recovery_lengths = (2, 4, 8) if smoke_mode else (8, 32, 64)
    payload = {"smoke": smoke_mode, "batch_rows": BATCH_ROWS}

    # -- 1. ingest throughput, WAL off vs. on -------------------------------
    plain = connect({"cam": _corpus(BATCH_ROWS)})
    plain_s = _ingest_run(plain, n_batches)
    plain.close()

    durable = connect({"cam": _corpus(BATCH_ROWS)})
    durable.enable_wal(tmp_path / "ingest-vdb")
    durable_s = _ingest_run(durable, n_batches)
    durable.close()

    rows_ingested = n_batches * BATCH_ROWS
    ingest_rows = [
        ["WAL off", f"{rows_ingested / plain_s:.0f}",
         f"{plain_s / n_batches * 1e3:.2f}"],
        ["WAL on", f"{rows_ingested / durable_s:.0f}",
         f"{durable_s / n_batches * 1e3:.2f}"],
    ]
    payload["ingest"] = {
        "batches": n_batches,
        "rows_per_s_wal_off": rows_ingested / plain_s,
        "rows_per_s_wal_on": rows_ingested / durable_s,
        "overhead_ratio": durable_s / plain_s,
    }

    # -- 2. recovery time vs. log length ------------------------------------
    recovery_rows, recovery_payload = [], []
    for length in recovery_lengths:
        root = tmp_path / f"recover-{length}"
        database = connect({"cam": _corpus(BATCH_ROWS)})
        database.enable_wal(root)
        clock = 1000.0
        for index in range(length):
            database.ingest(*_batch(clock, seed=index + 1), table="cam")
            clock += BATCH_ROWS
        expected_rows = len(database.corpus_for("cam"))
        # No close(): load replays the tail exactly as after a crash.
        start = time.perf_counter()
        recovered = VisualDatabase.load(root)
        elapsed_s = time.perf_counter() - start
        assert len(recovered.corpus_for("cam")) == expected_rows
        recovered.close()
        database.close()
        recovery_rows.append([f"{length}", f"{expected_rows}",
                              f"{elapsed_s * 1e3:.1f}"])
        recovery_payload.append({"log_records": length,
                                 "rows_recovered": expected_rows,
                                 "recovery_s": elapsed_s})
    payload["recovery"] = recovery_payload

    # -- 3. snapshot-read latency while ingest churns ------------------------
    def query_latencies(database, n_queries):
        samples = []
        for _ in range(n_queries):
            start = time.perf_counter()
            list(database.execute(SQL))
            samples.append(time.perf_counter() - start)
        return samples

    n_queries = 10 if smoke_mode else 40
    database = connect({"cam": _corpus(4 * BATCH_ROWS)},
                       retention=RetentionPolicy(max_rows=8 * BATCH_ROWS))
    idle = query_latencies(database, n_queries)

    # Registry view of the durable ingest run: WAL append latency histogram
    # (per-table), alongside the wall-clock numbers above.
    payload["telemetry"] = durable.telemetry()["metrics"]

    stop = threading.Event()
    errors = []

    def churn():
        clock = 10_000.0
        seed = 100
        try:
            while not stop.is_set():
                database.ingest(*_batch(clock, seed=seed), table="cam")
                database.retain()
                clock += BATCH_ROWS
                seed += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    thread = threading.Thread(target=churn, name="bench-wal-churn")
    thread.start()
    try:
        contended = query_latencies(database, n_queries)
    finally:
        stop.set()
        thread.join()
    database.close()
    assert errors == []

    idle_ms = statistics.median(idle) * 1e3
    contended_ms = statistics.median(contended) * 1e3
    payload["snapshot_reads"] = {
        "queries": n_queries,
        "median_idle_ms": idle_ms,
        "median_during_ingest_ms": contended_ms,
    }

    body = "\n\n".join([
        format_table(["journal", "rows/s", "ms/batch"], ingest_rows),
        format_table(["log records", "rows", "recovery ms"], recovery_rows),
        format_table(["reads", "median ms"],
                     [["idle", f"{idle_ms:.2f}"],
                      ["during ingest+retain", f"{contended_ms:.2f}"]]),
    ])
    write_result(results_dir, "wal", "WAL: ingest overhead, recovery, "
                 "snapshot reads", body)
    write_json("wal", payload)
