"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section.  They all share a single DEFAULT_SCALE workspace (trained model pools
for the ten Table II predicates) built once per session; the measured part of
each benchmark is the *query-time* analysis TAHOMA performs (cascade
evaluation, Pareto frontiers, selection), which is the part the paper times.

Each benchmark also writes the rows it produces to
``benchmarks/results/<name>.txt`` so the reproduction numbers recorded in
EXPERIMENTS.md can be regenerated verbatim.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent
_SRC = _ROOT.parent / "src"
for path in (str(_SRC), str(_ROOT)):
    if path not in sys.path:
        sys.path.insert(0, path)

RESULTS_DIR = _ROOT / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="Run benchmarks at SMOKE_SCALE (tiny model pools, reduced shard "
             "counts, perf assertions relaxed) so CI can exercise them on "
             "every push without the DEFAULT_SCALE training cost.")


@pytest.fixture(scope="session")
def smoke_mode(request) -> bool:
    """True when benchmarks run under ``--smoke`` (CI rot check)."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def default_workspace(smoke_mode):
    """The DEFAULT_SCALE workspace (SMOKE_SCALE under ``--smoke``)."""
    from repro.experiments.presets import DEFAULT_SCALE, SMOKE_SCALE
    from repro.experiments.workspace import get_workspace

    return get_workspace(SMOKE_SCALE if smoke_mode else DEFAULT_SCALE)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
