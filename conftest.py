"""Pytest bootstrap: make the in-tree package importable without installation.

The repository is normally installed with ``pip install -e .``; this shim only
matters for offline environments where the editable install cannot build a
wheel (no network to fetch the ``wheel`` package).

This root conftest also registers the ``--sanitize`` flag (it must live at
the rootdir so a bare ``pytest`` invocation sees it): when given, the runtime
concurrency sanitizer from :mod:`repro.analysis.sanitizer` is enabled for the
whole run — every lock created through :mod:`repro.locking` records its
acquisition order (flagging lock-order inversions) and writes to
runtime-checked guarded attributes assert the guarding lock is held.  An
autouse fixture fails any test whose execution produced a violation.

``--shape-check`` is the same idea for array contracts: every function in the
:mod:`repro.analysis.shapes_spec` manifest is wrapped so its runtime argument
and return shapes/dtypes are checked against the declared ``# shape:`` /
``# dtype:`` contracts, and an autouse fixture fails any test whose execution
violated one.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="enable the runtime lock-order/guarded-write sanitizer "
             "(repro.analysis.sanitizer) for the whole run")
    parser.addoption(
        "--shape-check", action="store_true", default=False,
        help="check runtime array shapes/dtypes against the static "
             "# shape: / # dtype: contracts (repro.analysis.shape_runtime)")


def pytest_configure(config):
    if config.getoption("--sanitize"):
        from repro.analysis import sanitizer
        sanitizer.enable()
    if config.getoption("--shape-check"):
        from repro.analysis import shape_runtime
        shape_runtime.enable()


def pytest_unconfigure(config):
    if config.getoption("--sanitize"):
        from repro.analysis import sanitizer
        sanitizer.disable()
    if config.getoption("--shape-check"):
        from repro.analysis import shape_runtime
        shape_runtime.disable()


@pytest.fixture(autouse=True)
def _sanitizer_violations(request):
    """Under ``--sanitize``, fail any test that produced a violation."""
    if not request.config.getoption("--sanitize"):
        yield
        return
    from repro.analysis import sanitizer
    sanitizer.take_violations()  # drop anything left over from collection
    yield
    violations = sanitizer.take_violations()
    if violations:
        pytest.fail("sanitizer violations:\n" +
                    "\n".join(str(v) for v in violations))


@pytest.fixture(autouse=True)
def _shape_violations(request):
    """Under ``--shape-check``, fail any test that broke a shape contract."""
    if not request.config.getoption("--shape-check"):
        yield
        return
    from repro.analysis import shape_runtime
    shape_runtime.take_violations()  # drop anything left over from collection
    yield
    violations = shape_runtime.take_violations()
    if violations:
        pytest.fail("shape contract violations:\n" +
                    "\n".join(str(v) for v in violations))
