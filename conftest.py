"""Pytest bootstrap: make the in-tree package importable without installation.

The repository is normally installed with ``pip install -e .``; this shim only
matters for offline environments where the editable install cannot build a
wheel (no network to fetch the ``wheel`` package).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
