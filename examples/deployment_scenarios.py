#!/usr/bin/env python
"""Deployment-scenario awareness: why the cost model matters.

The same set of trained models and cascades is evaluated under the paper's
four deployment scenarios (INFER ONLY, ONGOING, CAMERA, ARCHIVE).  The example
shows two things the paper emphasizes:

* the fastest cascade — and the whole Pareto frontier — changes with the
  scenario, because data-handling costs hit different input representations
  differently, and
* choosing a cascade while ignoring those costs ("scenario-oblivious", the
  common practice of reporting inference time only) leaves throughput on the
  table once an accuracy-loss budget exists.

Run with:  python examples/deployment_scenarios.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import UserConstraints, evaluate_cascade
from repro.core.selector import select_cascade
from repro.experiments.presets import SMOKE_SCALE
from repro.experiments.workspace import get_workspace

CATEGORY = "komondor"
LOSS_BUDGET = 0.05


def main() -> None:
    print("[1/2] building the smoke-scale workspace (two predicates) ...")
    workspace = get_workspace(SMOKE_SCALE)
    predicate = workspace.predicates[CATEGORY]
    profilers = workspace.profilers()

    print(f"\n[2/2] contains_object({CATEGORY}) under the four scenarios, "
          f"with a {LOSS_BUDGET:.0%} accuracy-loss budget:\n")
    header = (f"{'scenario':12s} {'frontier':>8s} {'aware choice':>35s} "
              f"{'aware fps':>10s} {'oblivious fps':>14s} {'gain':>7s}")
    print(header)
    print("-" * len(header))

    oblivious_frontier = predicate.optimizer.frontier(profilers["infer_only"])
    constraints = UserConstraints(max_accuracy_loss=LOSS_BUDGET)

    for name in ("infer_only", "ongoing", "camera", "archive"):
        profiler = profilers[name]
        frontier = predicate.optimizer.frontier(profiler)
        aware = select_cascade(frontier, constraints)

        oblivious_pick = select_cascade(oblivious_frontier, constraints)
        oblivious = evaluate_cascade(oblivious_pick.cascade,
                                     predicate.optimizer.cache, profiler)
        gain = (aware.throughput / oblivious.throughput - 1.0) * 100
        label = aware.name if len(aware.name) <= 35 else aware.name[:32] + "..."
        print(f"{name:12s} {len(frontier):8d} {label:>35s} "
              f"{aware.throughput:10,.0f} {oblivious.throughput:14,.0f} "
              f"{gain:+6.1f}%")

    print("\nThe aware and oblivious picks coincide under INFER ONLY by "
          "construction; under the\nother scenarios the aware choice is never "
          "slower and is often a different cascade\nbuilt on cheaper input "
          "representations.")


if __name__ == "__main__":
    main()
