#!/usr/bin/env python
"""Multi-camera catalogs: named tables, FROM <table> routing and fan-out.

The paper's CAMERA scenario assumes many live feeds.  This example opens one
database over three camera shards and walks the catalog API end to end:

1. ``connect({name: corpus})`` attaches one table per camera; a predicate is
   trained *once* and shared by every shard,
2. ``SELECT * FROM cam_north`` routes to one shard's executor — other
   cameras' caches stay untouched,
3. ``SELECT * FROM all_cameras`` fans the query out: each shard is planned
   with its own observed selectivity, the shards run concurrently, and the
   merged result carries a ``__table__`` provenance column plus per-shard
   execution statistics,
4. a new camera comes online mid-session via ``db.attach`` and immediately
   participates in the next fan-out; frames stream into a single shard via
   ``db.ingest(..., table=...)``.

Run with:  python examples/multi_camera_fanout.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.core import ArchitectureSpec, TahomaConfig, TrainingConfig, UserConstraints
from repro.data import build_predicate_splits, generate_corpus, get_category
from repro.transforms import standard_transform_grid

IMAGE_SIZE = 32
CATEGORY = "komondor"
FANOUT_SQL = f"SELECT * FROM all_cameras WHERE contains_object({CATEGORY})"


def make_feed(n: int, seed: int, positive_rate: float = 0.5):
    return generate_corpus((get_category(CATEGORY),), n_images=n,
                           image_size=IMAGE_SIZE,
                           rng=np.random.default_rng(seed),
                           positive_rate=positive_rate)


def main() -> None:
    rng = np.random.default_rng(0)

    print("[1/4] opening a three-camera catalog + training one predicate ...")
    cameras = {"cam_north": make_feed(48, seed=1, positive_rate=0.7),
               "cam_south": make_feed(32, seed=2, positive_rate=0.3),
               "cam_east": make_feed(40, seed=3, positive_rate=0.5)}
    db = repro.connect(cameras,
                       default_constraints=UserConstraints(max_accuracy_loss=0.05))
    splits = build_predicate_splits(get_category(CATEGORY), n_train=96,
                                    n_config=64, n_eval=64,
                                    image_size=IMAGE_SIZE, rng=rng)
    config = TahomaConfig(
        architectures=(ArchitectureSpec(1, 8, 16), ArchitectureSpec(2, 8, 16)),
        transforms=tuple(standard_transform_grid(
            resolutions=(8, 16, 32), color_modes=("rgb", "gray"))),
        precision_targets=(0.93, 0.97),
        max_depth=2,
        training=TrainingConfig(epochs=3, batch_size=16))
    db.register_predicate(CATEGORY, splits, config=config,
                          reference_params={"epochs": 4, "base_width": 8,
                                            "n_stages": 2, "blocks_per_stage": 1})
    db.use_scenario("camera")
    print(f"      tables: {db.tables()}")

    print("[2/4] routing a query to one shard ...")
    north = db.execute(f"SELECT * FROM cam_north WHERE contains_object({CATEGORY})")
    print(f"      cam_north: {len(north)} hits, classified "
          f"{north.images_classified[CATEGORY]} frames "
          f"(cam_south untouched: "
          f"{db.executor_for('cam_south').materialized_categories() == []})")

    print("[3/4] fanning out across every camera ...")
    merged = db.execute(FANOUT_SQL)
    print(f"      {len(merged)} merged hits from {merged.tables}")
    for table in merged.tables:
        stats = merged.images_classified[table]
        plan = merged.plans[table]
        print(f"      {table:>10}: {len(merged.per_table(table))} hits, "
              f"classified {stats[CATEGORY]}, planned selectivity "
              f"{plan.content_steps[0].selectivity:.2f}")
    sample = merged.fetchone()
    print(f"      provenance sample: __table__={sample['__table__']!r}, "
          f"image_id={sample['image_id']}")

    print("[4/4] a new camera comes online; frames stream into one shard ...")
    db.attach("cam_west", make_feed(24, seed=4, positive_rate=0.6))
    batch = make_feed(12, seed=5)
    db.ingest(batch.images, metadata=batch.metadata, content=batch.content,
              table="cam_north")
    merged = db.execute(FANOUT_SQL)
    classified = {table: merged.images_classified[table][CATEGORY]
                  for table in merged.tables}
    print(f"      fan-out now covers {merged.tables}")
    print(f"      frames classified per shard (only new work): {classified}")


if __name__ == "__main__":
    main()
