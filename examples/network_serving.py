#!/usr/bin/env python
"""Serving a VisualDatabase over the network: sessions, cursors, backpressure.

The ``repro.server`` package turns the in-process engine into a multi-client
system — a stdlib-only TCP server speaking the SQL dialect over
newline-delimited JSON.  This example walks the serving layer end to end:

1. a two-camera catalog with one trained predicate goes behind
   ``repro.server.serve`` (ephemeral port, in-process — the same server
   works across processes and hosts),
2. a client ``connect()``s and pages a content query through a server-side
   cursor — the query runs once, ``fetch`` never re-runs it,
3. a repeated dashboard query is served from the plan cache (exact repeat:
   *hit*; same shape with a new literal: *rebind* — cascade selection is
   never repeated),
4. per-query timeouts abort at executor chunk boundaries and the session
   survives; an overfull admission queue rejects immediately with a
   structured backpressure error,
5. the server shuts down gracefully, draining in-flight queries.

Run with:  python examples/network_serving.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
import repro.server
from repro.core import ArchitectureSpec, TahomaConfig, TrainingConfig, UserConstraints
from repro.data import build_predicate_splits, generate_corpus, get_category
from repro.query.ast import QueryTimeoutError
from repro.transforms import standard_transform_grid

IMAGE_SIZE = 32
CATEGORY = "komondor"
CONTENT_SQL = (f"SELECT * FROM all_cameras WHERE contains_object({CATEGORY}) "
               "LIMIT 8")


def make_feed(n: int, seed: int, positive_rate: float = 0.5):
    return generate_corpus((get_category(CATEGORY),), n_images=n,
                           image_size=IMAGE_SIZE,
                           rng=np.random.default_rng(seed),
                           positive_rate=positive_rate)


def build_database() -> repro.VisualDatabase:
    db = repro.connect(
        {"cam_north": make_feed(48, seed=1, positive_rate=0.7),
         "cam_south": make_feed(32, seed=2, positive_rate=0.3)},
        default_constraints=UserConstraints(max_accuracy_loss=0.05))
    splits = build_predicate_splits(get_category(CATEGORY), n_train=96,
                                    n_config=64, n_eval=64,
                                    image_size=IMAGE_SIZE,
                                    rng=np.random.default_rng(0))
    config = TahomaConfig(
        architectures=(ArchitectureSpec(1, 8, 16), ArchitectureSpec(2, 8, 16)),
        transforms=tuple(standard_transform_grid(
            resolutions=(8, 16, 32), color_modes=("rgb", "gray"))),
        precision_targets=(0.93, 0.97),
        max_depth=2,
        training=TrainingConfig(epochs=3, batch_size=16))
    db.register_predicate(CATEGORY, splits, config=config,
                          reference_params={"epochs": 4, "base_width": 8,
                                            "n_stages": 2,
                                            "blocks_per_stage": 1})
    db.use_scenario("camera")
    return db


def main() -> None:
    print("[1/5] training one predicate and starting the server ...")
    db = build_database()
    server = repro.server.serve(db, port=0, max_workers=2, max_queue=8)
    host, port = server.address
    print(f"      listening on {host}:{port} "
          f"(wire protocol: one JSON object per line)")

    with repro.server.connect(host, port) as conn:
        print("[2/5] paging a fan-out query through a server-side cursor ...")
        cursor = conn.execute(CONTENT_SQL)
        print(f"      cursor {cursor.cursor_id}: {cursor.rowcount} rows, "
              f"columns include __table__ provenance")
        while True:
            page = cursor.fetchmany(3)
            if not page:
                break
            tagged = [f"{row['__table__']}#{row['image_id']}" for row in page]
            print(f"      page of {len(page)}: {', '.join(tagged)} "
                  f"({cursor.remaining} remaining)")

        print("[3/5] repeated shapes hit the plan cache ...")
        dashboard = ("SELECT image_id FROM cam_north "
                     "WHERE location = '{loc}'")
        for loc in ("detroit", "detroit", "seattle"):
            conn.execute(dashboard.format(loc=loc)).fetchall()
        stats = conn.stats()["plan_cache"]
        print(f"      {stats['hits']} hits, {stats['rebinds']} rebinds, "
              f"{stats['misses']} misses "
              f"(hit rate {stats['hit_rate']:.2f}) — an exact repeat skips "
              "parse+plan, a new literal reuses the cascade selections")

        print("[4/5] a per-query timeout aborts at a chunk boundary ...")
        try:
            conn.execute(CONTENT_SQL, timeout=1e-6)
        except QueryTimeoutError as exc:
            print(f"      QueryTimeoutError: {exc}")
        print(f"      session survived: ping -> {conn.ping()}; the same "
              "query without a timeout:")
        print(f"      {conn.execute(CONTENT_SQL).rowcount} rows "
              "(admission queue full would instead raise BackpressureError "
              "immediately)")

    print("[5/5] graceful shutdown (in-flight queries drain) ...")
    server.close()
    try:
        repro.server.connect(host, port, timeout=0.5)
    except OSError:
        print("      port released; new connections are refused")


if __name__ == "__main__":
    main()
