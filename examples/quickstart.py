#!/usr/bin/env python
"""Quickstart: optimize one contains_object predicate end to end.

This walks through the whole TAHOMA pipeline at a small scale:

1. render a labeled synthetic dataset for the ``komondor`` predicate,
2. train the expensive reference classifier (the ResNet50 stand-in) and a
   grid of small specialized CNNs that vary architecture *and* physical input
   representation,
3. calibrate decision thresholds, enumerate cascades and evaluate them under
   a deployment scenario's cost model,
4. pick the Pareto-optimal cascade matching a user constraint ("up to 5%
   relative accuracy loss") and run it over held-out images.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import train_reference_model
from repro.core import (
    ArchitectureSpec,
    TahomaConfig,
    TahomaOptimizer,
    TrainingConfig,
    UserConstraints,
)
from repro.costs import CAMERA, INFER_ONLY, CostProfiler, SERVER_GPU, calibrate_device
from repro.data import build_predicate_splits, get_category
from repro.transforms import standard_transform_grid

IMAGE_SIZE = 32
CATEGORY = "komondor"


def main() -> None:
    rng = np.random.default_rng(0)

    print(f"[1/4] rendering labeled data for contains_object({CATEGORY}) ...")
    category = get_category(CATEGORY)
    splits = build_predicate_splits(category, n_train=96, n_config=64, n_eval=64,
                                    image_size=IMAGE_SIZE, rng=rng)
    print(f"      train/config/eval sizes: {splits.sizes()}")

    print("[2/4] training the reference classifier (ResNet50 stand-in) ...")
    start = time.time()
    reference = train_reference_model(splits, resolution=IMAGE_SIZE, epochs=6,
                                      base_width=16, n_stages=3,
                                      blocks_per_stage=1, rng=rng)
    print(f"      done in {time.time() - start:.1f}s, "
          f"{reference.flops:,} FLOPs/inference, "
          f"train accuracy {reference.train_accuracy:.2f}")

    print("[3/4] training the A x F model grid and building cascades ...")
    config = TahomaConfig(
        architectures=(ArchitectureSpec(1, 8, 16), ArchitectureSpec(2, 8, 16)),
        transforms=tuple(standard_transform_grid(
            resolutions=(8, 16, 32),
            color_modes=("rgb", "red", "green", "blue", "gray"))),
        precision_targets=(0.93, 0.97),
        max_depth=2,
        training=TrainingConfig(epochs=4, batch_size=32))
    optimizer = TahomaOptimizer(config)
    start = time.time()
    optimizer.initialize(splits, reference_model=reference, rng=rng)
    print(f"      {optimizer.n_models} models, {optimizer.n_cascades:,} cascades "
          f"in {time.time() - start:.1f}s")

    print("[4/4] evaluating cascades under two deployment scenarios ...")
    device = calibrate_device(SERVER_GPU, reference.flops, target_fps=75.0)
    for scenario in (INFER_ONLY, CAMERA):
        profiler = CostProfiler(device, scenario, source_resolution=IMAGE_SIZE,
                                cost_resolution=224)
        frontier = optimizer.frontier(profiler)
        chosen = optimizer.select(profiler, UserConstraints(max_accuracy_loss=0.05))
        labels = optimizer.query(splits.eval.images, chosen)
        accuracy = float((labels == splits.eval.labels).mean())
        print(f"\n  scenario: {scenario.name}")
        print(f"    Pareto-optimal cascades : {len(frontier)}")
        print(f"    selected cascade        : {chosen.name}")
        print(f"    expected accuracy       : {chosen.accuracy:.3f} "
              f"(measured on eval: {accuracy:.3f})")
        print(f"    expected throughput     : {chosen.throughput:,.0f} fps "
              f"(reference classifier: ~75 fps)")


if __name__ == "__main__":
    main()
