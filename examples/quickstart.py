#!/usr/bin/env python
"""Quickstart: open a visual database, register a predicate, run a query.

This walks the whole TAHOMA pipeline through the ``repro.db`` facade:

1. render a small synthetic camera corpus plus labeled training splits for
   the ``komondor`` predicate,
2. ``connect()`` to the corpus and ``register_predicate`` — the database
   trains the reference classifier and the A x F model grid, calibrates
   thresholds and enumerates cascades internally,
3. run the paper's motivating SELECT query under two deployment scenarios,
   letting the planner pick the Pareto-optimal cascade per scenario,
4. ``explain()`` the plan and round-trip the trained database through
   ``save()`` / ``load()``.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.core import ArchitectureSpec, TahomaConfig, TrainingConfig, UserConstraints
from repro.data import build_predicate_splits, generate_corpus, get_category
from repro.transforms import standard_transform_grid

IMAGE_SIZE = 32
CATEGORY = "komondor"
SQL = f"SELECT * FROM images WHERE location = 'detroit' AND contains_object({CATEGORY})"


def main() -> None:
    rng = np.random.default_rng(0)

    print(f"[1/4] rendering corpus + labeled data for contains_object({CATEGORY}) ...")
    category = get_category(CATEGORY)
    corpus = generate_corpus((category, get_category("scorpion")), n_images=60,
                             image_size=IMAGE_SIZE, rng=rng, positive_rate=0.6)
    splits = build_predicate_splits(category, n_train=96, n_config=64, n_eval=64,
                                    image_size=IMAGE_SIZE, rng=rng)
    print(f"      {len(corpus)} corpus frames; "
          f"train/config/eval sizes: {splits.sizes()}")

    print("[2/4] connect() and register the predicate (trains everything) ...")
    db = repro.connect(corpus,
                       default_constraints=UserConstraints(max_accuracy_loss=0.05))
    config = TahomaConfig(
        architectures=(ArchitectureSpec(1, 8, 16), ArchitectureSpec(2, 8, 16)),
        transforms=tuple(standard_transform_grid(
            resolutions=(8, 16, 32),
            color_modes=("rgb", "red", "green", "blue", "gray"))),
        precision_targets=(0.93, 0.97),
        max_depth=2,
        training=TrainingConfig(epochs=4, batch_size=32))
    start = time.time()
    db.register_predicate(CATEGORY, splits, config=config,
                          reference_params={"epochs": 6, "base_width": 16,
                                            "n_stages": 3, "blocks_per_stage": 1})
    optimizer = db.optimizer(CATEGORY)
    print(f"      {optimizer.n_models} models, {optimizer.n_cascades:,} cascades "
          f"in {time.time() - start:.1f}s")

    print("[3/4] running the query under two deployment scenarios ...")
    for scenario in ("infer_only", "camera"):
        db.use_scenario(scenario)
        results = db.execute(SQL)
        chosen = results.cascades_used[CATEGORY]
        print(f"\n  scenario: {scenario}")
        print(f"    selected cascade   : {chosen.name}")
        print(f"    expected accuracy  : {chosen.accuracy:.3f}")
        print(f"    expected throughput: {chosen.throughput:,.0f} fps "
              f"(reference classifier: ~75 fps)")
        print(f"    rows returned      : {len(results)} "
              f"({results.images_classified[CATEGORY]} frames classified)")

    print("\n[4/4] explain() and save/load round trip ...")
    print("\n" + str(db.explain(SQL)) + "\n")
    with tempfile.TemporaryDirectory() as tmp:
        db.save(Path(tmp) / "quickstart.vdb")
        reloaded = repro.VisualDatabase.load(Path(tmp) / "quickstart.vdb")
        reloaded.use_scenario("camera")
        again = reloaded.execute(SQL)
        print(f"      reloaded database returns {len(again)} rows "
              f"(identical: {np.array_equal(again.image_ids, results.image_ids)})")


if __name__ == "__main__":
    main()
