#!/usr/bin/env python
"""Retention windows: an endless feed in bounded memory.

The paper's ONGOING scenario assumes a camera that never stops.  Without
retention, every ``db.ingest()`` grows the corpus, the base relation and the
materialized virtual columns forever.  A ``RetentionPolicy`` turns a table
into a *sliding window* over its feed:

1. open a database with ``retention=RetentionPolicy(max_rows=N)`` and a
   store byte budget, register a predicate,
2. stream many times the window's worth of frames through ``db.ingest()`` —
   the table never holds more than N rows, the store never exceeds its
   budget, and image ids stay stable (dropped ids are never reused),
3. query the live window: results carry the original ids, surviving rows are
   never re-classified, and
4. switch a table to an age-based window (``max_age`` against the newest
   frame's timestamp) with ``db.set_retention()`` and sweep it on demand
   with ``db.retain()``.

Run with:  python examples/retention_window.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.core import ArchitectureSpec, TahomaConfig, TrainingConfig, UserConstraints
from repro.data import build_predicate_splits, generate_corpus, get_category
from repro.db import RetentionPolicy
from repro.transforms import standard_transform_grid

IMAGE_SIZE = 32
CATEGORY = "komondor"
SQL = f"SELECT * FROM images WHERE contains_object({CATEGORY})"
WINDOW = 48


def make_frames(n: int, seed: int):
    return generate_corpus((get_category(CATEGORY),), n_images=n,
                           image_size=IMAGE_SIZE,
                           rng=np.random.default_rng(seed), positive_rate=0.5)


def main() -> None:
    rng = np.random.default_rng(0)

    print("[1/4] database with a sliding window + predicate training ...")
    budget = 6 * WINDOW * IMAGE_SIZE * IMAGE_SIZE * 3
    db = repro.connect(make_frames(WINDOW, seed=1),
                       retention=RetentionPolicy(max_rows=WINDOW),
                       store_budget=budget,
                       default_constraints=UserConstraints(max_accuracy_loss=0.05))
    splits = build_predicate_splits(get_category(CATEGORY), n_train=96,
                                    n_config=64, n_eval=64,
                                    image_size=IMAGE_SIZE, rng=rng)
    config = TahomaConfig(
        architectures=(ArchitectureSpec(1, 8, 16), ArchitectureSpec(2, 8, 16)),
        transforms=tuple(standard_transform_grid(
            resolutions=(8, 16, 32), color_modes=("rgb", "gray"))),
        precision_targets=(0.93, 0.97),
        max_depth=2,
        training=TrainingConfig(epochs=3, batch_size=16))
    db.register_predicate(CATEGORY, splits, config=config,
                          reference_params={"epochs": 4, "base_width": 8,
                                            "n_stages": 2, "blocks_per_stage": 1})
    db.use_scenario("ongoing")
    db.execute(SQL)  # registers the cascade's representations with the store

    print(f"[2/4] streaming 6x the window through a {WINDOW}-row table ...")
    for round_index in range(6):
        batch = make_frames(WINDOW, seed=10 + round_index)
        new_ids = db.ingest(batch.images, metadata=batch.metadata,
                            content=batch.content)
        store = db.executor.store
        print(f"      round {round_index + 1}: ingested ids "
              f"[{new_ids[0]}..{new_ids[-1]}] -> corpus={len(db.corpus)} "
              f"rows (offset={db.executor.id_offset}), store "
              f"{store.bytes_stored():,}/{budget:,} bytes")

    print("[3/4] querying the live window ...")
    result = db.execute(SQL)
    ids = result.image_ids
    print(f"      {len(result)} hits among ids [{ids.min()}..{ids.max()}], "
          f"classified {result.images_classified[CATEGORY]} frames")
    repeat = db.execute(SQL)
    print(f"      repeated query classified "
          f"{repeat.images_classified[CATEGORY]} frames "
          f"(survivors keep their labels across retention)")

    print("[4/4] switching to an age-based window ...")
    newest = float(db.corpus.metadata["timestamp"].max())
    db.set_retention("images", RetentionPolicy(max_age=newest / 2))
    dropped = db.retain()
    print(f"      retain() dropped {dropped['images']} rows older than "
          f"{newest / 2:.0f}s before the newest frame; "
          f"corpus={len(db.corpus)} rows, ids still start at "
          f"{db.executor.id_offset}")


if __name__ == "__main__":
    main()
