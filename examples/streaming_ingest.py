#!/usr/bin/env python
"""Streaming ingest: the ONGOING scenario as an executable path.

The paper's ONGOING deployment transforms video into its input
representations *at ingest time*; queries then load only the (much smaller)
representation bytes.  This example runs that lifecycle end to end:

1. open a database over an initial archive and register a predicate,
2. switch to the ``ongoing`` scenario and run the first query — the
   representations the selected cascade needs are materialized corpus-wide
   and registered with the store,
3. ingest three batches of new frames: each ``db.ingest()`` extends the
   corpus, the materialized virtual columns and every registered
   representation in place, so the repeated query classifies *only* the new
   frames,
4. cap the store with a byte budget and watch eviction hold the footprint
   constant while results stay identical.

Run with:  python examples/streaming_ingest.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.core import ArchitectureSpec, TahomaConfig, TrainingConfig, UserConstraints
from repro.data import build_predicate_splits, generate_corpus, get_category
from repro.transforms import standard_transform_grid

IMAGE_SIZE = 32
CATEGORY = "komondor"
SQL = f"SELECT * FROM images WHERE contains_object({CATEGORY})"


def make_frames(n: int, seed: int):
    return generate_corpus((get_category(CATEGORY),), n_images=n,
                           image_size=IMAGE_SIZE,
                           rng=np.random.default_rng(seed), positive_rate=0.5)


def main() -> None:
    rng = np.random.default_rng(0)

    print("[1/4] initial archive + predicate training ...")
    corpus = make_frames(48, seed=1)
    splits = build_predicate_splits(get_category(CATEGORY), n_train=96,
                                    n_config=64, n_eval=64,
                                    image_size=IMAGE_SIZE, rng=rng)
    db = repro.connect(corpus,
                       default_constraints=UserConstraints(max_accuracy_loss=0.05))
    config = TahomaConfig(
        architectures=(ArchitectureSpec(1, 8, 16), ArchitectureSpec(2, 8, 16)),
        transforms=tuple(standard_transform_grid(
            resolutions=(8, 16, 32), color_modes=("rgb", "gray"))),
        precision_targets=(0.93, 0.97),
        max_depth=2,
        training=TrainingConfig(epochs=3, batch_size=16))
    db.register_predicate(CATEGORY, splits, config=config,
                          reference_params={"epochs": 4, "base_width": 8,
                                            "n_stages": 2, "blocks_per_stage": 1})

    print("[2/4] first query under the ONGOING scenario ...")
    db.use_scenario("ongoing")
    result = db.execute(SQL)
    store = db.executor.store
    print(f"      {len(result)} hits, classified "
          f"{result.images_classified[CATEGORY]} frames; store holds "
          f"{len(store)} representations "
          f"({store.bytes_stored():,} simulated bytes), registered: "
          f"{[spec.name for spec in store.registered_specs()]}")

    print("[3/4] ingesting three batches of new frames ...")
    for index in range(3):
        batch = make_frames(16, seed=10 + index)
        new_ids = db.ingest(batch.images, metadata=batch.metadata,
                            content=batch.content)
        result = db.execute(SQL)
        print(f"      batch {index + 1}: +{new_ids.size} frames "
              f"(corpus={len(db.corpus)}), repeated query classified "
              f"{result.images_classified[CATEGORY]} frames, "
              f"{len(result)} total hits")

    print("[4/4] replaying with a store byte budget ...")
    budget = store.bytes_stored() // 3
    bounded = repro.connect(make_frames(48, seed=1), store_budget=budget,
                            default_constraints=UserConstraints(max_accuracy_loss=0.05))
    bounded.register_optimizer(CATEGORY, db.optimizer(CATEGORY))
    bounded.use_scenario("ongoing")
    bounded_result = bounded.execute(SQL)
    bounded_store = bounded.executor.store
    within = bounded_store.bytes_stored() <= budget
    print(f"      budget {budget:,} bytes -> store holds "
          f"{bounded_store.bytes_stored():,} bytes after "
          f"{bounded_store.evictions} evictions (within budget: {within}); "
          f"query still classified all "
          f"{bounded_result.images_classified[CATEGORY]} frames")


if __name__ == "__main__":
    main()
