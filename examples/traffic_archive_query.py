#!/usr/bin/env python
"""Archived traffic-camera analytics: the paper's motivating SELECT query.

Scenario: a city stores full frames from its traffic cameras on an SSD
archive, together with metadata (location, timestamp, camera id).  An analyst
later asks

    SELECT * FROM images
    WHERE location = 'detroit' AND contains_object(komondor)

which decomposes into a cheap metadata predicate and an expensive binary
content predicate.  The query processor evaluates the metadata predicate
first, selects a Pareto-optimal cascade for the ARCHIVE deployment scenario
(loading + transforming + inference all count) and classifies only the
surviving rows, materializing the ``contains_komondor`` virtual column for
future queries.

Run with:  python examples/traffic_archive_query.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import train_reference_model
from repro.core import (
    ArchitectureSpec,
    TahomaConfig,
    TahomaOptimizer,
    TrainingConfig,
    UserConstraints,
)
from repro.costs import ARCHIVE, CostProfiler, SERVER_GPU, calibrate_device
from repro.data import build_predicate_splits, generate_corpus, get_category
from repro.query import ContainsObject, MetadataPredicate, Query, QueryProcessor
from repro.transforms import standard_transform_grid

IMAGE_SIZE = 32
CATEGORY = "komondor"


def build_optimizer(rng: np.random.Generator) -> tuple[TahomaOptimizer, int]:
    """System initialization for one predicate (run once per new predicate)."""
    category = get_category(CATEGORY)
    splits = build_predicate_splits(category, n_train=96, n_config=64, n_eval=64,
                                    image_size=IMAGE_SIZE, rng=rng)
    reference = train_reference_model(splits, resolution=IMAGE_SIZE, epochs=6,
                                      base_width=16, n_stages=3,
                                      blocks_per_stage=1, rng=rng)
    config = TahomaConfig(
        architectures=(ArchitectureSpec(1, 8, 16), ArchitectureSpec(2, 8, 32)),
        transforms=tuple(standard_transform_grid(
            resolutions=(8, 16, 32), color_modes=("rgb", "gray", "red"))),
        precision_targets=(0.95,),
        training=TrainingConfig(epochs=4))
    optimizer = TahomaOptimizer(config)
    optimizer.initialize(splits, reference_model=reference, rng=rng)
    return optimizer, reference.flops


def main() -> None:
    rng = np.random.default_rng(1)

    print("[1/3] initializing TAHOMA for contains_object(komondor) ...")
    optimizer, reference_flops = build_optimizer(rng)
    print(f"      {optimizer.n_models} models, {optimizer.n_cascades:,} cascades")

    print("[2/3] generating the archived camera corpus ...")
    corpus = generate_corpus((get_category(CATEGORY), get_category("scorpion")),
                             n_images=60, image_size=IMAGE_SIZE, rng=rng,
                             positive_rate=0.6)
    print(f"      {len(corpus)} frames, locations: "
          f"{sorted(set(corpus.metadata['location']))}")

    print("[3/3] running the SELECT query under the ARCHIVE scenario ...")
    device = calibrate_device(SERVER_GPU, reference_flops, target_fps=75.0)
    profiler = CostProfiler(device, ARCHIVE, source_resolution=IMAGE_SIZE,
                            cost_resolution=224)
    processor = QueryProcessor(corpus, {CATEGORY: optimizer}, profiler)

    query = Query(
        metadata_predicates=(MetadataPredicate("location", "==", "detroit"),),
        content_predicates=(ContainsObject(CATEGORY),),
        constraints=UserConstraints(max_accuracy_loss=0.05))
    result = processor.execute(query)

    chosen = result.cascades_used[CATEGORY]
    truth = corpus.content[CATEGORY]
    print(f"\n  cascade selected   : {chosen.name}")
    print(f"  expected accuracy  : {chosen.accuracy:.3f}")
    print(f"  expected throughput: {chosen.throughput:,.0f} fps under ARCHIVE")
    print(f"  frames classified  : {result.images_classified[CATEGORY]} "
          f"(of {len(corpus)} in the corpus)")
    print(f"  rows returned      : {len(result)}")
    if len(result) > 0:
        hits = truth[result.selected_indices]
        print(f"  true positives     : {int(hits.sum())}/{len(result)}")

    # A follow-up query over the whole corpus reuses the materialized column
    # for the Detroit rows and classifies only the remaining frames.
    follow_up = Query(content_predicates=(ContainsObject(CATEGORY),))
    second = processor.execute(follow_up)
    print(f"\n  follow-up query classified only "
          f"{second.images_classified[CATEGORY]} additional frames")


if __name__ == "__main__":
    main()
