#!/usr/bin/env python
"""Archived traffic-camera analytics: the paper's motivating SELECT query.

Scenario: a city stores full frames from its traffic cameras on an SSD
archive, together with metadata (location, timestamp, camera id).  An analyst
later asks

    SELECT * FROM images
    WHERE location = 'detroit' AND contains_object(komondor)

The ``repro.db`` facade decomposes this into a cheap metadata predicate and
an expensive binary content predicate: the planner evaluates the metadata
predicate first, selects a Pareto-optimal cascade for the ARCHIVE deployment
scenario (loading + transforming + inference all count) and the executor
classifies only the surviving rows, materializing the ``contains_komondor``
virtual column for future queries.

Run with:  python examples/traffic_archive_query.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.core import ArchitectureSpec, TahomaConfig, TrainingConfig, UserConstraints
from repro.data import build_predicate_splits, generate_corpus, get_category
from repro.transforms import standard_transform_grid

IMAGE_SIZE = 32
CATEGORY = "komondor"


def main() -> None:
    rng = np.random.default_rng(1)

    print("[1/3] generating the archived camera corpus ...")
    corpus = generate_corpus((get_category(CATEGORY), get_category("scorpion")),
                             n_images=60, image_size=IMAGE_SIZE, rng=rng,
                             positive_rate=0.6)
    print(f"      {len(corpus)} frames, locations: "
          f"{sorted(set(corpus.metadata['location']))}")

    print("[2/3] initializing TAHOMA for contains_object(komondor) ...")
    db = repro.connect(corpus, scenario="archive",
                       default_constraints=UserConstraints(max_accuracy_loss=0.05))
    splits = build_predicate_splits(get_category(CATEGORY), n_train=96,
                                    n_config=64, n_eval=64,
                                    image_size=IMAGE_SIZE, rng=rng)
    config = TahomaConfig(
        architectures=(ArchitectureSpec(1, 8, 16), ArchitectureSpec(2, 8, 32)),
        transforms=tuple(standard_transform_grid(
            resolutions=(8, 16, 32), color_modes=("rgb", "gray", "red"))),
        precision_targets=(0.95,),
        training=TrainingConfig(epochs=4))
    db.register_predicate(CATEGORY, splits, config=config,
                          reference_params={"epochs": 6, "base_width": 16,
                                            "n_stages": 3, "blocks_per_stage": 1})
    optimizer = db.optimizer(CATEGORY)
    print(f"      {optimizer.n_models} models, {optimizer.n_cascades:,} cascades")

    print("[3/3] running the SELECT query under the ARCHIVE scenario ...")
    sql = (f"SELECT * FROM images WHERE location = 'detroit' "
           f"AND contains_object({CATEGORY})")
    print("\n" + str(db.explain(sql)) + "\n")

    result = db.execute(sql)
    chosen = result.cascades_used[CATEGORY]
    truth = corpus.content[CATEGORY]
    print(f"  cascade selected   : {chosen.name}")
    print(f"  expected accuracy  : {chosen.accuracy:.3f}")
    print(f"  expected throughput: {chosen.throughput:,.0f} fps under ARCHIVE")
    print(f"  frames classified  : {result.images_classified[CATEGORY]} "
          f"(of {len(corpus)} in the corpus)")
    print(f"  rows returned      : {len(result)}")
    if len(result) > 0:
        hits = truth[result.image_ids]
        print(f"  true positives     : {int(hits.sum())}/{len(result)}")

    # A follow-up query over the whole corpus reuses the materialized column
    # for the Detroit rows and classifies only the remaining frames.
    second = db.execute(f"SELECT * FROM images WHERE contains_object({CATEGORY})")
    print(f"\n  follow-up query classified only "
          f"{second.images_classified[CATEGORY]} additional frames")


if __name__ == "__main__":
    main()
