#!/usr/bin/env python
"""Video-stream monitoring: TAHOMA+DD vs. a NoScope-style pipeline.

Scenario: a fixed camera produces a video stream and an analyst wants every
frame containing a particular object.  Consecutive frames are highly
redundant, so both systems sit behind a frame-difference detector that reuses
the previous result for near-identical frames; the question is what runs on
the frames that *do* get classified:

* NoScope-style: one specialized full-input CNN, falling back to the expensive
  oracle when its output is uncertain.
* TAHOMA+DD: a cascade selected from the physical-representation-aware design
  space at the accuracy level NoScope achieved.

This is a small-scale version of the paper's Figure 8 experiment.

Run with:  python examples/video_stream_monitoring.py
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import DifferenceDetector
from repro.data.video import CORAL_PRESET, JACKSON_PRESET, generate_video_stream
from repro.experiments.noscope_exp import noscope_comparison, split_stream
from repro.experiments.presets import SMOKE_SCALE


def describe_streams() -> None:
    rng = np.random.default_rng(0)
    print("synthetic stand-ins for the NoScope datasets:")
    for preset in (CORAL_PRESET, JACKSON_PRESET):
        stream = generate_video_stream(
            replace(preset, n_frames=240, frame_size=32), rng)
        detector = DifferenceDetector()
        detector.calibrate(stream.frames, target_reuse=0.25)
        plan = detector.plan(stream.frames)
        print(f"  {preset.name:8s}  frames={len(stream):4d}  "
              f"positive rate={stream.labels.mean():.2f}  "
              f"temporal redundancy={stream.temporal_redundancy():.2f}  "
              f"DD would reuse {plan.reuse_fraction * 100:.0f}% of frames")


def main() -> None:
    print("[1/2] characterizing the two synthetic streams ...")
    describe_streams()

    print("\n[2/2] running the Figure 8 comparison at smoke scale ...")
    results = noscope_comparison(SMOKE_SCALE, stream_names=("coral", "jackson"),
                                 seed=0)
    header = (f"{'stream':10s} {'system':10s} {'fps':>10s} {'accuracy':>9s} "
              f"{'oracle use':>11s} {'reused':>7s}")
    print("\n" + header)
    print("-" * len(header))
    for comparison in results:
        for result in (comparison.noscope, comparison.tahoma_dd):
            print(f"{comparison.stream_name:10s} {result.name:10s} "
                  f"{result.throughput:10,.0f} {result.accuracy:9.3f} "
                  f"{result.oracle_fraction * 100:10.0f}% "
                  f"{result.reuse_fraction * 100:6.0f}%")
        print(f"{'':10s} -> TAHOMA+DD speedup over NoScope: "
              f"{comparison.speedup:.1f}x\n")


if __name__ == "__main__":
    main()
