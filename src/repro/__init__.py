"""Reproduction of TAHOMA (Anderson et al., ICDE 2019).

*Physical Representation-based Predicate Optimization for a Visual Analytics
Database* speeds up ``contains_object`` predicates over image/video corpora by
building classifier cascades from hundreds of small CNNs that vary both their
architecture and their *physical input representation* (resolution, color
channels), and by selecting cascades with awareness of deployment-specific
data-handling costs.

The public entry point is :func:`repro.db.connect`, which opens a
:class:`~repro.db.VisualDatabase` over an image corpus (or a ``{name:
corpus}`` mapping — a multi-camera catalog)::

    db = repro.connect(corpus)
    db.register_predicate("bicycle", splits=splits, config=config)
    db.use_scenario("archive")
    rows = db.execute("SELECT * FROM images "
                      "WHERE location = 'detroit' AND contains_object(bicycle)")

Package map
-----------
``repro.nn``          NumPy CNN substrate (layers, training, FLOP accounting)
``repro.transforms``  physical input representations (the set ``F``)
``repro.data``        synthetic image corpus and video streams
``repro.costs``       deployment scenarios and the analytic cost model
``repro.storage``     storage tiers and the representation store
``repro.core``        the TAHOMA optimizer itself
``repro.baselines``   reference classifier, baseline cascades, NoScope, +DD
``repro.query``       relational layer with the contains_object operator
``repro.db``          the database facade: connect(), the table catalog,
                      planner/executor split, result sets and
                      whole-database persistence
``repro.server``      network serving layer: NDJSON wire protocol, sessions
                      with server-side cursors, admission control, plan
                      cache, and the matching connect() client
``repro.experiments`` harness regenerating every table and figure
"""

from repro.db import (
    FanoutResultSet,
    QueryPlan,
    ResultSet,
    RetentionPolicy,
    VisualDatabase,
    connect,
)
from repro.version import __version__

__all__ = ["__version__", "connect", "VisualDatabase", "ResultSet",
           "FanoutResultSet", "QueryPlan", "RetentionPolicy"]
