"""Reproduction of TAHOMA (Anderson et al., ICDE 2019).

*Physical Representation-based Predicate Optimization for a Visual Analytics
Database* speeds up ``contains_object`` predicates over image/video corpora by
building classifier cascades from hundreds of small CNNs that vary both their
architecture and their *physical input representation* (resolution, color
channels), and by selecting cascades with awareness of deployment-specific
data-handling costs.

Package map
-----------
``repro.nn``          NumPy CNN substrate (layers, training, FLOP accounting)
``repro.transforms``  physical input representations (the set ``F``)
``repro.data``        synthetic image corpus and video streams
``repro.costs``       deployment scenarios and the analytic cost model
``repro.storage``     storage tiers and the representation store
``repro.core``        the TAHOMA optimizer itself
``repro.baselines``   reference classifier, baseline cascades, NoScope, +DD
``repro.query``       relational layer with the contains_object operator
``repro.experiments`` harness regenerating every table and figure
"""

from repro.version import __version__

__all__ = ["__version__"]
