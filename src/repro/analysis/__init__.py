"""Correctness tooling for the concurrent engine: static checks + sanitizer.

This package is the repository's race detector and invariant linter.  The
engine built up in PRs 4–7 relies on conventions — per-shard locks with
snapshot reads, an fsync/rename durability protocol, a fixed lock order —
that the test suite can pass while still being wrong.  Everything here
exists to turn those conventions into enforced contracts:

``guards.py``
    The machine-readable manifest of guarded state, cross-checked against
    ``# guarded by:`` annotations in the source so it cannot drift.

``lockcheck.py``
    AST pass flagging reads/writes of guarded attributes outside a
    ``with <lock>:`` region (plus escape analysis for guarded mutable
    containers returned by reference).

``durability.py``
    AST pass over ``db/wal.py`` and ``db/persistence.py`` enforcing the
    fsync-before-rename / dirsync-after-rename / write-before-prune
    ordering that crash-safety rests on.

``sanitizer.py``
    Runtime side: instrumented locks (installed through
    :mod:`repro.locking`) that record per-thread acquisition order,
    detect lock-order inversions and assert guarded-by on attribute
    writes.  Activated over the whole test suite with ``pytest
    --sanitize``.

Run the static passes from the repo root::

    PYTHONPATH=src python -m repro.analysis          # exits 1 on findings
    PYTHONPATH=src python -m repro.analysis --list   # show what is checked

Suppress a deliberate exception with ``# unguarded ok: <reason>`` (lock
discipline) or ``# durability ok: <reason>`` (fsync ordering) on the
offending line; a reason is mandatory.  Both the CLI and a ``--sanitize``
test pass run as the ``analysis`` job in CI.
"""

from __future__ import annotations

from repro.analysis.durability import check_durability
from repro.analysis.guards import CONFINED, REGISTRY, ConfinedSpec, GuardSpec
from repro.analysis.lockcheck import Finding, check_lock_discipline

__all__ = [
    "CONFINED",
    "REGISTRY",
    "ConfinedSpec",
    "Finding",
    "GuardSpec",
    "check_durability",
    "check_lock_discipline",
]
