"""``python -m repro.analysis``: run the static passes, exit nonzero on
findings.

Findings print one per line as ``path:line: [rule] message`` (paths relative
to the ``repro`` package root), so editors and CI logs link straight to the
offending line.  ``--list`` shows what is covered without checking anything;
``--root`` points the passes at a different package tree (used by the
self-tests, which lint deliberately broken scratch copies).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.durability import check_durability
from repro.analysis.guards import CONFINED, DURABILITY_MODULES, REGISTRY
from repro.analysis.lockcheck import check_lock_discipline
from repro.analysis.shapes import check_shapes
from repro.analysis.shapes_spec import SHAPES

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static lock-discipline, durability and shape/dtype "
                    "checks over the repro package.")
    parser.add_argument(
        "--root", type=Path, default=None, metavar="DIR",
        help="package root to analyze (defaults to the installed repro "
             "package)")
    parser.add_argument(
        "--list", action="store_true",
        help="show the guarded classes, durability modules and shape "
             "contracts, then exit")
    args = parser.parse_args(argv)

    if args.list:
        _print_coverage()
        return 0

    findings = (check_lock_discipline(args.root) + check_durability(args.root)
                + check_shapes(args.root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    if findings:
        print(f"analysis: {len(findings)} finding(s)")
        return 1
    print(f"analysis: clean ({len(REGISTRY)} guarded classes, "
          f"{len(CONFINED)} confined, "
          f"{len(DURABILITY_MODULES)} durability modules, "
          f"{len(SHAPES)} shape contracts)")
    return 0


def _print_coverage() -> None:
    print(f"lock discipline: ({len(REGISTRY)} guarded classes)")
    for spec in REGISTRY:
        lock = (f"self.{spec.lock}" if spec.state is None
                else f"self.{spec.state}.{spec.lock}")
        print(f"  {spec.path}: {spec.cls} "
              f"[{', '.join(sorted(spec.guarded))}] guarded by {lock}")
    print(f"thread-confined: ({len(CONFINED)} classes)")
    for confined in CONFINED:
        print(f"  {confined.path}: {confined.cls} "
              f"[{', '.join(sorted(confined.attrs))}]")
    print(f"durability: ({len(DURABILITY_MODULES)} modules)")
    for rel in DURABILITY_MODULES:
        print(f"  {rel}")
    print(f"shapes: ({len(SHAPES)} contracts)")
    for spec in SHAPES:
        extras = []
        if spec.dtype != "any":
            extras.append(spec.dtype)
        if spec.hot:
            extras.append("hot")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        print(f"  {spec.path}: {spec.qualname} '{spec.shape}'{suffix}")
