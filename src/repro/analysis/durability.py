"""Durability lint: the fsync/rename/prune ordering crash-safety rests on.

The WAL and checkpoint code (:mod:`repro.db.wal`,
:mod:`repro.db.persistence`) keep three ordering invariants, all of them
easy to silently regress because every test passes without them — they only
matter across a power loss:

* **fsync-before-rename** — an ``os.replace`` publishing a payload or
  manifest must be preceded, in the same function, by an fsync of the bytes
  being published (``os.fsync`` / ``_fsync_file``); otherwise the rename
  can become durable before the content it names.
* **dirsync-after-rename** — after the ``os.replace``, the directory entry
  must be fsynced (``fsync_dir``) so the rename itself survives power loss.
* **write-after-prune** — pruning (stale checkpoint images, absorbed WAL
  generations) must be the *last* thing a function does: any write event
  after a prune means state was deleted before its replacement was durable.

The lint is line-order within one function — deliberately simple and
direction-correct: conditional branches (``if checkpointing:``) still
appear in source order, which is exactly the order the protocol requires.
A deliberate exception carries ``# durability ok: <reason>`` on the
``os.replace`` (or write) line.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.guards import (DURABILITY_MODULES, SOURCE_ROOT,
                                   suppressed_lines)
from repro.analysis.lockcheck import Finding

__all__ = ["check_durability"]

#: Calls that make bytes reach a file: forbidden after a prune.
_WRITE_NAMES = frozenset({"savez", "savez_compressed", "save", "dump",
                          "write", "write_text", "write_bytes"})


def check_durability(root: Path | None = None) -> list[Finding]:
    """Lint every module in :data:`DURABILITY_MODULES` under ``root`` (the
    installed ``repro`` package when omitted); returns findings sorted by
    location."""
    base = root if root is not None else SOURCE_ROOT
    findings: list[Finding] = []
    for rel in DURABILITY_MODULES:
        source = (base / rel).read_text(encoding="utf-8")
        suppressed = suppressed_lines(source, durability=True)
        for fn in _functions(ast.parse(source)):
            findings.extend(_check_function(rel, fn, suppressed))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _local_nodes(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn`` without descending into nested function definitions
    (their events belong to the nested function's own check)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_kind(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        name = func.attr
        is_os = isinstance(func.value, ast.Name) and func.value.id == "os"
    elif isinstance(func, ast.Name):
        name = func.id
        is_os = False
    else:
        return None
    if name == "replace":
        # Only os.replace is a rename; str.replace shares the name.
        return "replace" if is_os else None
    if name == "fsync" and is_os or name == "_fsync_file":
        return "fsync"
    if name in ("fsync_dir", "_fsync_image_dir"):
        return "dirsync"
    if name in _WRITE_NAMES:
        return "write"
    if "prune" in name:
        return "prune"
    return None


def _check_function(rel: str, fn: ast.FunctionDef,
                    suppressed: set[int]) -> list[Finding]:
    events: list[tuple[int, str]] = []
    for node in _local_nodes(fn):
        if isinstance(node, ast.Call):
            kind = _call_kind(node)
            if kind is not None:
                events.append((node.lineno, kind))
    if not events:
        return []
    fsyncs = [line for line, kind in events if kind == "fsync"]
    dirsyncs = [line for line, kind in events if kind == "dirsync"]
    prunes = [line for line, kind in events if kind == "prune"]
    first_prune = min(prunes) if prunes else None
    findings: list[Finding] = []
    for line, kind in events:
        if line in suppressed:
            continue
        if kind == "replace":
            if not any(other < line for other in fsyncs):
                findings.append(Finding(
                    rel, line, "fsync-before-rename",
                    f"os.replace in {fn.name}() has no earlier payload "
                    f"fsync in the same function — the rename can become "
                    f"durable before its content"))
            if not any(other > line for other in dirsyncs):
                findings.append(Finding(
                    rel, line, "dirsync-after-rename",
                    f"os.replace in {fn.name}() is not followed by a "
                    f"directory fsync (fsync_dir) — the rename itself can "
                    f"be lost on power failure"))
        elif kind == "write" and first_prune is not None \
                and line > first_prune:
            findings.append(Finding(
                rel, line, "write-after-prune",
                f"write in {fn.name}() after a prune — old state must only "
                f"be deleted once its replacement is durable"))
    return findings
