"""The guard registry: which attributes are protected by which locks.

The lock discipline the engine relies on is declared twice, on purpose:

* **in the source**, as a ``# guarded by: <lock expr>`` comment on the line
  that introduces each guarded attribute (``self._materialized = {} #
  guarded by: self._lock``), so a reader at the definition site sees the
  contract, and
* **here**, as a machine-readable :class:`GuardSpec` per class, so the
  static checker (:mod:`repro.analysis.lockcheck`) and the runtime
  sanitizer (:mod:`repro.analysis.sanitizer`) share one source of truth.

The checker cross-verifies the two: an attribute annotated in the source
but missing from the manifest (or vice versa) is itself a finding, so the
registry can never silently drift from the code.

Escape hatches, both deliberate and auditable:

* ``lock_held`` methods are internal helpers *always called with the lock
  already held* — the checker trusts the list instead of doing
  interprocedural analysis, and the list is part of the reviewed manifest;
* ``lock_free`` methods may **read** guarded state without the lock
  (snapshot-style reads of references that mutators replace, never write in
  place); writes inside them are still flagged;
* a ``# unguarded ok: <reason>`` comment suppresses findings on one line —
  the reason is mandatory, so every suppression documents itself.

:data:`CONFINED` lists state that is safe *without* any lock because it is
confined to a single thread by construction (a :class:`~repro.server
.session.Session` lives entirely on its connection's handler thread); the
checker verifies those attributes exist so the inventory stays honest.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["GuardSpec", "ConfinedSpec", "REGISTRY", "CONFINED",
           "SOURCE_ROOT", "parse_annotations", "suppressed_lines"]

#: The package root the registry's relative paths resolve against.
SOURCE_ROOT = Path(__file__).resolve().parent.parent

_ANNOTATION_RE = re.compile(
    r"^\s*(?:self\.)?(?P<attr>\w+)\s*[:=].*#\s*guarded by:\s*(?P<lock>\S+)")
_SUPPRESS_RE = re.compile(r"#\s*unguarded ok:\s*\S")
_DURABILITY_SUPPRESS_RE = re.compile(r"#\s*durability ok:\s*\S")


@dataclass(frozen=True)
class GuardSpec:
    """Lock discipline for one class.

    Parameters
    ----------
    path:
        Module file, relative to the ``repro`` package root.
    cls:
        The class owning the guarded state.
    lock:
        Attribute name of the guarding lock on the receiver object.
    guarded:
        Attribute names that must only be touched with the lock held.
    state:
        When set, the guarded attributes live on ``self.<state>`` (and the
        lock is ``self.<state>.<lock>``) rather than on ``self`` — the
        representation store keeps its shared state on a ``_StoreState``
        object every namespaced view aliases.
    lock_held:
        Internal helpers whose *callers* always hold the lock.
    lock_free:
        Methods allowed to read guarded references without the lock
        (snapshot reads); writes in them are still findings.
    mutable:
        The subset of ``guarded`` that is a mutable container — returning
        one of these by bare reference (instead of a copy or a frozen
        snapshot) is an escape finding even with the lock held.
    runtime:
        The subset of ``guarded`` whose *rebinding writes* the runtime
        sanitizer asserts happen with the lock held (attribute assignment
        is hookable; item mutation is the static checker's job).
    """

    path: str
    cls: str
    lock: str = "_lock"
    guarded: frozenset = frozenset()
    state: str | None = None
    lock_held: frozenset = frozenset()
    lock_free: frozenset = frozenset()
    mutable: frozenset = frozenset()
    runtime: frozenset = frozenset()

    def file(self, root: Path | None = None) -> Path:
        return (root if root is not None else SOURCE_ROOT) / self.path


@dataclass(frozen=True)
class ConfinedSpec:
    """State declared safe by thread confinement rather than a lock."""

    path: str
    cls: str
    attrs: frozenset
    note: str = ""


def _fs(*names: str) -> frozenset:
    return frozenset(names)


REGISTRY: tuple[GuardSpec, ...] = (
    GuardSpec(
        path="db/executor.py",
        cls="QueryExecutor",
        guarded=_fs("_id_offset", "_epoch", "_wal", "_materialized",
                    "_base_relation", "retention"),
        lock_held=_fs("_rebuild_base_relation", "_pad_materialized",
                      "_drop_rows", "_materialize_tail"),
        lock_free=_fs("relation", "id_offset", "wal"),
        mutable=_fs("_materialized"),
        runtime=_fs("_id_offset", "_epoch", "_wal", "_materialized",
                    "_base_relation", "retention"),
    ),
    GuardSpec(
        path="db/wal.py",
        cls="TableWal",
        guarded=_fs("_generation", "_sequence", "_counts", "_handle",
                    "_closed"),
        lock_held=_fs("_advance", "_write_line", "_ensure_open",
                      "_truncate_torn_tail"),
        lock_free=_fs("generation", "closed"),
        mutable=_fs("_counts"),
    ),
    GuardSpec(
        path="db/catalog.py",
        cls="Catalog",
        guarded=_fs("_executors"),
        mutable=_fs("_executors"),
    ),
    GuardSpec(
        path="storage/store.py",
        cls="RepresentationStore",
        state="_state",
        lock="lock",
        guarded=_fs("arrays", "specs", "registered"),
        lock_held=_fs("_entry_bytes", "_evict", "_enforce_budget"),
        mutable=_fs("arrays", "specs", "registered"),
    ),
    GuardSpec(
        path="server/admission.py",
        cls="AdmissionController",
        guarded=_fs("_closing", "_in_flight"),
    ),
    GuardSpec(
        path="server/plan_cache.py",
        cls="PlanCache",
        guarded=_fs("_entries"),
        mutable=_fs("_entries"),
    ),
    GuardSpec(
        path="server/server.py",
        cls="VisualDatabaseServer",
        guarded=_fs("_sessions", "_closed", "_thread"),
        lock_free=_fs("__repr__"),
    ),
    GuardSpec(
        path="telemetry/metrics.py",
        cls="MetricsRegistry",
        guarded=_fs("_metrics"),
        mutable=_fs("_metrics"),
    ),
    GuardSpec(
        path="telemetry/metrics.py",
        cls="Counter",
        guarded=_fs("_series"),
        mutable=_fs("_series"),
    ),
    GuardSpec(
        path="telemetry/metrics.py",
        cls="Gauge",
        guarded=_fs("_series", "_functions"),
        mutable=_fs("_series", "_functions"),
    ),
    GuardSpec(
        path="telemetry/metrics.py",
        cls="Histogram",
        guarded=_fs("_series"),
        mutable=_fs("_series"),
    ),
    GuardSpec(
        path="telemetry/trace.py",
        cls="Span",
        guarded=_fs("_children", "_attrs", "_elapsed_s", "_error"),
        lock_held=_fs("_as_dict"),
        mutable=_fs("_children", "_attrs"),
        runtime=_fs("_elapsed_s", "_error"),
    ),
    GuardSpec(
        path="telemetry/trace.py",
        cls="Tracer",
        guarded=_fs("_next_id", "_recent"),
        mutable=_fs("_recent"),
        runtime=_fs("_next_id"),
    ),
)

CONFINED: tuple[ConfinedSpec, ...] = (
    ConfinedSpec(
        path="server/session.py",
        cls="Session",
        attrs=_fs("_cursors", "_next_cursor", "closed"),
        note="a Session is owned by one connection handler thread; cursors "
             "are never shared across connections",
    ),
)

#: Modules the durability lint (:mod:`repro.analysis.durability`) covers.
DURABILITY_MODULES: tuple[str, ...] = ("db/wal.py", "db/persistence.py")


def parse_annotations(source: str) -> dict[str, list[tuple[str, int]]]:
    """``{attr: [(lock expr, line)]}`` for every ``# guarded by:`` line in
    ``source``."""
    found: dict[str, list[tuple[str, int]]] = {}
    for number, line in enumerate(source.splitlines(), 1):
        match = _ANNOTATION_RE.match(line)
        if match:
            found.setdefault(match.group("attr"), []).append(
                (match.group("lock"), number))
    return found


def suppressed_lines(source: str, *, durability: bool = False) -> set[int]:
    """1-based line numbers carrying a suppression comment (with a reason)."""
    pattern = _DURABILITY_SUPPRESS_RE if durability else _SUPPRESS_RE
    return {number for number, line in enumerate(source.splitlines(), 1)
            if pattern.search(line)}
