"""Static lock-discipline checker: guarded state vs. ``with <lock>:`` regions.

For every :class:`~repro.analysis.guards.GuardSpec` the checker parses the
owning module and walks each method of the owning class, tracking which
statements execute inside a ``with <lock>:`` region (including aliased state
objects: ``state = self._state`` followed by ``with state.lock:``).  It
reports:

* **unguarded-write** — a guarded attribute is rebound, item-assigned or
  deleted outside the lock;
* **unguarded-read** — a guarded attribute is read outside the lock, in a
  method not whitelisted as snapshot-only (``lock_free``);
* **escape** — a guarded *mutable* container is returned by bare reference
  (``return self._materialized``): the caller would then hold shared
  mutable state with no lock;
* **annotation-drift** / **missing-annotation** — the ``# guarded by:``
  comments in the source and the manifest in ``guards.py`` disagree;
* **confined-missing** — a :class:`~repro.analysis.guards.ConfinedSpec`
  names an attribute the class no longer assigns.

The analysis is deliberately method-local and trusting of the manifest's
``lock_held`` list (no interprocedural analysis); ``__init__`` is treated
as lock-held because the object is unpublished while it runs.  Nested
functions (closures handed to other threads) do **not** inherit the
enclosing lock region.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.guards import (CONFINED, REGISTRY, SOURCE_ROOT,
                                   ConfinedSpec, GuardSpec, parse_annotations,
                                   suppressed_lines)

__all__ = ["Finding", "check_lock_discipline"]

#: dict/list/set methods that mutate the receiver in place: calling one on a
#: guarded attribute counts as a write, not a read.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end", "sort",
})


@dataclass(frozen=True)
class Finding:
    """One violation, formatted ``path:line: [rule] message``."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def check_lock_discipline(root: Path | None = None) -> list[Finding]:
    """Run every registered :class:`GuardSpec` over the tree at ``root``
    (the installed ``repro`` package when omitted); returns findings sorted
    by location."""
    findings: list[Finding] = []
    by_path: dict[str, list[GuardSpec]] = {}
    for spec in REGISTRY:
        by_path.setdefault(spec.path, []).append(spec)
    for path, specs in by_path.items():
        source = _read(specs[0].file(root))
        tree = ast.parse(source)
        suppressed = suppressed_lines(source)
        findings.extend(_check_annotations(path, source, tree, specs))
        for spec in specs:
            cls = _find_class(tree, spec.cls)
            if cls is None:
                findings.append(Finding(path, 1, "missing-class",
                                        f"class {spec.cls} not found"))
                continue
            checker = _ClassChecker(spec, path, suppressed)
            findings.extend(checker.check(cls))
    for confined in CONFINED:
        findings.extend(_check_confined(confined, root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _read(path: Path) -> str:
    return path.read_text(encoding="utf-8")


def _find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


# -- annotation <-> manifest cross-check ---------------------------------------
def _check_annotations(path: str, source: str, tree: ast.Module,
                       specs: list[GuardSpec]) -> list[Finding]:
    """The ``# guarded by:`` comments and the manifest must agree exactly."""
    findings: list[Finding] = []
    annotations = parse_annotations(source)
    manifest_attrs: dict[str, set[str]] = {}
    for spec in specs:
        accepted = _accepted_lock_exprs(spec)
        for attr in spec.guarded:
            manifest_attrs.setdefault(attr, set()).update(accepted)
    for attr, entries in annotations.items():
        accepted = manifest_attrs.get(attr)
        for lock_expr, line in entries:
            if accepted is None:
                findings.append(Finding(
                    path, line, "annotation-drift",
                    f"{attr!r} is annotated 'guarded by: {lock_expr}' but "
                    f"missing from the guards.py manifest"))
            elif lock_expr not in accepted:
                findings.append(Finding(
                    path, line, "annotation-drift",
                    f"{attr!r} is annotated 'guarded by: {lock_expr}' but "
                    f"the manifest guards it with {sorted(accepted)}"))
    for spec in specs:
        cls = _find_class(tree, spec.cls)
        for attr in sorted(spec.guarded):
            if attr not in annotations:
                findings.append(Finding(
                    path, _attr_line(cls, spec, attr), "missing-annotation",
                    f"{spec.cls}.{attr} is in the guards.py manifest but "
                    f"carries no '# guarded by:' annotation in the source"))
    return findings


def _accepted_lock_exprs(spec: GuardSpec) -> set[str]:
    if spec.state is None:
        return {f"self.{spec.lock}"}
    # State-object specs annotate inside the state class body, where the
    # lock is a bare sibling field; accesses through self also qualify.
    return {spec.lock, f"self.{spec.state}.{spec.lock}"}


def _attr_line(cls: ast.ClassDef | None, spec: GuardSpec, attr: str) -> int:
    """Best line to point a missing-annotation finding at: the attribute's
    first binding, else the class statement."""
    if cls is None:
        return 1
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == attr:
                    return target.lineno
                if isinstance(target, ast.Name) and target.id == attr:
                    return target.lineno
    return cls.lineno


# -- per-class method analysis -------------------------------------------------
class _ClassChecker:
    """Walks one class's methods, flagging unguarded access and escapes."""

    def __init__(self, spec: GuardSpec, path: str,
                 suppressed: set[int]) -> None:
        self.spec = spec
        self.path = path
        self.suppressed = suppressed
        self.findings: list[Finding] = []

    def check(self, cls: ast.ClassDef) -> list[Finding]:
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_method(node)
        return self.findings

    def _check_method(self, fn: ast.FunctionDef) -> None:
        spec = self.spec
        if fn.name == "__init__" or fn.name in spec.lock_held:
            # Lock held by convention: __init__ runs on an unpublished
            # object; lock_held helpers are called with the lock taken.
            return
        aliases = self._state_aliases(fn)
        held_default = False
        for stmt in fn.body:
            self._scan(stmt, held_default, aliases, fn)

    # Aliasing: ``state = self._state`` makes ``state.lock`` the lock and
    # ``state.arrays`` a guarded access for the rest of the method.
    def _state_aliases(self, fn: ast.FunctionDef) -> set[str]:
        spec = self.spec
        if spec.state is None:
            return set()
        aliases: set[str] = set()
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and self._is_state_object(node.value, set())):
                aliases.add(node.targets[0].id)
        return aliases

    def _is_state_object(self, node: ast.expr, aliases: set[str]) -> bool:
        """``self.<state>`` (or an alias of it)."""
        spec = self.spec
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and node.attr == spec.state):
            return True
        return isinstance(node, ast.Name) and node.id in aliases

    def _is_lock_expr(self, node: ast.expr, aliases: set[str]) -> bool:
        spec = self.spec
        if not isinstance(node, ast.Attribute) or node.attr != spec.lock:
            return False
        if spec.state is None:
            return (isinstance(node.value, ast.Name)
                    and node.value.id == "self")
        return self._is_state_object(node.value, aliases)

    def _guarded_attr(self, node: ast.expr,
                      aliases: set[str]) -> str | None:
        """The guarded attribute name ``node`` accesses, or ``None``."""
        spec = self.spec
        if not isinstance(node, ast.Attribute) or node.attr not in spec.guarded:
            return None
        if spec.state is None:
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            return None
        if self._is_state_object(node.value, aliases):
            return node.attr
        return None

    def _scan(self, node: ast.AST, held: bool, aliases: set[str],
              fn: ast.FunctionDef) -> None:
        if isinstance(node, ast.With):
            takes_lock = any(self._is_lock_expr(item.context_expr, aliases)
                             for item in node.items)
            for item in node.items:
                self._scan(item.context_expr, held, aliases, fn)
            for stmt in node.body:
                self._scan(stmt, held or takes_lock, aliases, fn)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A closure may run on another thread after the region exits:
            # it never inherits the enclosing lock.
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self._scan(stmt, False, aliases, fn)
            return
        if isinstance(node, ast.Return) and node.value is not None:
            attr = self._guarded_attr(node.value, aliases)
            if attr is not None and attr in self.spec.mutable:
                self._report(node.lineno, "escape",
                             f"{self.spec.cls}.{fn.name} returns guarded "
                             f"mutable {attr!r} by reference; return a copy "
                             f"or a frozen snapshot")
        if isinstance(node, ast.Attribute):
            attr = self._guarded_attr(node, aliases)
            if attr is not None:
                self._check_access(node, attr, held, fn)
            node.value._lockcheck_parent = node  # type: ignore[attr-defined]
            self._scan(node.value, held, aliases, fn)
            return
        for child in ast.iter_child_nodes(node):
            # Parent pointers for write classification (subscript stores,
            # in-place mutator calls) are attached on the way down.
            child._lockcheck_parent = node  # type: ignore[attr-defined]
            self._scan(child, held, aliases, fn)

    def _check_access(self, node: ast.Attribute, attr: str, held: bool,
                      fn: ast.FunctionDef) -> None:
        if held:
            return
        is_write = self._is_write(node)
        if not is_write and fn.name in self.spec.lock_free:
            return  # whitelisted snapshot read
        rule = "unguarded-write" if is_write else "unguarded-read"
        verb = "written" if is_write else "read"
        self._report(node.lineno, rule,
                     f"{self.spec.cls}.{attr} {verb} in {fn.name}() without "
                     f"holding {self._lock_name()}")

    def _is_write(self, node: ast.Attribute) -> bool:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return True
        parent = getattr(node, "_lockcheck_parent", None)
        # self._x[k] = v  /  del self._x[k]
        if (isinstance(parent, ast.Subscript) and parent.value is node
                and isinstance(parent.ctx, (ast.Store, ast.Del))):
            return True
        # self._x.clear() and friends
        if (isinstance(parent, ast.Attribute) and parent.value is node
                and parent.attr in _MUTATORS):
            grand = getattr(parent, "_lockcheck_parent", None)
            return isinstance(grand, ast.Call) and grand.func is parent
        return False

    def _lock_name(self) -> str:
        spec = self.spec
        if spec.state is None:
            return f"self.{spec.lock}"
        return f"self.{spec.state}.{spec.lock}"

    def _report(self, line: int, rule: str, message: str) -> None:
        if line in self.suppressed:
            return
        self.findings.append(Finding(self.path, line, rule, message))


# -- thread-confined inventory -------------------------------------------------
def _check_confined(confined: ConfinedSpec,
                    root: Path | None) -> list[Finding]:
    """Confined attributes must still exist, so the inventory stays honest."""
    path = (root if root is not None else SOURCE_ROOT) / confined.path
    tree = ast.parse(_read(path))
    cls = _find_class(tree, confined.cls)
    if cls is None:
        return [Finding(confined.path, 1, "missing-class",
                        f"class {confined.cls} not found")]
    assigned = {node.attr for node in ast.walk(cls)
                if isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"}
    return [Finding(confined.path, cls.lineno, "confined-missing",
                    f"{confined.cls}.{attr} is declared thread-confined but "
                    f"never assigned")
            for attr in sorted(confined.attrs) if attr not in assigned]
