"""Runtime concurrency sanitizer: instrumented locks + guarded-write checks.

Where the static checker (:mod:`repro.analysis.lockcheck`) proves discipline
about code *shape*, the sanitizer watches actual executions.  Enabled (via
``pytest --sanitize`` or :func:`enable`), it does two things:

* **lock-order inversion detection** — :func:`repro.locking.make_lock` /
  ``make_rlock`` hand back :class:`SanitizedLock` wrappers that maintain a
  per-thread stack of held locks and a global acquired-while-holding edge
  graph.  The moment an acquisition would close a cycle (lock A taken under
  B somewhere, B taken under A elsewhere — a potential deadlock even if this
  run happened not to interleave fatally), a :class:`Violation` records both
  acquisition stacks.  Reentrant re-acquisition of an RLock adds no edge.
* **guarded-write assertion** — for specs with ``runtime`` attributes, the
  owning class's ``__setattr__`` is patched to assert the instance's lock is
  held by the current thread whenever one of those attributes is rebound
  (writes before the lock exists — mid ``__init__`` — and to objects built
  with plain locks are skipped).

Violations are *recorded*, never raised, so the offending test still runs
to completion; the ``--sanitize`` conftest hook fails any test that left
violations behind.  :func:`take_violations` drains the list.

Edges are keyed by a per-lock serial number (never by ``id()``, which the
allocator reuses), so the graph stays sound across the lifetime of a whole
test session without keeping dead locks alive.
"""

from __future__ import annotations

import importlib
import itertools
import threading
import traceback
from collections import deque
from dataclasses import dataclass

from repro import locking
from repro.analysis.guards import REGISTRY, GuardSpec

__all__ = ["SanitizedLock", "Violation", "enable", "disable", "enabled",
           "take_violations", "reset"]


@dataclass
class Violation:
    """One recorded sanitizer finding.

    ``kind`` is ``"lock-order"`` (``other_stack`` holds the acquisition that
    established the opposite edge) or ``"guarded-write"``.
    """

    kind: str
    message: str
    stack: str
    other_stack: str = ""

    def __str__(self) -> str:
        text = f"[{self.kind}] {self.message}\n--- offending stack ---\n" \
               f"{self.stack}"
        if self.other_stack:
            text += f"--- conflicting earlier stack ---\n{self.other_stack}"
        return text


# The sanitizer's own state is guarded by a *plain* lock (never one of its
# own wrappers) and is leaf-level: nothing is called while holding it.
_state_lock = threading.Lock()
_violations: list[Violation] = []
_edges: dict[tuple[int, int], str] = {}      # (held_uid, acquired_uid) -> stack
_adjacency: dict[int, set[int]] = {}         # held_uid -> {acquired_uid}
_lock_names: dict[int, str] = {}
_uid_counter = itertools.count(1)

_tls = threading.local()
_enabled = False
_patched: list[tuple[type, object]] = []


def _held_locks() -> list["SanitizedLock"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _capture_stack() -> str:
    # Drop the sanitizer's own frames from the tail so the report points at
    # the acquiring code.
    return "".join(traceback.format_stack()[:-3])


class SanitizedLock:
    """A named Lock/RLock wrapper feeding the lock-order graph.

    Context-manager and ``acquire``/``release`` compatible with the plain
    primitives it wraps; ``held_by_current_thread()`` is the extra hook the
    guarded-write assertion uses.
    """

    __slots__ = ("_inner", "name", "reentrant", "uid", "_holds")

    def __init__(self, inner, name: str, reentrant: bool) -> None:
        self._inner = inner
        self.name = name
        self.reentrant = reentrant
        self.uid = next(_uid_counter)
        self._holds = threading.local()

    def _depth(self) -> int:
        return getattr(self._holds, "depth", 0)

    def held_by_current_thread(self) -> bool:
        return self._depth() > 0

    def acquire(self, blocking: bool = True, timeout: float = -1):
        first = self._depth() == 0
        if first:
            # Record the ordering fact *before* blocking: if this very
            # acquisition deadlocks, the violation is already on file.
            _note_acquisition(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._holds.depth = self._depth() + 1
            if first:
                _held_locks().append(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        depth = self._depth() - 1
        self._holds.depth = depth
        if depth == 0:
            held = _held_locks()
            for index in range(len(held) - 1, -1, -1):
                if held[index] is self:
                    del held[index]
                    break

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SanitizedLock({self.name!r}, depth={self._depth()})"


def _note_acquisition(lock: SanitizedLock) -> None:
    held = [other for other in _held_locks() if other is not lock]
    if not held:
        return
    stack = _capture_stack()
    with _state_lock:
        _lock_names[lock.uid] = lock.name
        for other in held:
            _lock_names[other.uid] = other.name
            edge = (other.uid, lock.uid)
            if edge in _edges:
                continue
            # A path lock ~> other means the opposite order was already
            # observed; adding other -> lock closes the cycle.
            path = _find_path(lock.uid, other.uid)
            _edges[edge] = stack
            _adjacency.setdefault(other.uid, set()).add(lock.uid)
            if path is not None:
                chain = " -> ".join(_lock_names[uid] for uid in path)
                _violations.append(Violation(
                    kind="lock-order",
                    message=(f"lock-order inversion: acquiring "
                             f"{lock.name!r} while holding {other.name!r}, "
                             f"but the opposite order {chain} was observed "
                             f"earlier (potential deadlock)"),
                    stack=stack,
                    other_stack=_edges.get((path[0], path[1]), "")))


def _find_path(src: int, dst: int) -> list[int] | None:
    """BFS path src ~> dst in the edge graph, or ``None``.  Caller holds
    ``_state_lock``."""
    if src == dst:
        return [src]
    parents: dict[int, int] = {src: src}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        for nxt in _adjacency.get(node, ()):
            if nxt in parents:
                continue
            parents[nxt] = node
            if nxt == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(nxt)
    return None


def record_violation(kind: str, message: str) -> None:
    """Record a violation with the caller's stack (guarded-write path)."""
    stack = "".join(traceback.format_stack()[:-2])
    with _state_lock:
        _violations.append(Violation(kind=kind, message=message,
                                     stack=stack))


def take_violations() -> list[Violation]:
    """Drain and return every violation recorded since the last call."""
    with _state_lock:
        drained = list(_violations)
        _violations.clear()
    return drained


def reset() -> None:
    """Clear violations *and* the lock-order edge graph (test isolation)."""
    with _state_lock:
        _violations.clear()
        _edges.clear()
        _adjacency.clear()
        _lock_names.clear()


# -- activation ----------------------------------------------------------------
class _Factory:
    """The hook :mod:`repro.locking` calls while the sanitizer is enabled."""

    def lock(self, name: str) -> SanitizedLock:
        return SanitizedLock(threading.Lock(), name, reentrant=False)

    def rlock(self, name: str) -> SanitizedLock:
        return SanitizedLock(threading.RLock(), name, reentrant=True)


def _resolve_class(spec: GuardSpec) -> type:
    module_name = "repro." + spec.path[:-len(".py")].replace("/", ".")
    return getattr(importlib.import_module(module_name), spec.cls)


def _make_setattr(spec: GuardSpec, original):
    runtime = spec.runtime
    lock_attr = spec.lock

    def guarded_setattr(self, name, value):
        if name in runtime:
            lock = self.__dict__.get(lock_attr)
            if (isinstance(lock, SanitizedLock)
                    and not lock.held_by_current_thread()):
                record_violation(
                    "guarded-write",
                    f"{spec.cls}.{name} rebound without holding "
                    f"{lock.name!r}")
        original(self, name, value)

    return guarded_setattr


def enable() -> None:
    """Install instrumented locks and guarded-write assertions (idempotent).

    Only locks created *after* this call are instrumented — enable the
    sanitizer before building the objects under test."""
    global _enabled
    if _enabled:
        return
    locking.set_lock_factory(_Factory())
    for spec in REGISTRY:
        if not spec.runtime:
            continue
        cls = _resolve_class(spec)
        original = cls.__setattr__
        cls.__setattr__ = _make_setattr(spec, original)
        _patched.append((cls, original))
    _enabled = True


def disable() -> None:
    """Restore plain locks and original ``__setattr__`` (idempotent)."""
    global _enabled
    if not _enabled:
        return
    locking.set_lock_factory(None)
    for cls, original in _patched:
        cls.__setattr__ = original
    _patched.clear()
    _enabled = False


def enabled() -> bool:
    return _enabled
