"""Dynamic shape/dtype contract checking behind ``pytest --shape-check``.

:func:`enable` wraps every function in the :data:`~repro.analysis.
shapes_spec.SHAPES` manifest so each real call verifies the concrete
ndarray shapes and dtypes against the declared contract — symbols bind on
first use and must unify across the inputs *and* output of one call, so a
layer that silently drops the batch dimension fails the suite even when
every individual assertion about ranks would pass.

Checks never change behavior: the wrapped function runs first, exceptions
propagate untouched, and non-ndarray arguments are skipped.  Violations are
collected (thread-safely) rather than raised, and the pytest plugin in the
root ``conftest.py`` drains them after every test via
:func:`take_violations`, mirroring the ``--sanitize`` concurrency gate.
"""

from __future__ import annotations

import importlib
import inspect
import threading
from dataclasses import dataclass
from functools import wraps

import numpy as np

from repro.analysis.shapes_spec import (SHAPES, ShapeSpec, parse_contract,
                                        parse_dtypes)

__all__ = ["enable", "disable", "is_enabled", "take_violations",
           "ShapeViolation"]


@dataclass(frozen=True)
class ShapeViolation:
    """One observed contract violation."""

    qualname: str
    message: str

    def __str__(self) -> str:
        return f"{self.qualname}: {self.message}"


_lock = threading.Lock()
_violations: list[ShapeViolation] = []
_originals: list[tuple[object, str, object]] = []
_enabled = False


def take_violations() -> list[ShapeViolation]:
    """Drain and return the violations recorded since the last call."""
    with _lock:
        drained = list(_violations)
        _violations.clear()
    return drained


def is_enabled() -> bool:
    """Whether the runtime checker is currently wrapping the manifest."""
    return _enabled


def enable(specs: tuple[ShapeSpec, ...] | None = None) -> int:
    """Wrap every resolvable spec target; returns how many were wrapped.

    Idempotent.  Class methods are authoritative (every call goes through
    the class attribute); wrapping module-level functions is best-effort —
    call sites that did ``from module import fn`` at import time keep the
    original reference.
    """
    global _enabled
    if _enabled:
        return 0
    wrapped = 0
    for spec in (SHAPES if specs is None else specs):
        owner, attr, fn = _resolve(spec)
        if fn is None:
            continue
        setattr(owner, attr, _wrap(spec, fn))
        _originals.append((owner, attr, fn))
        wrapped += 1
    _enabled = True
    return wrapped


def disable() -> None:
    """Restore every wrapped function."""
    global _enabled
    for owner, attr, fn in reversed(_originals):
        setattr(owner, attr, fn)
    _originals.clear()
    _enabled = False


def _module_name(path: str) -> str:
    return "repro." + path[:-len(".py")].replace("/", ".")


def _resolve(spec: ShapeSpec) -> tuple[object, str, object | None]:
    try:
        module = importlib.import_module(_module_name(spec.path))
    except ImportError:
        return None, "", None
    if "." in spec.qualname:
        cls_name, attr = spec.qualname.split(".", 1)
        cls = getattr(module, cls_name, None)
        if cls is None:
            return None, "", None
        fn = cls.__dict__.get(attr)
        return cls, attr, fn
    fn = getattr(module, spec.qualname, None)
    return module, spec.qualname, fn


def _record(spec: ShapeSpec, message: str) -> None:
    with _lock:
        _violations.append(ShapeViolation(spec.qualname, message))


def _wrap(spec: ShapeSpec, fn):
    contract = parse_contract(spec.shape)
    dtypes = parse_dtypes(spec.dtype)
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        signature = None
    if spec.args:
        checked_args = list(spec.args)
    elif signature is not None:
        names = [name for name, param in signature.parameters.items()
                 if name not in ("self", "cls")
                 and param.kind in (param.POSITIONAL_ONLY,
                                    param.POSITIONAL_OR_KEYWORD)]
        checked_args = names[:len(contract.inputs)]
    else:
        checked_args = []

    @wraps(fn)
    def checked(*args, **kwargs):
        out = fn(*args, **kwargs)
        bindings: dict[str, int] = {}
        bound = None
        if signature is not None:
            try:
                bound = signature.bind(*args, **kwargs)
            except TypeError:
                bound = None
        if bound is not None:
            for name, dims in zip(checked_args, contract.inputs):
                value = bound.arguments.get(name)
                if not isinstance(value, np.ndarray):
                    continue
                problem = _match(dims, value.shape, bindings)
                if problem is not None:
                    _record(spec, f"argument '{name}' with shape "
                                  f"{value.shape} violates "
                                  f"'{spec.shape}': {problem}")
        _check_output(spec, contract, dtypes, out, bindings)
        return out

    return checked


def _check_output(spec: ShapeSpec, contract, dtypes, out, bindings) -> None:
    value = out
    if spec.tuple_index is not None:
        if not isinstance(out, tuple) or len(out) <= spec.tuple_index:
            _record(spec, f"expected a tuple with element "
                          f"{spec.tuple_index}, got {type(out).__name__}")
            return
        value = out[spec.tuple_index]
    if contract.output == ():
        if isinstance(value, np.ndarray) and value.ndim > 0:
            _record(spec, f"returned shape {value.shape} where the contract "
                          f"'{spec.shape}' declares a scalar")
        return
    if not isinstance(value, np.ndarray):
        _record(spec, f"returned {type(value).__name__} where the contract "
                      f"'{spec.shape}' declares an array")
        return
    problem = _match(contract.output, value.shape, bindings)
    if problem is not None:
        _record(spec, f"returned shape {value.shape} violates "
                      f"'{spec.shape}': {problem}")
    if "any" not in dtypes and value.dtype.name not in dtypes:
        _record(spec, f"returned dtype {value.dtype.name} outside the "
                      f"declared {'|'.join(sorted(dtypes))}")


def _match(dims: tuple, shape: tuple, bindings: dict) -> str | None:
    """Match concrete ``shape`` against contract ``dims``, updating
    ``bindings``; returns a problem description or None."""
    if Ellipsis in dims:
        marker = dims.index(Ellipsis)
        prefix, suffix = dims[:marker], dims[marker + 1:]
        if len(shape) < len(prefix) + len(suffix):
            return (f"rank {len(shape)} is below the contract minimum "
                    f"{len(prefix) + len(suffix)}")
        pairs = list(zip(prefix, shape[:len(prefix)]))
        if suffix:
            pairs += list(zip(suffix, shape[-len(suffix):]))
    else:
        if len(shape) != len(dims):
            return f"rank {len(shape)} != declared rank {len(dims)}"
        pairs = list(zip(dims, shape))
    for dim, extent in pairs:
        if isinstance(dim, int):
            if extent != dim:
                return f"extent {extent} != declared {dim}"
        else:  # a binding symbol
            seen = bindings.setdefault(dim, extent)
            if seen != extent:
                return (f"symbol {dim} bound to {seen} but observed "
                        f"{extent}")
    return None
