"""Static shape/dtype abstract interpreter over the numpy stack.

For every :class:`~repro.analysis.shapes_spec.ShapeSpec` the checker parses
the owning module and abstractly interprets the function body: parameters are
seeded with the symbolic shapes of the declared contract, and the interpreter
propagates shapes and dtypes through ``reshape``/``transpose``/``squeeze``/
``concatenate``/``matmul``/broadcasting/indexing, unpacked ``.shape`` tuples,
and calls into other contract-covered functions.  It reports:

* **batch-dim-loss** — a bare no-argument ``.squeeze()`` in a contract-
  covered function: on a batch of one it silently collapses the batch
  dimension (the exact bug class ``Sequential.predict_proba`` used to have);
* **dtype-widening** — an explicit float64 creation (``astype(np.float64)``,
  ``dtype=np.float64``, ``np.float64(...)``) in a function whose declared
  dtype boundary is a narrower float;
* **contract-mismatch** — a return whose abstract shape or dtype provably
  contradicts the declared output (wrong rank, a scalar where the contract
  declares dimensions, unequal concrete extents, a dtype outside the
  declared set);
* **silent-copy-in-loop** — ``np.concatenate``/``np.append``/``np.vstack``/
  ``np.hstack`` or list-literal fancy indexing inside a loop of a ``hot``
  function: per-row copies are exactly what batch vectorization removes;
* **contract-drift** / **missing-contract** — the ``# shape:``/``# dtype:``
  comments in the source and the manifest in ``shapes_spec.py`` disagree.

The analysis is deliberately conservative: an unknown shape or dtype produces
*no* finding, so the real tree checks clean while the self-tests prove the
violation classes are caught on injected mutations.  A ``# shape ok:
<reason>`` comment suppresses findings on its line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.lockcheck import Finding
from repro.analysis.shapes_spec import (SHAPES, Contract, ShapeSpec,
                                        contracts_equal, format_dims,
                                        parse_contract, parse_dtypes,
                                        parse_shape_annotations,
                                        shape_suppressed_lines)

__all__ = ["check_shapes"]

#: Unknown-dimension marker ("?" is not a valid contract symbol, so it can
#: never collide with a binding name).
_DIM = "?"

#: Sentinel for values the interpreter knows nothing about.
_UNKNOWN = object()

_FLOAT_DTYPES = frozenset({"float16", "float32", "float64"})

#: numpy calls that materialize a copy of their operands; inside a per-row
#: loop of a hot function they turn O(n) work into O(n^2).
_COPY_CALLS = frozenset({"concatenate", "append", "vstack", "hstack"})

_REDUCTIONS = frozenset({"mean", "sum", "max", "min", "prod", "std", "var",
                         "all", "any", "argmax", "argmin"})

_ELEMENTWISE_NP = frozenset({"exp", "log", "sqrt", "abs", "round", "clip",
                             "tanh", "negative", "log1p", "expm1", "floor",
                             "ceil", "sign", "isnan", "logical_not"})

_DTYPE_NAMES = {
    "float16": "float16", "float32": "float32", "float64": "float64",
    "float": "float64", "double": "float64", "single": "float32",
    "int8": "int8", "int16": "int16", "int32": "int32", "int64": "int64",
    "int": "int64", "intp": "int64", "uint8": "uint8",
    "bool": "bool", "bool_": "bool",
}


@dataclass(frozen=True)
class _Arr:
    """Abstract array: a dim tuple (or None for unknown rank) and a dtype."""

    shape: tuple | None
    dtype: str | None = None


@dataclass(frozen=True)
class _ShapeTuple:
    """The value of ``x.shape`` for an abstract array of known dims."""

    dims: tuple


@dataclass(frozen=True)
class _Tuple:
    """A python tuple whose elements are abstract values."""

    items: tuple


def check_shapes(root: Path | None = None,
                 specs: tuple[ShapeSpec, ...] | None = None) -> list[Finding]:
    """Run every registered :class:`ShapeSpec` over the tree at ``root``
    (the installed ``repro`` package when omitted); returns findings sorted
    by location.  ``specs`` overrides the manifest (used by the self-tests
    to prove dtype-boundary rules the all-float64 tree cannot exercise)."""
    specs = SHAPES if specs is None else tuple(specs)
    findings: list[Finding] = []
    by_path: dict[str, list[ShapeSpec]] = {}
    for spec in specs:
        by_path.setdefault(spec.path, []).append(spec)
    for path, path_specs in sorted(by_path.items()):
        source = path_specs[0].file(root).read_text(encoding="utf-8")
        tree = ast.parse(source)
        suppressed = shape_suppressed_lines(source)
        raw: list[Finding] = []
        raw.extend(_check_annotations(path, source, tree, path_specs))
        functions = _index_functions(tree)
        for spec in path_specs:
            node = functions.get(spec.qualname)
            if node is None:
                continue  # already a missing-contract finding
            raw.extend(_check_function(spec, node))
        findings.extend(f for f in raw if f.line not in suppressed)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _index_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    functions: dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    functions[f"{node.name}.{item.name}"] = item
    return functions


# -- annotation cross-check --------------------------------------------------

def _check_annotations(path: str, source: str, tree: ast.Module,
                       specs: list[ShapeSpec]) -> list[Finding]:
    findings: list[Finding] = []
    annotations = parse_shape_annotations(source, tree)
    functions = _index_functions(tree)
    by_qualname = {spec.qualname: spec for spec in specs}

    for spec in specs:
        node = functions.get(spec.qualname)
        if node is None:
            findings.append(Finding(
                path, 1, "missing-contract",
                f"{spec.qualname} is in the shapes_spec.py manifest but was "
                f"not found in {path}"))
            continue
        annotation = annotations.get(spec.qualname)
        if annotation is None or annotation.shape is None:
            findings.append(Finding(
                path, node.lineno, "missing-contract",
                f"{spec.qualname} is in the shapes_spec.py manifest but "
                f"carries no '# shape:' annotation"))
        elif not contracts_equal(annotation.shape, spec.shape):
            findings.append(Finding(
                path, annotation.shape_line, "contract-drift",
                f"{spec.qualname} annotates '# shape: {annotation.shape}' "
                f"but the manifest declares {spec.shape!r}"))
        if annotation is None or annotation.dtype is None:
            if spec.dtype != "any":
                findings.append(Finding(
                    path, node.lineno, "missing-contract",
                    f"{spec.qualname} declares dtype {spec.dtype!r} in the "
                    f"manifest but carries no '# dtype:' annotation"))
        elif annotation.dtype != spec.dtype:
            findings.append(Finding(
                path, annotation.dtype_line, "contract-drift",
                f"{spec.qualname} annotates '# dtype: {annotation.dtype}' "
                f"but the manifest declares {spec.dtype!r}"))

    for qualname, annotation in sorted(annotations.items()):
        if qualname not in by_qualname:
            line = annotation.shape_line or annotation.dtype_line
            findings.append(Finding(
                path, line, "contract-drift",
                f"{qualname} carries a shape/dtype annotation but is "
                f"missing from the shapes_spec.py manifest"))
    return findings


# -- per-function checks -----------------------------------------------------

def _check_function(spec: ShapeSpec, node: ast.FunctionDef) -> list[Finding]:
    try:
        contract = parse_contract(spec.shape)
        dtypes = parse_dtypes(spec.dtype)
    except ValueError as exc:
        return [Finding(spec.path, node.lineno, "contract-drift", str(exc))]
    findings: list[Finding] = []
    findings.extend(_scan_squeeze(spec, node))
    findings.extend(_scan_widening(spec, dtypes, node))
    if spec.hot:
        findings.extend(_scan_copies_in_loops(spec, node))
    interp = _Interpreter(spec, contract, dtypes, node)
    findings.extend(interp.run())
    return findings


def _scan_squeeze(spec: ShapeSpec, node: ast.FunctionDef) -> list[Finding]:
    findings = []
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "squeeze"
                and not sub.args and not sub.keywords):
            findings.append(Finding(
                spec.path, sub.lineno, "batch-dim-loss",
                f"{spec.qualname}: bare .squeeze() collapses a batch of 1 "
                f"to a 0-d scalar; squeeze a named axis instead"))
    return findings


def _scan_widening(spec: ShapeSpec, dtypes: frozenset[str],
                   node: ast.FunctionDef) -> list[Finding]:
    # Only a declared narrow-float boundary makes float64 creation a finding.
    if "any" in dtypes or "float64" in dtypes or not (dtypes & _FLOAT_DTYPES):
        return []
    findings = []
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        created = None
        if (isinstance(sub.func, ast.Attribute) and sub.func.attr == "astype"
                and sub.args):
            created = _dtype_from_node(sub.args[0])
        elif _is_np_attr(sub.func, {"float64"}):
            created = "float64"
        else:
            for keyword in sub.keywords:
                if keyword.arg == "dtype":
                    created = _dtype_from_node(keyword.value)
        if created == "float64":
            findings.append(Finding(
                spec.path, sub.lineno, "dtype-widening",
                f"{spec.qualname}: explicit float64 creation crosses the "
                f"declared {'|'.join(sorted(dtypes))} boundary"))
    return findings


def _scan_copies_in_loops(spec: ShapeSpec,
                          node: ast.FunctionDef) -> list[Finding]:
    findings = []
    for loop in ast.walk(node):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for sub in ast.walk(loop):
            if sub is loop:
                continue
            if (isinstance(sub, ast.Call)
                    and _is_np_attr(sub.func, _COPY_CALLS)):
                findings.append(Finding(
                    spec.path, sub.lineno, "silent-copy-in-loop",
                    f"{spec.qualname}: np.{sub.func.attr} inside a loop of "
                    f"a hot function copies the array every iteration"))
            elif (isinstance(sub, ast.Subscript)
                    and isinstance(sub.ctx, ast.Load)
                    and isinstance(sub.slice, ast.List)):
                findings.append(Finding(
                    spec.path, sub.lineno, "silent-copy-in-loop",
                    f"{spec.qualname}: list-literal fancy indexing inside a "
                    f"loop of a hot function copies the selected rows"))
    return findings


def _is_np_attr(func: ast.expr, names: frozenset[str] | set[str]) -> bool:
    return (isinstance(func, ast.Attribute) and func.attr in names
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy"))


def _dtype_from_node(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return _DTYPE_NAMES.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_NAMES.get(node.value)
    if isinstance(node, ast.Name):
        return _DTYPE_NAMES.get(node.id) if node.id != "bool" else "bool"
    return None


# -- the abstract interpreter ------------------------------------------------

class _Interpreter:
    """Method-local abstract interpretation of one contract-covered function.

    Unknown values stay unknown (``_UNKNOWN``); the only findings this class
    emits are contract mismatches on ``return`` statements whose abstract
    value provably contradicts the declared output.
    """

    def __init__(self, spec: ShapeSpec, contract: Contract,
                 dtypes: frozenset[str], node: ast.FunctionDef) -> None:
        self.spec = spec
        self.contract = contract
        self.dtypes = dtypes
        self.node = node
        self.cls = spec.qualname.split(".")[0] if "." in spec.qualname else None
        self.findings: list[Finding] = []

    # -- entry ----------------------------------------------------------
    def run(self) -> list[Finding]:
        env: dict[str, object] = {}
        for name, dims in zip(self._input_params(), self.contract.inputs):
            env[name] = _Arr(dims, self._seed_dtype())
        self._exec_block(self.node.body, env)
        return self.findings

    def _input_params(self) -> list[str]:
        if self.spec.args:
            return list(self.spec.args)
        names = [arg.arg for arg in self.node.args.args
                 if arg.arg not in ("self", "cls")]
        return names[:len(self.contract.inputs)]

    def _seed_dtype(self) -> str | None:
        concrete = self.dtypes - {"any"}
        return next(iter(concrete)) if len(concrete) == 1 else None

    # -- statements -----------------------------------------------------
    def _exec_block(self, stmts: list[ast.stmt], env: dict) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: dict) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            value = self._binop(self._eval(stmt.target, env),
                                self._eval(stmt.value, env), stmt.op)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = value
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                self._check_return(value, stmt.lineno)
        elif isinstance(stmt, ast.If):
            then_env = dict(env)
            self._exec_block(stmt.body, then_env)
            else_env = dict(env)
            self._exec_block(stmt.orelse, else_env)
            self._merge(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.While)):
            for name in _assigned_names(stmt):
                env[name] = _UNKNOWN
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.With):
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(handler.body, handler_env)
                self._merge(env, env, handler_env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        # raise/pass/assert/nested defs: nothing to track.

    def _bind(self, target: ast.expr, value: object, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            items: tuple | None = None
            if isinstance(value, _Tuple):
                items = value.items
            elif isinstance(value, _ShapeTuple):
                items = tuple(_DimVal(dim) for dim in value.dims)
                if any(dim is Ellipsis for dim in value.dims):
                    items = None  # unknown rank: lengths cannot line up
            if (items is not None and len(items) == len(target.elts)
                    and not any(isinstance(t, ast.Starred)
                                for t in target.elts)):
                for element, item in zip(target.elts, items):
                    self._bind(element, item, env)
            else:
                for element in target.elts:
                    inner = (element.value if isinstance(element, ast.Starred)
                             else element)
                    self._bind(inner, _UNKNOWN, env)
        # attribute/subscript stores mutate in place: bindings survive.

    def _merge(self, env: dict, left: dict, right: dict) -> None:
        for key in set(left) | set(right):
            a, b = left.get(key, _UNKNOWN), right.get(key, _UNKNOWN)
            env[key] = a if a == b else _UNKNOWN

    # -- expressions ----------------------------------------------------
    def _eval(self, node: ast.expr, env: dict) -> object:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return env.get(node.id, _UNKNOWN)
        if isinstance(node, ast.Tuple):
            return _Tuple(tuple(self._eval(e, env) for e in node.elts))
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self._binop(self._eval(node.left, env),
                               self._eval(node.right, env), node.op)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub) and isinstance(operand,
                                                            (int, float)):
                return -operand
            if isinstance(operand, _Arr):
                if isinstance(node.op, ast.Invert):
                    return operand
                if isinstance(node.op, (ast.USub, ast.UAdd)):
                    return operand
                if isinstance(node.op, ast.Not):
                    return _UNKNOWN
            return _UNKNOWN
        if isinstance(node, ast.Compare):
            values = [self._eval(node.left, env)]
            values.extend(self._eval(c, env) for c in node.comparators)
            shape = None
            for value in values:
                if isinstance(value, _Arr):
                    shape = (value.shape if shape is None
                             else _broadcast_shapes(shape, value.shape))
            if shape is not None:
                return _Arr(shape, "bool")
            return _UNKNOWN
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.IfExp):
            then = self._eval(node.body, env)
            other = self._eval(node.orelse, env)
            return then if then == other else _UNKNOWN
        # BoolOp, comprehensions, lambdas, f-strings, ...: unknown.
        return _UNKNOWN

    def _eval_attribute(self, node: ast.Attribute, env: dict) -> object:
        value = self._eval(node.value, env)
        if isinstance(value, _Arr):
            if node.attr == "shape":
                return (_ShapeTuple(value.shape) if value.shape is not None
                        else _UNKNOWN)
            if node.attr == "T":
                if value.shape is not None and Ellipsis not in value.shape:
                    return _Arr(tuple(reversed(value.shape)), value.dtype)
                return _Arr(None, value.dtype)
            if node.attr in ("size", "ndim"):
                return _Arr((), "int64")
        return _UNKNOWN

    # -- calls ----------------------------------------------------------
    def _eval_call(self, node: ast.Call, env: dict) -> object:
        func = node.func
        args = [self._eval(a, env) for a in node.args]
        keywords = {k.arg: self._eval(k.value, env)
                    for k in node.keywords if k.arg is not None}
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id in ("np",
                                                                      "numpy"):
                return self._numpy_call(func.attr, node, args, keywords, env)
            if (isinstance(func.value, ast.Name) and func.value.id == "self"
                    and self.cls is not None):
                return self._contract_call(f"{self.cls}.{func.attr}", args)
            receiver = self._eval(func.value, env)
            return self._method_call(receiver, func.attr, node, args,
                                     keywords, env)
        if isinstance(func, ast.Name):
            if func.id == "float":
                return _Arr((), "float64")
            if func.id == "int":
                return _Arr((), "int64")
            if func.id == "bool":
                return _Arr((), "bool")
            if func.id == "len":
                return _Arr((), "int64")
            return self._contract_call(func.id, args)
        return _UNKNOWN

    def _contract_call(self, qualname: str, args: list) -> object:
        """Apply another covered function's contract at its call site."""
        spec = _SPEC_BY_QUALNAME.get(qualname)
        if spec is None:
            return _UNKNOWN
        try:
            contract = parse_contract(spec.shape)
            dtypes = parse_dtypes(spec.dtype)
        except ValueError:
            return _UNKNOWN
        bindings: dict[str, object] = {}
        if not spec.args:  # positional mapping only when it is unambiguous
            for dims, value in zip(contract.inputs, args):
                if isinstance(value, _Arr) and value.shape is not None:
                    _bind_dims(dims, value.shape, bindings)
        out = tuple(bindings.get(dim, _DIM)
                    if isinstance(dim, str) and dim != _DIM else dim
                    for dim in contract.output)
        concrete = dtypes - {"any"}
        dtype = next(iter(concrete)) if len(concrete) == 1 else None
        result = _Arr(out, dtype)
        if spec.tuple_index is not None:
            width = max(2, spec.tuple_index + 1)
            items = [_UNKNOWN] * width
            items[spec.tuple_index] = result
            return _Tuple(tuple(items))
        return result

    def _method_call(self, receiver: object, attr: str, node: ast.Call,
                     args: list, keywords: dict, env: dict) -> object:
        if attr == "reshape":
            # The result shape comes from the arguments even when the
            # receiver is unknown.
            dim_args = args
            if len(args) == 1 and isinstance(args[0], (_Tuple, _ShapeTuple)):
                dim_args = list(args[0].items if isinstance(args[0], _Tuple)
                                else [_DimVal(d) for d in args[0].dims])
            dims = tuple(_as_dim(a) for a in dim_args)
            dtype = receiver.dtype if isinstance(receiver, _Arr) else None
            return _Arr(dims, dtype)
        if not isinstance(receiver, _Arr):
            return _UNKNOWN
        if attr == "squeeze":
            if not args and not keywords:
                return _Arr(None, receiver.dtype)  # flagged by _scan_squeeze
            axis = args[0] if args else keywords.get("axis")
            return _Arr(_drop_axes(receiver.shape, axis, keepdims=False),
                        receiver.dtype)
        if attr == "astype":
            target = (node.args[0] if node.args else None)
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    target = keyword.value
            dtype = _dtype_from_node(target) if target is not None else None
            return _Arr(receiver.shape, dtype)
        if attr == "transpose":
            if receiver.shape is None or Ellipsis in receiver.shape:
                return _Arr(None, receiver.dtype)
            perm = args
            if len(args) == 1 and isinstance(args[0], _Tuple):
                perm = list(args[0].items)
            if not perm:
                return _Arr(tuple(reversed(receiver.shape)), receiver.dtype)
            if (all(isinstance(p, int) for p in perm)
                    and len(perm) == len(receiver.shape)):
                return _Arr(tuple(receiver.shape[p] for p in perm),
                            receiver.dtype)
            return _Arr(None, receiver.dtype)
        if attr in ("copy", "ascontiguousarray"):
            return receiver
        if attr in ("ravel", "flatten"):
            return _Arr((_DIM,), receiver.dtype)
        if attr == "item":
            return _Arr((), receiver.dtype)
        if attr in _REDUCTIONS:
            axis = args[0] if args else keywords.get("axis")
            keepdims = keywords.get("keepdims") is True
            axis_node = (node.args[0] if node.args else
                         next((k.value for k in node.keywords
                               if k.arg == "axis"), None))
            if axis_node is None and "axis" not in keywords and not args:
                shape: tuple | None = ()
            else:
                shape = _drop_axes(receiver.shape, axis, keepdims=keepdims)
            if attr in ("all", "any"):
                dtype: str | None = "bool"
            elif attr in ("argmax", "argmin"):
                dtype = "int64"
            elif attr in ("mean", "std", "var"):
                dtype = (receiver.dtype
                         if receiver.dtype in _FLOAT_DTYPES else None)
            else:
                dtype = receiver.dtype
            return _Arr(shape, dtype)
        return _UNKNOWN

    def _numpy_call(self, name: str, node: ast.Call, args: list,
                    keywords: dict, env: dict) -> object:
        dtype = None
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                dtype = _dtype_from_node(keyword.value)
        if name in ("asarray", "array", "ascontiguousarray", "copy"):
            if args and isinstance(args[0], _Arr):
                return _Arr(args[0].shape, dtype or args[0].dtype)
            return _Arr(None, dtype)
        if name in ("zeros", "ones", "empty", "full", "arange"):
            shape_arg = args[0] if args else None
            dims = _dims_from_value(shape_arg)
            default = "int64" if name == "arange" else "float64"
            return _Arr(dims, dtype or default)
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            if args and isinstance(args[0], _Arr):
                return _Arr(args[0].shape, dtype or args[0].dtype)
            return _Arr(None, dtype)
        if name == "where":
            if len(args) == 3:
                shape: tuple | None = ()
                dtype_out: str | None = None
                for value in args:
                    if isinstance(value, _Arr):
                        shape = (_broadcast_shapes(shape, value.shape)
                                 if shape is not None else None)
                condition, x, y = args
                if isinstance(x, _Arr):
                    dtype_out = _promote_with(x.dtype, y)
                return _Arr(shape, dtype_out)
            if (len(args) == 1 and isinstance(args[0], _Arr)
                    and args[0].shape is not None
                    and Ellipsis not in args[0].shape):
                item = _Arr((_DIM,), "int64")
                return _Tuple((item,) * len(args[0].shape))
            return _UNKNOWN
        if name == "concatenate":
            return self._concatenate(node, args, keywords, env)
        if name == "broadcast_to":
            if len(args) < 2:
                return _UNKNOWN
            return _Arr(_dims_from_value(args[1]),
                        args[0].dtype if isinstance(args[0], _Arr) else None)
        if name == "pad":
            if args and isinstance(args[0], _Arr) and args[0].shape is not None:
                if Ellipsis in args[0].shape:
                    return _Arr(None, args[0].dtype)
                return _Arr((_DIM,) * len(args[0].shape), args[0].dtype)
            return _UNKNOWN
        if name in _ELEMENTWISE_NP:
            if args and isinstance(args[0], _Arr):
                out_dtype = args[0].dtype
                if name in ("exp", "log", "sqrt", "log1p", "expm1", "tanh"):
                    out_dtype = (args[0].dtype
                                 if args[0].dtype in _FLOAT_DTYPES else None)
                if name == "isnan":
                    out_dtype = "bool"
                return _Arr(args[0].shape, out_dtype)
            return _UNKNOWN
        if name in ("matmul", "dot"):
            if len(args) == 2:
                return self._matmul(args[0], args[1])
            return _UNKNOWN
        if name == "float64":
            return _Arr((), "float64")  # flagged by _scan_widening
        if name in ("float32", "float16"):
            return _Arr((), name)
        return _UNKNOWN

    def _concatenate(self, node: ast.Call, args: list, keywords: dict,
                     env: dict) -> object:
        if not node.args:
            return _UNKNOWN
        seq = node.args[0]
        if not isinstance(seq, (ast.List, ast.Tuple)):
            return _UNKNOWN
        parts = [self._eval(e, env) for e in seq.elts]
        if not parts or not all(isinstance(p, _Arr) and p.shape is not None
                                and Ellipsis not in p.shape for p in parts):
            return _UNKNOWN
        rank = len(parts[0].shape)
        if any(len(p.shape) != rank for p in parts):
            return _UNKNOWN
        axis = keywords.get("axis", 0)
        if not isinstance(axis, int) or not -rank <= axis < rank:
            return _UNKNOWN
        axis %= rank
        dims = []
        for index in range(rank):
            extents = [p.shape[index] for p in parts]
            if index == axis:
                dims.append(sum(extents) if all(isinstance(e, int)
                                                for e in extents) else _DIM)
            else:
                dims.append(extents[0]
                            if all(e == extents[0] for e in extents) else _DIM)
        dtypes = {p.dtype for p in parts}
        return _Arr(tuple(dims), dtypes.pop() if len(dtypes) == 1 else None)

    # -- operators ------------------------------------------------------
    def _binop(self, left: object, right: object, op: ast.operator) -> object:
        if isinstance(op, ast.MatMult):
            return self._matmul(left, right)
        if isinstance(left, _Arr) or isinstance(right, _Arr):
            lshape = _operand_shape(left)
            rshape = _operand_shape(right)
            shape = _broadcast_shapes(lshape, rshape)
            dtype = _binop_dtype(left, right, op)
            return _Arr(shape, dtype)
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            try:
                return _fold_arith(left, right, op)
            except (ZeroDivisionError, TypeError, ValueError):
                return _UNKNOWN
        if _is_dimlike(left) and _is_dimlike(right):
            return _DimVal(_DIM)  # symbolic arithmetic: extent unknown
        return _UNKNOWN

    def _matmul(self, left: object, right: object) -> object:
        if not (isinstance(left, _Arr) and isinstance(right, _Arr)):
            return _UNKNOWN
        ls, rs = left.shape, right.shape
        dtype = _promote_dtypes(left.dtype, right.dtype)
        if ls is None or rs is None or Ellipsis in ls or Ellipsis in rs:
            if (ls is not None and rs is not None and Ellipsis in ls
                    and Ellipsis not in rs and len(rs) == 1):
                return _Arr(ls[:-1], dtype)  # (..., K) @ (K,) -> (...)
            return _Arr(None, dtype)
        if len(ls) == 2 and len(rs) == 2:
            return _Arr((ls[0], rs[1]), dtype)
        if len(ls) == 2 and len(rs) == 1:
            return _Arr((ls[0],), dtype)
        if len(ls) == 1 and len(rs) == 2:
            return _Arr((rs[1],), dtype)
        if len(ls) == 1 and len(rs) == 1:
            return _Arr((), dtype)
        if len(ls) > 2 and len(rs) == 1:
            return _Arr(ls[:-1], dtype)
        return _Arr(None, dtype)

    # -- subscripts ------------------------------------------------------
    def _eval_subscript(self, node: ast.Subscript, env: dict) -> object:
        receiver = self._eval(node.value, env)
        items = (node.slice.elts if isinstance(node.slice, ast.Tuple)
                 else [node.slice])
        if isinstance(receiver, _ShapeTuple):
            if len(items) == 1:
                index = self._eval(items[0], env)
                if isinstance(index, int):
                    return _shape_index(receiver.dims, index)
            return _UNKNOWN
        if isinstance(receiver, _Tuple):
            if len(items) == 1:
                index = self._eval(items[0], env)
                if (isinstance(index, int)
                        and -len(receiver.items) <= index
                        < len(receiver.items)):
                    return receiver.items[index]
            return _UNKNOWN
        if not isinstance(receiver, _Arr) or receiver.shape is None:
            return _UNKNOWN
        return self._array_subscript(receiver, items, env)

    def _array_subscript(self, receiver: _Arr, items: list[ast.expr],
                         env: dict) -> object:
        shape = receiver.shape
        descriptors = []
        for item in items:
            if isinstance(item, ast.Slice):
                full = (item.lower is None and item.upper is None
                        and item.step is None)
                descriptors.append(("slice", full))
            elif isinstance(item, ast.Constant) and item.value is None:
                descriptors.append(("newaxis", None))
            elif isinstance(item, ast.Constant) and item.value is Ellipsis:
                descriptors.append(("ellipsis", None))
            else:
                value = self._eval(item, env)
                if isinstance(value, int) or isinstance(value, _DimVal):
                    descriptors.append(("int", None))
                elif isinstance(value, _Arr) and value.shape is not None:
                    descriptors.append(("array", value))
                else:
                    return _UNKNOWN
        kinds = [d[0] for d in descriptors]
        if "array" in kinds:
            if len(descriptors) != 1 or Ellipsis in shape:
                return _UNKNOWN
            index = descriptors[0][1]
            if index.shape is None or Ellipsis in index.shape:
                return _UNKNOWN
            if index.dtype == "bool":
                if len(index.shape) > len(shape):
                    return _UNKNOWN
                return _Arr((_DIM,) + shape[len(index.shape):],
                            receiver.dtype)
            if len(index.shape) == 1 and len(shape) >= 1:
                return _Arr((index.shape[0],) + shape[1:], receiver.dtype)
            return _UNKNOWN
        if Ellipsis in shape:
            # Only trailing edits after a literal `...` are tractable.
            if kinds and kinds[0] == "ellipsis":
                dims = list(shape)
                for kind, payload in descriptors[1:]:
                    if kind == "newaxis":
                        dims.append(1)
                    elif kind == "int":
                        if not dims or dims[-1] is Ellipsis:
                            return _UNKNOWN
                        dims.pop()
                    elif kind == "slice":
                        if not dims or dims[-1] is Ellipsis:
                            return _UNKNOWN
                        if not payload:
                            dims[-1] = _DIM
                    else:
                        return _UNKNOWN
                return _Arr(tuple(dims), receiver.dtype)
            return _UNKNOWN
        split = kinds.index("ellipsis") if "ellipsis" in kinds else None
        left = descriptors if split is None else descriptors[:split]
        right = [] if split is None else descriptors[split + 1:]
        named = sum(1 for kind, _ in left + right if kind != "newaxis")
        if named > len(shape):
            return _UNKNOWN
        out: list = []
        position = 0
        for kind, payload in left:
            if kind == "newaxis":
                out.append(1)
            elif kind == "int":
                position += 1
            else:
                out.append(shape[position] if payload else _DIM)
                position += 1
        tail: list = []
        tail_position = len(shape)
        for kind, payload in reversed(right):
            if kind == "newaxis":
                tail.insert(0, 1)
            elif kind == "int":
                tail_position -= 1
            else:
                tail_position -= 1
                tail.insert(0, shape[tail_position] if payload else _DIM)
        middle = list(shape[position:tail_position])
        if split is None:
            middle = list(shape[position:len(shape)
                                - sum(1 for k, _ in right if k != "newaxis")])
        return _Arr(tuple(out + middle + tail), receiver.dtype)

    # -- the return-contract check --------------------------------------
    def _check_return(self, value: object, lineno: int) -> None:
        declared = self.contract.output
        if self.spec.tuple_index is not None:
            if not isinstance(value, _Tuple):
                return
            if self.spec.tuple_index >= len(value.items):
                return
            value = value.items[self.spec.tuple_index]
        if isinstance(value, (int, float, bool)):
            value = _Arr((), None)
        if isinstance(value, _DimVal):
            value = _Arr((), None)
        if not isinstance(value, _Arr) or value.shape is None:
            return
        shape = value.shape
        problem = _shape_contradiction(shape, declared)
        if problem is not None:
            self._mismatch(lineno, problem)
        if (value.dtype is not None and "any" not in self.dtypes
                and value.dtype not in self.dtypes):
            self._mismatch(
                lineno, f"returns dtype {value.dtype} outside the declared "
                        f"{'|'.join(sorted(self.dtypes))}")

    def _mismatch(self, lineno: int, problem: str) -> None:
        self.findings.append(Finding(
            self.spec.path, lineno, "contract-mismatch",
            f"{self.spec.qualname}: {problem} (declared "
            f"'{self.spec.shape}')"))


# -- shared helpers ----------------------------------------------------------

@dataclass(frozen=True)
class _DimVal:
    """A single dimension extracted from an abstract shape."""

    dim: object  # int | str (symbol or "?")


def _assigned_names(loop: ast.For | ast.While) -> set[str]:
    """Names rebound anywhere in a loop (the loop variable included).

    Subscript and attribute stores mutate in place and are *not* rebindings,
    so ``labels[idx] = v`` inside a loop keeps ``labels`` precise.
    """
    names: set[str] = set()
    if isinstance(loop, ast.For):
        for node in ast.walk(loop.target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    for stmt in ast.walk(loop):
        if isinstance(stmt, ast.Assign):
            targets: list[ast.expr] = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.NamedExpr):
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                             ast.Store):
                    names.add(node.id)
    return names


def _as_dim(value: object) -> object:
    if isinstance(value, int):
        return _DIM if value == -1 else value
    if isinstance(value, _DimVal):
        return value.dim
    return _DIM


def _is_dimlike(value: object) -> bool:
    return isinstance(value, (int, float, _DimVal))


def _dims_from_value(value: object) -> tuple | None:
    """Shape-argument interpretation for np.zeros/ones/empty/full/arange."""
    if isinstance(value, int):
        return (value,)
    if isinstance(value, _DimVal):
        return (value.dim,)
    if isinstance(value, _ShapeTuple):
        return value.dims
    if isinstance(value, _Tuple):
        return tuple(_as_dim(item) if _is_dimlike(item) else _DIM
                     for item in value.items)
    if isinstance(value, _Arr) and value.shape == ():
        return (_DIM,)
    return None


def _shape_index(dims: tuple, index: int) -> object:
    """``x.shape[i]`` over dims that may contain an Ellipsis."""
    if Ellipsis not in dims:
        if -len(dims) <= index < len(dims):
            return _DimVal(dims[index])
        return _UNKNOWN
    marker = dims.index(Ellipsis)
    if 0 <= index < marker:
        return _DimVal(dims[index])
    if index < 0 and -index <= len(dims) - marker - 1:
        return _DimVal(dims[index])
    return _UNKNOWN


def _drop_axes(shape: tuple | None, axis: object,
               keepdims: bool) -> tuple | None:
    if shape is None:
        return None
    axes: list[int] = []
    if isinstance(axis, int):
        axes = [axis]
    elif isinstance(axis, _Tuple):
        if not all(isinstance(i, int) for i in axis.items):
            return None
        axes = list(axis.items)
    else:
        return None
    if Ellipsis in shape:
        # Negative axes addressing the named suffix after the `...` are
        # still resolvable: (..., K).max(axis=-1, keepdims=True) -> (..., 1).
        suffix = len(shape) - shape.index(Ellipsis) - 1
        if all(a < 0 and -a <= suffix for a in axes):
            dims = list(shape)
            for a in sorted(axes):
                if keepdims:
                    dims[a] = 1
            if not keepdims:
                for a in sorted(axes):
                    del dims[len(dims) + a]
            return tuple(dims)
        return None
    rank = len(shape)
    normalized = sorted({a % rank for a in axes if -rank <= a < rank})
    if len(normalized) != len(axes):
        return None
    if keepdims:
        return tuple(1 if i in normalized else dim
                     for i, dim in enumerate(shape))
    return tuple(dim for i, dim in enumerate(shape) if i not in normalized)


def _operand_shape(value: object) -> tuple | None:
    if isinstance(value, _Arr):
        return value.shape
    if isinstance(value, (int, float, bool, _DimVal)):
        return ()
    return None


def _broadcast_shapes(a: tuple | None, b: tuple | None) -> tuple | None:
    if a is None or b is None:
        return None
    if a == ():
        return b
    if b == ():
        return a
    if Ellipsis in a or Ellipsis in b:
        return a if a == b else None
    rank = max(len(a), len(b))
    left = (1,) * (rank - len(a)) + a
    right = (1,) * (rank - len(b)) + b
    dims = []
    for x, y in zip(left, right):
        if x == y:
            dims.append(x)
        elif x == 1:
            dims.append(y)
        elif y == 1:
            dims.append(x)
        else:
            dims.append(_DIM)
    return tuple(dims)


def _binop_dtype(left: object, right: object, op: ast.operator) -> str | None:
    ldt = left.dtype if isinstance(left, _Arr) else None
    rdt = right.dtype if isinstance(right, _Arr) else None
    if isinstance(left, _Arr) and not isinstance(right, _Arr):
        return _promote_with(ldt, right)
    if isinstance(right, _Arr) and not isinstance(left, _Arr):
        return _promote_with(rdt, left)
    if isinstance(op, ast.Div):
        if ldt in _FLOAT_DTYPES and rdt in _FLOAT_DTYPES:
            return _promote_dtypes(ldt, rdt)
        return None
    return ldt if ldt == rdt else _promote_dtypes(ldt, rdt)


def _promote_with(dtype: str | None, scalar: object) -> str | None:
    """Promotion of an array dtype with a python scalar operand."""
    if dtype is None:
        return None
    if isinstance(scalar, bool):
        return dtype
    if isinstance(scalar, int):
        return dtype if dtype != "bool" else None
    if isinstance(scalar, float):
        return dtype if dtype in _FLOAT_DTYPES else None
    if isinstance(scalar, _Arr):
        return _promote_dtypes(dtype, scalar.dtype)
    return None


def _promote_dtypes(a: str | None, b: str | None) -> str | None:
    if a == b:
        return a
    if a in _FLOAT_DTYPES and b in _FLOAT_DTYPES:
        return max(a, b, key=lambda d: int(d[5:]))
    return None


def _fold_arith(left, right, op: ast.operator):
    if isinstance(op, ast.Add):
        return left + right
    if isinstance(op, ast.Sub):
        return left - right
    if isinstance(op, ast.Mult):
        return left * right
    if isinstance(op, ast.Div):
        return left / right
    if isinstance(op, ast.FloorDiv):
        return left // right
    if isinstance(op, ast.Mod):
        return left % right
    if isinstance(op, ast.Pow):
        return left ** right
    return _UNKNOWN


def _bind_dims(declared: tuple, actual: tuple, bindings: dict) -> None:
    """Bind contract symbols against a known actual shape (best effort)."""
    if Ellipsis in actual:
        return
    if Ellipsis in declared:
        marker = declared.index(Ellipsis)
        prefix, suffix = declared[:marker], declared[marker + 1:]
        if len(actual) < len(prefix) + len(suffix):
            return
        pairs = list(zip(prefix, actual[:len(prefix)]))
        if suffix:
            pairs += list(zip(suffix, actual[-len(suffix):]))
    else:
        if len(declared) != len(actual):
            return
        pairs = list(zip(declared, actual))
    for dim, extent in pairs:
        if isinstance(dim, str) and dim != _DIM and extent != _DIM:
            bindings.setdefault(dim, extent)


def _shape_contradiction(shape: tuple, declared: tuple) -> str | None:
    """A message when ``shape`` provably cannot satisfy ``declared``.

    Symbol-vs-symbol disagreements are *not* contradictions (two symbols may
    denote equal extents at runtime); rank violations and unequal concrete
    integers are.
    """
    shape_known = Ellipsis not in shape
    if Ellipsis in declared:
        marker = declared.index(Ellipsis)
        prefix, suffix = declared[:marker], declared[marker + 1:]
        if shape_known and len(shape) < len(prefix) + len(suffix):
            return (f"returns rank {len(shape)} where the contract needs at "
                    f"least {len(prefix) + len(suffix)} dims")
        pairs = _aligned_pairs(prefix, shape, from_left=True)
        pairs += _aligned_pairs(suffix, shape, from_left=False)
    else:
        if shape_known and len(shape) != len(declared):
            return (f"returns rank {len(shape)} where the contract declares "
                    f"{format_dims(declared)}")
        if not shape_known:
            named = sum(1 for dim in shape if dim is not Ellipsis)
            if named > len(declared):
                return (f"returns at least {named} dims where the contract "
                        f"declares {format_dims(declared)}")
        pairs = _aligned_pairs(declared, shape, from_left=True)
        pairs += _aligned_pairs(declared, shape, from_left=False)
    for dim, extent in pairs:
        if (isinstance(dim, int) and isinstance(extent, int)
                and dim != extent):
            return (f"returns extent {extent} where the contract declares "
                    f"{dim}")
    return None


def _aligned_pairs(declared: tuple, shape: tuple,
                   from_left: bool) -> list[tuple]:
    """(declared dim, actual dim) pairs comparable from one end."""
    pairs = []
    dims = declared if from_left else tuple(reversed(declared))
    actual = shape if from_left else tuple(reversed(shape))
    for dim, extent in zip(dims, actual):
        if dim is Ellipsis or extent is Ellipsis:
            break
        pairs.append((dim, extent))
    return pairs


_SPEC_BY_QUALNAME: dict[str, ShapeSpec] = {}
for _spec in SHAPES:
    # Methods resolve as Class.method (self-calls); module functions by name.
    _SPEC_BY_QUALNAME.setdefault(_spec.qualname, _spec)
    if "." not in _spec.qualname:
        _SPEC_BY_QUALNAME.setdefault(_spec.qualname.split(".")[-1], _spec)
del _spec
