"""The shape-contract registry: symbolic array shapes for the numpy stack.

Like the lock discipline in :mod:`repro.analysis.guards`, every contract is
declared twice, on purpose:

* **in the source**, as ``# shape:`` / ``# dtype:`` comments directly under
  the ``def`` line, so a reader at the definition site sees the contract, and
* **here**, as a machine-readable :class:`ShapeSpec` per function, so the
  static abstract interpreter (:mod:`repro.analysis.shapes`) and the dynamic
  cross-check (:mod:`repro.analysis.shape_runtime`, behind
  ``pytest --shape-check``) share one source of truth.

The checker cross-verifies the two: a contract annotated in the source but
missing from the manifest (or vice versa, or textually different) is itself
a finding, so the registry can never silently drift from the code.

Contract grammar (one line, after ``# shape:``)::

    contract := [ inputs ] "->" output
    inputs   := tuple { "," tuple }        # one per checked array argument
    tuple    := "(" [ dim { "," dim } [ "," ] ] ")"
    dim      := INT | SYMBOL | "..."

* ``()`` declares a scalar (a 0-d array or a Python number).
* A **symbol** (``N``, ``H'``, ``K``) binds on first use and must unify
  everywhere it reappears *within one call* — ``(N, H, W, C) -> (N, K)``
  asserts the batch dimension survives.
* ``...`` matches zero or more dimensions and never binds, so
  ``(N, ...) -> (N, ...)`` constrains only the batch dimension.
* An **integer** is a concrete required extent (``(..., 3) -> (..., 1)``).

``# dtype:`` lists the dtypes the function may return, ``|``-separated
(``float64``, ``float32|float64``).  Functions without a dtype line may
return anything (manifest dtype ``any``).

A ``# shape ok: <reason>`` comment suppresses static findings on one line —
the reason is mandatory, so every suppression documents itself.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ShapeSpec", "Contract", "SHAPES", "SOURCE_ROOT",
           "parse_contract", "parse_dtypes", "parse_shape_annotations",
           "shape_suppressed_lines", "format_dims"]

#: The package root the registry's relative paths resolve against.
SOURCE_ROOT = Path(__file__).resolve().parent.parent

_SHAPE_RE = re.compile(r"#\s*shape:\s*(?P<text>.+?)\s*$")
_DTYPE_RE = re.compile(r"#\s*dtype:\s*(?P<text>[\w|]+)\s*$")
_SUPPRESS_RE = re.compile(r"#\s*shape ok:\s*\S")
_SYMBOL_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*'*$")

#: Dtype names the ``# dtype:`` grammar accepts.
KNOWN_DTYPES = frozenset({
    "float16", "float32", "float64", "int8", "int16", "int32", "int64",
    "uint8", "bool", "any",
})


@dataclass(frozen=True)
class ShapeSpec:
    """Shape/dtype contract for one function.

    Parameters
    ----------
    path:
        Module file, relative to the ``repro`` package root.
    qualname:
        ``Class.method`` for methods, bare name for module functions.
    shape:
        The contract text (see the grammar in the module docstring).
    dtype:
        ``|``-separated dtypes the function may return; ``any`` disables
        the dtype check.
    args:
        Parameter names carrying the input tuples, in contract order.  When
        empty the inputs map onto the leading positional parameters
        (``self``/``cls`` skipped) — set this when the contract-carrying
        arrays are not the first parameters.
    tuple_index:
        When the function returns a tuple, the element the output contract
        applies to.
    hot:
        Marks a hot-path function: the no-silent-copy lint flags
        ``np.concatenate``/``np.append``/``np.vstack``/``np.hstack`` and
        list-literal fancy indexing inside its loops.
    """

    path: str
    qualname: str
    shape: str
    dtype: str = "any"
    args: tuple[str, ...] = ()
    tuple_index: int | None = None
    hot: bool = False

    def file(self, root: Path | None = None) -> Path:
        return (root if root is not None else SOURCE_ROOT) / self.path


@dataclass(frozen=True)
class Contract:
    """A parsed contract: input tuples and the output tuple.

    Dims are ``int`` (concrete), ``str`` (a binding symbol) or ``Ellipsis``.
    """

    inputs: tuple[tuple, ...]
    output: tuple


def parse_contract(text: str) -> Contract:
    """Parse the ``# shape:`` grammar into a :class:`Contract`."""
    if "->" not in text:
        raise ValueError(f"shape contract needs '->': {text!r}")
    lhs, _, rhs = text.partition("->")
    inputs = tuple(_parse_tuples(lhs, text))
    outputs = _parse_tuples(rhs, text)
    if len(outputs) != 1:
        raise ValueError(f"shape contract needs exactly one output: {text!r}")
    return Contract(inputs=inputs, output=outputs[0])


def _parse_tuples(text: str, full: str) -> list[tuple]:
    text = text.strip()
    if not text:
        return []
    tuples: list[tuple] = []
    for group in re.findall(r"\(([^()]*)\)", text):
        tuples.append(_parse_dims(group, full))
    rebuilt = ", ".join("(" + g + ")" for g in re.findall(r"\(([^()]*)\)", text))
    if _normalize(rebuilt) != _normalize(text):
        raise ValueError(f"malformed shape contract: {full!r}")
    return tuples


def _parse_dims(group: str, full: str) -> tuple:
    dims: list = []
    for token in group.split(","):
        token = token.strip()
        if not token:
            continue
        if token == "...":
            dims.append(Ellipsis)
        elif re.fullmatch(r"-?\d+", token):
            dims.append(int(token))
        elif _SYMBOL_RE.fullmatch(token):
            dims.append(token)
        else:
            raise ValueError(f"bad dim {token!r} in shape contract {full!r}")
    if dims.count(Ellipsis) > 1:
        raise ValueError(f"at most one '...' per tuple: {full!r}")
    return tuple(dims)


def parse_dtypes(text: str) -> frozenset[str]:
    """Parse a ``# dtype:`` value into the set of allowed dtype names."""
    names = frozenset(part.strip() for part in text.split("|") if part.strip())
    unknown = names - KNOWN_DTYPES
    if not names or unknown:
        raise ValueError(f"bad dtype declaration {text!r}")
    return names


def format_dims(dims: tuple) -> str:
    """Render a parsed tuple back to contract syntax (for messages)."""
    parts = ["..." if dim is Ellipsis else str(dim) for dim in dims]
    if len(parts) == 1 and parts[0] not in ("...",):
        return "(" + parts[0] + ",)"
    return "(" + ", ".join(parts) + ")"


def _normalize(text: str) -> str:
    return "".join(text.split())


def contracts_equal(a: str, b: str) -> bool:
    """Whether two contract texts are the same modulo whitespace."""
    return _normalize(a) == _normalize(b)


@dataclass(frozen=True)
class ShapeAnnotation:
    """One function's source-side contract comments."""

    shape: str | None
    shape_line: int
    dtype: str | None
    dtype_line: int


def parse_shape_annotations(source: str,
                            tree: ast.AST | None = None
                            ) -> dict[str, ShapeAnnotation]:
    """``{qualname: annotation}`` for every ``# shape:``/``# dtype:`` comment.

    A comment belongs to the innermost enclosing function; methods are keyed
    ``Class.method``.  Comments outside any function are keyed by line as
    ``<module>:<line>`` so the cross-check can flag them.
    """
    tree = tree if tree is not None else ast.parse(source)
    spans: list[tuple[str, int, int]] = []  # (qualname, first line, last line)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    spans.append((f"{node.name}.{item.name}",
                                  item.lineno, item.end_lineno or item.lineno))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.name, node.lineno,
                          node.end_lineno or node.lineno))

    def owner(line: int) -> str:
        best: tuple[int, str] | None = None
        for qualname, start, end in spans:
            if start <= line <= end and (best is None or start > best[0]):
                best = (start, qualname)
        return best[1] if best is not None else f"<module>:{line}"

    shapes: dict[str, tuple[str, int]] = {}
    dtypes: dict[str, tuple[str, int]] = {}
    for number, line in enumerate(source.splitlines(), 1):
        match = _SHAPE_RE.search(line)
        if match:
            shapes.setdefault(owner(number), (match.group("text"), number))
        match = _DTYPE_RE.search(line)
        if match:
            dtypes.setdefault(owner(number), (match.group("text"), number))

    found: dict[str, ShapeAnnotation] = {}
    for qualname in set(shapes) | set(dtypes):
        shape, shape_line = shapes.get(qualname, (None, 0))
        dtype, dtype_line = dtypes.get(qualname, (None, 0))
        found[qualname] = ShapeAnnotation(shape=shape, shape_line=shape_line,
                                          dtype=dtype, dtype_line=dtype_line)
    return found


def shape_suppressed_lines(source: str) -> set[int]:
    """1-based line numbers carrying ``# shape ok: <reason>``."""
    return {number for number, line in enumerate(source.splitlines(), 1)
            if _SUPPRESS_RE.search(line)}


SHAPES: tuple[ShapeSpec, ...] = (
    # -- nn/: every layer forward --------------------------------------------
    ShapeSpec("nn/layers.py", "Conv2D.forward",
              "(N, H, W, C) -> (N, H', W', K)", dtype="float64", hot=True),
    ShapeSpec("nn/layers.py", "MaxPool2D.forward",
              "(N, H, W, C) -> (N, H', W', C)", hot=True),
    ShapeSpec("nn/layers.py", "GlobalAveragePool.forward",
              "(N, H, W, C) -> (N, C)"),
    ShapeSpec("nn/layers.py", "Flatten.forward", "(N, ...) -> (N, D)"),
    ShapeSpec("nn/layers.py", "Dense.forward",
              "(N, D) -> (N, K)", dtype="float64", hot=True),
    ShapeSpec("nn/layers.py", "ReLU.forward", "(N, ...) -> (N, ...)"),
    ShapeSpec("nn/layers.py", "Sigmoid.forward",
              "(N, ...) -> (N, ...)", dtype="float64"),
    ShapeSpec("nn/layers.py", "Softmax.forward", "(..., K) -> (..., K)"),
    ShapeSpec("nn/layers.py", "Dropout.forward", "(N, ...) -> (N, ...)"),
    ShapeSpec("nn/layers.py", "BatchNorm.forward",
              "(N, ...) -> (N, ...)", dtype="float64"),
    ShapeSpec("nn/blocks.py", "ResidualBlock.forward",
              "(N, H, W, C) -> (N, H, W, K)", dtype="float64"),
    # -- nn/: network, im2col plumbing, losses, training --------------------
    ShapeSpec("nn/network.py", "Sequential.forward", "(N, ...) -> (N, ...)"),
    ShapeSpec("nn/network.py", "Sequential.predict",
              "(N, ...) -> (N, ...)", hot=True),
    ShapeSpec("nn/network.py", "Sequential.predict_proba",
              "(N, ...) -> (N, ...)"),
    ShapeSpec("nn/im2col.py", "im2col", "(N, H, W, C) -> (M, D)", hot=True),
    ShapeSpec("nn/im2col.py", "col2im", "(M, D) -> (N, H, W, C)", hot=True),
    ShapeSpec("nn/losses.py", "BinaryCrossEntropy.forward",
              "(N, ...), (...) -> ()", dtype="float64"),
    ShapeSpec("nn/losses.py", "BinaryCrossEntropy.backward",
              "(N, ...), (...) -> (N, ...)", dtype="float64"),
    ShapeSpec("nn/losses.py", "MeanSquaredError.forward",
              "(N, ...), (...) -> ()", dtype="float64"),
    ShapeSpec("nn/losses.py", "MeanSquaredError.backward",
              "(N, ...), (...) -> (N, ...)", dtype="float64"),
    ShapeSpec("nn/dtypes.py", "as_float",
              "(...) -> (...)", dtype="float32|float64"),
    ShapeSpec("nn/dtypes.py", "align_targets",
              "(N, ...), (...) -> (N, ...)", dtype="float32|float64",
              tuple_index=0),
    ShapeSpec("nn/train.py", "evaluate_accuracy",
              "(N, ...), (...) -> ()", args=("x", "y")),
    # -- transforms/: the representation pipeline ----------------------------
    ShapeSpec("transforms/spec.py", "TransformSpec.apply",
              "(..., H, W, C) -> (..., R, R, C')"),
    ShapeSpec("transforms/spec.py", "TransformSpec.apply_batch",
              "(N, H, W, C) -> (N, R, R, C')"),
    ShapeSpec("transforms/resize.py", "resize",
              "(..., H, W, C) -> (..., R, R, C)"),
    ShapeSpec("transforms/resize.py", "resize_nearest",
              "(..., H, W, C) -> (..., R, R, C)"),
    ShapeSpec("transforms/resize.py", "resize_bilinear",
              "(..., H, W, C) -> (..., R, R, C)"),
    ShapeSpec("transforms/resize.py", "resize_area",
              "(..., H, W, C) -> (..., R, R, C)"),
    ShapeSpec("transforms/color.py", "to_grayscale", "(..., 3) -> (..., 1)"),
    ShapeSpec("transforms/color.py", "extract_channel",
              "(..., 3) -> (..., 1)"),
    ShapeSpec("transforms/color.py", "to_color_mode", "(..., 3) -> (..., C')"),
    ShapeSpec("transforms/color.py", "quantize_color_depth",
              "(...) -> (...)"),
    ShapeSpec("transforms/ops.py", "normalize", "(...) -> (...)"),
    ShapeSpec("transforms/ops.py", "horizontal_flip",
              "(..., H, W, C) -> (..., H, W, C)"),
    # -- core/: the cascade classify path ------------------------------------
    ShapeSpec("core/model.py", "TrainedModel.predict_proba",
              "(N, H, W, C) -> (N, ...)", dtype="float64"),
    ShapeSpec("core/model.py", "TrainedModel.predict_proba_transformed",
              "(N, H, W, C) -> (N, ...)", dtype="float64"),
    ShapeSpec("core/model.py", "TrainedModel.predict",
              "(N, H, W, C) -> (N,)", dtype="int64"),
    ShapeSpec("core/cascade.py", "Cascade.classify",
              "(N, H, W, C) -> (N,)", dtype="int64"),
    ShapeSpec("core/cascade.py", "Cascade.classify_with_stats",
              "(N, H, W, C) -> (N,)", dtype="int64", tuple_index=0, hot=True),
    # -- db/: the mask algebra the executor runs per query -------------------
    ShapeSpec("db/executor.py", "QueryExecutor._metadata_mask",
              "-> (S,)", dtype="bool"),
    ShapeSpec("db/executor.py", "QueryExecutor._evaluate_tree",
              "(S,) -> (S,)", dtype="bool", args=("mask",), hot=True),
    ShapeSpec("db/executor.py", "QueryExecutor._evaluate_content",
              "(S,) -> (S,)", dtype="int64", args=("candidate_mask",),
              tuple_index=0, hot=True),
    ShapeSpec("db/aggregates.py", "_numeric_values",
              "(V,) -> (V,)", args=("values",)),
    ShapeSpec("db/aggregates.py", "_non_null", "(V,) -> (W,)"),
    # -- baselines/: the NoScope-style pipeline ------------------------------
    ShapeSpec("baselines/difference.py", "FramePlan.expand_labels",
              "(P,) -> (F,)", dtype="int64"),
    ShapeSpec("baselines/difference.py", "DifferenceDetector._signature",
              "(H, W, C) -> (H', W', C)"),
)
