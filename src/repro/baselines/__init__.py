"""Baseline systems the paper compares against.

* :mod:`repro.baselines.reference` — the expensive, accurate reference
  classifier (stand-in for the fine-tuned ResNet50 and, with a cost
  multiplier, for YOLOv2),
* :mod:`repro.baselines.baseline_cascades` — the "Baseline" cascade set:
  NoScope-style two-level cascades whose models all consume the full-size,
  full-color representation and that terminate in the reference classifier,
* :mod:`repro.baselines.difference` — the frame-difference detector, and
* :mod:`repro.baselines.noscope` — the NoScope-style video pipeline plus
  TAHOMA+DD (a TAHOMA cascade combined with the same difference detector),
  used for the Figure 8 comparison.
"""

from repro.baselines.baseline_cascades import build_baseline_cascades, baseline_model_specs
from repro.baselines.difference import DifferenceDetector, FramePlan
from repro.baselines.noscope import (
    NoScopePipeline,
    PipelineResult,
    TahomaWithDifferenceDetector,
)
from repro.baselines.reference import (
    build_reference_network,
    reference_transform,
    train_reference_model,
)

__all__ = [
    "build_reference_network",
    "train_reference_model",
    "reference_transform",
    "build_baseline_cascades",
    "baseline_model_specs",
    "DifferenceDetector",
    "FramePlan",
    "NoScopePipeline",
    "TahomaWithDifferenceDetector",
    "PipelineResult",
]
