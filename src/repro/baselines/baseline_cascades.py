"""The paper's "Baseline" cascade set (Section VII-B).

These are NoScope-style, non-optimized cascades: a subset of TAHOMA's design
space in which every specialized model consumes the full-size, full-color
representation (no input transformations) and every cascade terminates in the
expensive reference classifier.  Comparing TAHOMA's frontier against this set
isolates the contribution of the physical-representation dimension.
"""

from __future__ import annotations

from repro.core.cascade import Cascade, CascadeBuilder
from repro.core.model import TrainedModel
from repro.core.spec import ArchitectureSpec, ModelSpec
from repro.core.thresholds import DecisionThresholds
from repro.transforms.spec import TransformSpec

__all__ = ["baseline_model_specs", "build_baseline_cascades", "is_full_representation"]


def is_full_representation(transform: TransformSpec, source_resolution: int) -> bool:
    """Whether ``transform`` is the untransformed full-size, full-color input."""
    return (transform.resolution == source_resolution
            and transform.color_mode == "rgb")


def baseline_model_specs(architectures: list[ArchitectureSpec],
                         source_resolution: int) -> list[ModelSpec]:
    """Model specs for the baseline: every architecture on the full input only."""
    if not architectures:
        raise ValueError("architectures must be non-empty")
    transform = TransformSpec(resolution=source_resolution, color_mode="rgb")
    return [ModelSpec(architecture=arch, transform=transform)
            for arch in architectures if arch.fits_input(source_resolution)]


def build_baseline_cascades(models: list[TrainedModel],
                            thresholds: dict[str, list[DecisionThresholds]],
                            reference_model: TrainedModel,
                            source_resolution: int) -> list[Cascade]:
    """Build the baseline cascade set from an existing trained-model pool.

    Only models consuming the full-size, full-color representation are used as
    first levels, and every cascade is ``specialized -> reference`` (plus the
    reference classifier alone), mirroring prior-work cascades.
    """
    full_input_models = [model for model in models
                         if not model.is_reference
                         and is_full_representation(model.transform,
                                                    source_resolution)]
    if not full_input_models:
        raise ValueError("no models consume the full-size full-color input; "
                         "cannot build baseline cascades")

    builder = CascadeBuilder(thresholds, max_depth=1,
                             reference_model=reference_model)
    cascades = builder.build(full_input_models, include_reference_tail=True)

    # Keep only the NoScope-style shapes: the reference classifier alone, or a
    # single thresholded full-input model followed by the reference classifier.
    from repro.core.cascade import CascadeLevel  # local import to avoid cycle noise

    reference_only = Cascade((CascadeLevel(reference_model, None),))
    baseline = [cascade for cascade in cascades if cascade.ends_in_reference()]
    return [reference_only] + baseline
