"""Frame-difference detection (NoScope's redundancy filter).

NoScope avoids classifying frames that look nearly identical to a recently
classified frame, reusing the earlier result.  The same mechanism is attached
to a TAHOMA cascade to form TAHOMA+DD for the Figure 8 comparison — the paper
is explicit that the difference detector is orthogonal to its contribution, so
both systems get it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FramePlan", "DifferenceDetector"]


@dataclass(frozen=True)
class FramePlan:
    """Which frames get classified and which reuse an earlier result.

    ``reuse_from[i]`` is the index of the earlier *processed* frame whose
    label frame ``i`` reuses, or ``-1`` when frame ``i`` is processed itself.
    """

    processed: np.ndarray
    reuse_from: np.ndarray

    @property
    def n_frames(self) -> int:
        return int(self.reuse_from.size)

    @property
    def n_processed(self) -> int:
        return int(self.processed.size)

    @property
    def n_reused(self) -> int:
        return self.n_frames - self.n_processed

    @property
    def reuse_fraction(self) -> float:
        if self.n_frames == 0:
            return 0.0
        return self.n_reused / self.n_frames

    def expand_labels(self, processed_labels: np.ndarray) -> np.ndarray:
        # shape: (P,) -> (F,)
        # dtype: int64
        """Propagate labels of processed frames to the frames reusing them."""
        processed_labels = np.asarray(processed_labels).ravel()
        if processed_labels.size != self.n_processed:
            raise ValueError("processed_labels length does not match the plan")
        labels = np.zeros(self.n_frames, dtype=np.int64)
        labels[self.processed] = processed_labels
        reused_mask = self.reuse_from >= 0
        labels[reused_mask] = labels[self.reuse_from[reused_mask]]
        return labels


class DifferenceDetector:
    """Skips frames that are nearly identical to the last processed frame.

    Parameters
    ----------
    threshold:
        Mean-squared-difference threshold below which a frame is considered
        redundant and reuses the previous result.
    downsample:
        Comparing at a reduced resolution (every ``downsample``-th pixel)
        makes the detector cheap, as in NoScope.
    """

    def __init__(self, threshold: float = 1e-3, downsample: int = 4) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if downsample < 1:
            raise ValueError("downsample must be at least 1")
        self.threshold = threshold
        self.downsample = downsample

    def _signature(self, frame: np.ndarray) -> np.ndarray:
        # shape: (H, W, C) -> (H', W', C)
        return frame[::self.downsample, ::self.downsample, :]

    def frame_distance(self, frame_a: np.ndarray, frame_b: np.ndarray) -> float:
        """Mean squared difference between two frames' downsampled signatures."""
        sig_a, sig_b = self._signature(frame_a), self._signature(frame_b)
        return float(np.mean((sig_a - sig_b) ** 2))

    def plan(self, frames: np.ndarray) -> FramePlan:
        """Decide, frame by frame, whether to classify or reuse.

        The first frame is always processed.  A later frame is processed when
        its distance to the *last processed* frame exceeds the threshold;
        otherwise it reuses that frame's (future) label.
        """
        if frames.ndim != 4:
            raise ValueError(f"expected NHWC frames, got shape {frames.shape}")
        n = frames.shape[0]
        if n == 0:
            return FramePlan(processed=np.array([], dtype=np.int64),
                             reuse_from=np.array([], dtype=np.int64))

        processed: list[int] = [0]
        reuse_from = np.full(n, -1, dtype=np.int64)
        last_index = 0
        last_signature = self._signature(frames[0])
        for index in range(1, n):
            signature = self._signature(frames[index])
            distance = float(np.mean((signature - last_signature) ** 2))
            if distance <= self.threshold:
                reuse_from[index] = last_index
            else:
                processed.append(index)
                last_index = index
                last_signature = signature
        return FramePlan(processed=np.asarray(processed, dtype=np.int64),
                         reuse_from=reuse_from)

    def calibrate(self, frames: np.ndarray, target_reuse: float = 0.25) -> float:
        """Set the threshold so roughly ``target_reuse`` of frames are reused.

        Uses the empirical distribution of consecutive-frame distances; the
        chosen threshold is stored on the detector and returned.
        """
        if not 0.0 <= target_reuse < 1.0:
            raise ValueError("target_reuse must be in [0, 1)")
        if frames.shape[0] < 2:
            return self.threshold
        signatures = frames[:, ::self.downsample, ::self.downsample, :]
        distances = np.mean((signatures[1:] - signatures[:-1]) ** 2, axis=(1, 2, 3))
        self.threshold = float(np.quantile(distances, target_reuse))
        return self.threshold

    def values_touched(self, frame_shape: tuple[int, int, int]) -> int:
        """Scalar comparisons per frame, used by the analytic cost model."""
        height, width, channels = frame_shape
        return (height // self.downsample) * (width // self.downsample) * channels
