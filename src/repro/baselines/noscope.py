"""NoScope-style video pipeline and TAHOMA+DD (paper Section VII-C).

Both pipelines answer a binary predicate over a video stream:

* :class:`NoScopePipeline` — difference detector, then a single specialized
  CNN on the full-size full-color frame with calibrated thresholds, then the
  expensive oracle (YOLOv2 in the paper; our reference network here) for
  uncertain frames.
* :class:`TahomaWithDifferenceDetector` — the same difference detector in
  front of a TAHOMA-selected cascade, so the two systems are compared on an
  equal footing (the detector is orthogonal to TAHOMA's contribution).

Each returns a :class:`PipelineResult` with labels, accuracy against the
stream's ground truth, execution counts and an analytic throughput estimate
under a given cost profiler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.difference import DifferenceDetector, FramePlan
from repro.core.cascade import Cascade
from repro.core.model import TrainedModel
from repro.core.thresholds import DecisionThresholds
from repro.costs.profiler import CostBreakdown, CostProfiler
from repro.storage.store import RepresentationStore

__all__ = ["PipelineResult", "NoScopePipeline", "TahomaWithDifferenceDetector"]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of running a video pipeline over a stream."""

    name: str
    labels: np.ndarray
    accuracy: float
    n_frames: int
    n_reused: int
    n_specialized: int
    n_oracle: int
    cost: CostBreakdown

    @property
    def throughput(self) -> float:
        """Frames per second over the *processed* frames (reused frames are free)."""
        return self.cost.throughput_fps

    @property
    def reuse_fraction(self) -> float:
        if self.n_frames == 0:
            return 0.0
        return self.n_reused / self.n_frames

    @property
    def oracle_fraction(self) -> float:
        processed = self.n_frames - self.n_reused
        if processed == 0:
            return 0.0
        return self.n_oracle / processed


def _detector_cost(detector: DifferenceDetector, profiler: CostProfiler,
                   frame_shape: tuple[int, int, int]) -> CostBreakdown:
    """Per-frame cost of the difference detector (a cheap transform-like pass)."""
    values = detector.values_touched(frame_shape)
    return CostBreakdown(transform_s=profiler.device.transform_time(values))


class NoScopePipeline:
    """Difference detector -> specialized full-input CNN -> expensive oracle."""

    def __init__(self, specialized: TrainedModel, thresholds: DecisionThresholds,
                 oracle: TrainedModel,
                 detector: DifferenceDetector | None = None,
                 name: str = "noscope") -> None:
        if specialized.is_reference:
            raise ValueError("the specialized model must not be the reference model")
        self.specialized = specialized
        self.thresholds = thresholds
        self.oracle = oracle
        self.detector = detector or DifferenceDetector()
        self.name = name

    def run(self, frames: np.ndarray, true_labels: np.ndarray,
            profiler: CostProfiler,
            store: RepresentationStore | None = None) -> PipelineResult:
        """Run the pipeline over ``frames`` and price the processed frames."""
        true_labels = np.asarray(true_labels, dtype=np.int64).ravel()
        if frames.shape[0] != true_labels.size:
            raise ValueError("frames and labels have different lengths")
        store = store if store is not None else RepresentationStore()
        plan = self.detector.plan(frames)
        processed_frames = frames[plan.processed]

        specialized_repr = store.get_or_transform(self.specialized.transform,
                                                  processed_frames)
        probabilities = self.specialized.predict_proba_transformed(specialized_repr)
        confident = self.thresholds.confident_mask(probabilities)
        labels_processed = np.zeros(plan.n_processed, dtype=np.int64)
        labels_processed[confident] = self.thresholds.decide(probabilities[confident])

        uncertain_indices = np.where(~confident)[0]
        if uncertain_indices.size > 0:
            oracle_repr = self.oracle.transform.apply_batch(
                processed_frames[uncertain_indices])
            oracle_probs = self.oracle.network.predict_proba(oracle_repr)
            labels_processed[uncertain_indices] = (oracle_probs >= 0.5)

        labels = plan.expand_labels(labels_processed)
        accuracy = float((labels == true_labels).mean())
        cost = self._expected_cost(plan, uncertain_indices.size, profiler,
                                   frames.shape[1:])
        return PipelineResult(name=self.name, labels=labels, accuracy=accuracy,
                              n_frames=plan.n_frames, n_reused=plan.n_reused,
                              n_specialized=plan.n_processed,
                              n_oracle=int(uncertain_indices.size), cost=cost)

    def _expected_cost(self, plan: FramePlan, n_oracle: int,
                       profiler: CostProfiler,
                       frame_shape: tuple[int, int, int]) -> CostBreakdown:
        """Average per-processed-frame cost (matching the paper's reporting)."""
        if plan.n_processed == 0:
            return CostBreakdown()
        oracle_fraction = n_oracle / plan.n_processed
        cost = _detector_cost(self.detector, profiler, frame_shape)
        cost = cost + profiler.model_cost(self.specialized.flops,
                                          self.specialized.transform)
        cost = cost + profiler.model_cost(self.oracle.flops,
                                          self.oracle.transform).scaled(oracle_fraction)
        return cost


class TahomaWithDifferenceDetector:
    """TAHOMA+DD: a selected TAHOMA cascade behind the same difference detector."""

    def __init__(self, cascade: Cascade,
                 detector: DifferenceDetector | None = None,
                 name: str = "tahoma+dd") -> None:
        self.cascade = cascade
        self.detector = detector or DifferenceDetector()
        self.name = name

    def run(self, frames: np.ndarray, true_labels: np.ndarray,
            profiler: CostProfiler,
            store: RepresentationStore | None = None) -> PipelineResult:
        """Run the cascade over the frames the detector does not skip."""
        true_labels = np.asarray(true_labels, dtype=np.int64).ravel()
        if frames.shape[0] != true_labels.size:
            raise ValueError("frames and labels have different lengths")
        store = store if store is not None else RepresentationStore()
        plan = self.detector.plan(frames)
        processed_frames = frames[plan.processed]

        labels_processed, stats = self.cascade.classify_with_stats(
            processed_frames, store=store)
        labels = plan.expand_labels(labels_processed)
        accuracy = float((labels == true_labels).mean())

        cost = self._expected_cost(plan, stats["evaluated"], profiler,
                                   frames.shape[1:])
        n_final = int(stats["evaluated"][-1]) if self.cascade.depth > 1 else 0
        return PipelineResult(name=self.name, labels=labels, accuracy=accuracy,
                              n_frames=plan.n_frames, n_reused=plan.n_reused,
                              n_specialized=plan.n_processed,
                              n_oracle=n_final if self.cascade.ends_in_reference() else 0,
                              cost=cost)

    def _expected_cost(self, plan: FramePlan, evaluated: np.ndarray,
                       profiler: CostProfiler,
                       frame_shape: tuple[int, int, int]) -> CostBreakdown:
        if plan.n_processed == 0:
            return CostBreakdown()
        cost = _detector_cost(self.detector, profiler, frame_shape)
        seen_representations: set[str] = set()
        for level, n_evaluated in zip(self.cascade.levels, evaluated):
            fraction = n_evaluated / plan.n_processed
            cost = cost + CostBreakdown(
                infer_s=profiler.infer_time(level.model.flops)).scaled(fraction)
            representation = level.model.transform.name
            if representation not in seen_representations:
                cost = cost + profiler.data_handling_cost(
                    level.model.transform).scaled(fraction)
                seen_representations.add(representation)
        return cost
