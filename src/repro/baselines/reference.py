"""The expensive reference classifier (stand-in for ResNet50 / YOLOv2).

The paper fine-tunes a pre-trained ResNet50 as its most accurate (and by far
slowest) classifier, and uses YOLOv2 as the expensive oracle in the NoScope
comparison.  Neither can be run here, so this module builds a much deeper and
wider residual NumPy CNN over the full-size, full-color representation.  What
matters for the reproduction is preserved: it is the most accurate model in
the pool and its per-image FLOP count is orders of magnitude above the
specialized models', which produces the paper's large speedup headroom.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import TrainedModel
from repro.data.augment import augment_with_flips
from repro.data.corpus import PredicateDataSplits
from repro.nn.blocks import ResidualBlock
from repro.nn.layers import Conv2D, Dense, GlobalAveragePool, MaxPool2D, ReLU, Sigmoid
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.train import evaluate_accuracy, fit
from repro.transforms.spec import TransformSpec

__all__ = ["build_reference_network", "train_reference_model", "reference_transform"]


def reference_transform(resolution: int) -> TransformSpec:
    """The reference classifier always consumes the full-color representation."""
    return TransformSpec(resolution=resolution, color_mode="rgb")


def build_reference_network(input_shape: tuple[int, int, int],
                            base_width: int = 24, n_stages: int = 3,
                            blocks_per_stage: int = 2,
                            dense_units: int = 64,
                            rng: np.random.Generator | None = None) -> Sequential:
    """Build the deep residual reference network.

    The architecture is a scaled-down ResNet: a convolutional stem followed by
    ``n_stages`` stages of residual blocks, each stage doubling the channel
    width and halving the spatial resolution, then global average pooling and
    a small dense head with a sigmoid output.
    """
    if n_stages < 1 or blocks_per_stage < 1:
        raise ValueError("n_stages and blocks_per_stage must be positive")
    height, width, channels = input_shape
    if height < 2 ** n_stages:
        raise ValueError(
            f"input resolution {height} too small for {n_stages} pooling stages")
    rng = rng or np.random.default_rng(0)

    layers: list = [Conv2D(channels, base_width, kernel_size=3, padding="same",
                           rng=rng), ReLU()]
    in_channels = base_width
    for stage in range(n_stages):
        out_channels = base_width * (2 ** stage)
        for block in range(blocks_per_stage):
            block_in = in_channels if block == 0 else out_channels
            layers.append(ResidualBlock(block_in, out_channels, rng=rng))
        layers.append(MaxPool2D(2))
        in_channels = out_channels

    layers.append(GlobalAveragePool())
    layers.append(Dense(in_channels, dense_units, rng=rng))
    layers.append(ReLU())
    layers.append(Dense(dense_units, 1, rng=rng))
    layers.append(Sigmoid())
    return Sequential(layers, input_shape=input_shape)


def train_reference_model(splits: PredicateDataSplits, *, resolution: int,
                          epochs: int = 8, batch_size: int = 16,
                          learning_rate: float = 0.004,
                          base_width: int = 24, n_stages: int = 3,
                          blocks_per_stage: int = 2, augment: bool = True,
                          name: str = "reference",
                          rng: np.random.Generator | None = None) -> TrainedModel:
    """Train the reference classifier for one predicate.

    This plays the role of the paper's fine-tuned ResNet50: trained on the
    same (augmented) training set as the specialized models, but consuming the
    full-resolution, full-color representation.
    """
    rng = rng or np.random.default_rng(0)
    transform = reference_transform(resolution)
    network = build_reference_network(transform.shape, base_width=base_width,
                                      n_stages=n_stages,
                                      blocks_per_stage=blocks_per_stage,
                                      rng=rng)

    dataset = splits.train
    if augment:
        dataset = augment_with_flips(dataset, rng=rng)
    images = transform.apply_batch(dataset.images)
    labels = dataset.labels

    fit(network, images, labels, epochs=epochs, batch_size=batch_size,
        optimizer=Adam(learning_rate=learning_rate), rng=rng)
    train_accuracy = evaluate_accuracy(network, images, labels)

    return TrainedModel(name=name, network=network, transform=transform,
                        architecture=None, kind="reference",
                        train_accuracy=train_accuracy)
