"""TAHOMA's core: the physical-representation-aware cascade optimizer.

The pieces map one-to-one onto the paper's architecture diagram (Figure 2):

* :mod:`repro.core.spec` — the model design space ``A x F``,
* :mod:`repro.core.trainer` — the model trainer,
* :mod:`repro.core.thresholds` — per-model decision-threshold calibration,
* :mod:`repro.core.cascade` — cascade construction (the cascade builder),
* :mod:`repro.core.evaluator` — the cascade evaluator (cached-prediction
  simulation of accuracy and expected deployment cost),
* :mod:`repro.core.pareto` / :mod:`repro.core.alc` — Pareto frontiers and the
  area-left-of-curve comparison metric,
* :mod:`repro.core.selector` — the cascade selector driven by user
  constraints, and
* :mod:`repro.core.optimizer` — the end-to-end orchestration
  (:class:`~repro.core.optimizer.TahomaOptimizer`).
"""

from repro.core.alc import (
    area_left_of_curve,
    average_throughput,
    shared_accuracy_range,
    speedup,
)
from repro.core.cascade import Cascade, CascadeBuilder, CascadeLevel, count_cascades
from repro.core.evaluator import (
    CascadeEvaluation,
    EvaluatedCascadeSet,
    ModelPredictionCache,
    evaluate_cascade,
    evaluate_cascades,
)
from repro.core.model import TrainedModel
from repro.core.optimizer import TahomaConfig, TahomaOptimizer
from repro.core.pareto import is_dominated, pareto_frontier, pareto_frontier_indices
from repro.core.persistence import load_optimizer, save_optimizer
from repro.core.selector import (
    UserConstraints,
    select_cascade,
    select_fastest,
    select_matching_accuracy,
    select_most_accurate,
)
from repro.core.spec import (
    ArchitectureSpec,
    ModelSpec,
    build_model_grid,
    standard_architecture_grid,
)
from repro.core.thresholds import (
    PAPER_PRECISION_TARGETS,
    DecisionThresholds,
    ThresholdCalibration,
    calibrate_thresholds,
)
from repro.core.trainer import ModelTrainer, TrainingConfig

__all__ = [
    "ArchitectureSpec",
    "ModelSpec",
    "standard_architecture_grid",
    "build_model_grid",
    "TrainedModel",
    "TrainingConfig",
    "ModelTrainer",
    "DecisionThresholds",
    "ThresholdCalibration",
    "calibrate_thresholds",
    "PAPER_PRECISION_TARGETS",
    "CascadeLevel",
    "Cascade",
    "CascadeBuilder",
    "count_cascades",
    "ModelPredictionCache",
    "CascadeEvaluation",
    "EvaluatedCascadeSet",
    "evaluate_cascade",
    "evaluate_cascades",
    "pareto_frontier",
    "pareto_frontier_indices",
    "is_dominated",
    "area_left_of_curve",
    "average_throughput",
    "speedup",
    "shared_accuracy_range",
    "UserConstraints",
    "select_cascade",
    "select_fastest",
    "select_most_accurate",
    "select_matching_accuracy",
    "TahomaConfig",
    "TahomaOptimizer",
    "save_optimizer",
    "load_optimizer",
]
