"""Area-left-of-curve (ALC) throughput comparison (paper Section VII-A).

To compare two cascade sets, the paper plots accuracy (y) against throughput
(x), interpolates each Pareto frontier as a step function, and integrates the
area to the *left* of the curve over a shared accuracy range.  Dividing the
area by the range length gives the average throughput over that range;
dividing one set's area by another's gives the speedup.
"""

from __future__ import annotations

import numpy as np

__all__ = ["area_left_of_curve", "average_throughput", "speedup",
           "shared_accuracy_range"]

# numpy 2.0 renamed trapz to trapezoid.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def _step_throughput(points: list[tuple[float, float]],
                     accuracies: np.ndarray) -> np.ndarray:
    """Best achievable throughput at each requested accuracy (step function).

    For a set of (accuracy, throughput) points, the best throughput available
    at accuracy level ``a`` is the maximum throughput among points with
    accuracy >= ``a``; below the minimum accuracy it is the overall maximum,
    above the maximum accuracy it is zero (no cascade reaches it).
    """
    acc = np.array([p[0] for p in points], dtype=np.float64)
    thr = np.array([p[1] for p in points], dtype=np.float64)
    order = np.argsort(acc)
    acc, thr = acc[order], thr[order]
    # Suffix maximum of throughput: best throughput at accuracy >= acc[i].
    suffix_max = np.maximum.accumulate(thr[::-1])[::-1]
    result = np.zeros_like(accuracies)
    for i, level in enumerate(accuracies):
        pos = np.searchsorted(acc, level, side="left")
        result[i] = suffix_max[pos] if pos < acc.size else 0.0
    return result


def area_left_of_curve(points: list[tuple[float, float]],
                       accuracy_range: tuple[float, float],
                       resolution: int = 512) -> float:
    """Integral of achievable throughput over the accuracy range.

    Parameters
    ----------
    points:
        ``(accuracy, throughput)`` tuples (typically a Pareto frontier, but
        any set is accepted — the paper re-prices one scenario's frontier
        under another scenario's costs, which is no longer a frontier).
    accuracy_range:
        ``(low, high)`` accuracy interval to integrate over.
    resolution:
        Number of evaluation points for the step-function integration.
    """
    if not points:
        raise ValueError("points must be non-empty")
    low, high = accuracy_range
    if not low <= high:
        raise ValueError("accuracy_range must be ordered (low, high)")
    if resolution < 2:
        raise ValueError("resolution must be at least 2")
    if low == high:
        return 0.0
    accuracies = np.linspace(low, high, resolution)
    throughputs = _step_throughput(points, accuracies)
    return float(_trapezoid(throughputs, accuracies))


def average_throughput(points: list[tuple[float, float]],
                       accuracy_range: tuple[float, float],
                       resolution: int = 512) -> float:
    """ALC divided by the accuracy-range width: average achievable throughput."""
    low, high = accuracy_range
    if low == high:
        # Degenerate range: fall back to the best throughput at that accuracy.
        return float(_step_throughput(points, np.array([low]))[0])
    return area_left_of_curve(points, accuracy_range, resolution) / (high - low)


def speedup(points_a: list[tuple[float, float]],
            points_b: list[tuple[float, float]],
            accuracy_range: tuple[float, float],
            resolution: int = 512) -> float:
    """Speedup of set A over set B: the ratio of their ALC values.

    A degenerate accuracy range (low == high, which happens when one set's
    cascades all share a single accuracy value) falls back to comparing the
    best achievable throughput at that accuracy level.
    """
    low, high = accuracy_range
    if low == high:
        baseline = average_throughput(points_b, accuracy_range, resolution)
        if baseline == 0:
            raise ZeroDivisionError("baseline set has zero throughput at this accuracy")
        return average_throughput(points_a, accuracy_range, resolution) / baseline
    area_b = area_left_of_curve(points_b, accuracy_range, resolution)
    if area_b == 0:
        raise ZeroDivisionError("baseline set has zero area over this range")
    return area_left_of_curve(points_a, accuracy_range, resolution) / area_b


def shared_accuracy_range(*point_sets: list[tuple[float, float]]
                          ) -> tuple[float, float]:
    """The smallest accuracy range spanned by any of the given sets.

    The paper compares frontiers over "the accuracy range for the full set of
    cascades for each configuration, choosing the smallest said range"; this
    helper implements that choice.
    """
    if not point_sets:
        raise ValueError("need at least one point set")
    lows, highs = [], []
    for points in point_sets:
        if not points:
            raise ValueError("point sets must be non-empty")
        accuracies = [p[0] for p in points]
        lows.append(min(accuracies))
        highs.append(max(accuracies))
    low, high = max(lows), min(highs)
    if high < low:
        # Ranges do not overlap; fall back to the tightest single point.
        return (low, low)
    return (low, high)
