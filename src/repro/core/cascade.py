"""Classifier cascades and cascade enumeration (paper Sections V-B to V-D)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.model import TrainedModel
from repro.core.thresholds import DecisionThresholds
from repro.storage.store import RepresentationStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.metrics import MetricsRegistry

__all__ = ["CascadeLevel", "Cascade", "CascadeBuilder", "count_cascades"]


@dataclass(frozen=True, eq=False)
class CascadeLevel:
    """One level of a cascade: a model plus its decision thresholds.

    The final level of a cascade has ``thresholds=None``: its output is always
    accepted (a 0.5 cut on the probability).
    """

    model: TrainedModel
    thresholds: DecisionThresholds | None = None

    @property
    def is_final(self) -> bool:
        return self.thresholds is None

    @property
    def name(self) -> str:
        if self.thresholds is None:
            return self.model.name
        return f"{self.model.name}@p{self.thresholds.precision_target:.2f}"


@dataclass(frozen=True, eq=False)
class Cascade:
    """An ordered sequence of cascade levels; the last level always decides."""

    levels: tuple[CascadeLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a cascade needs at least one level")
        for level in self.levels[:-1]:
            if level.thresholds is None:
                raise ValueError("only the final level may omit thresholds")
        if self.levels[-1].thresholds is not None:
            raise ValueError("the final level must not have thresholds")

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def name(self) -> str:
        return " -> ".join(level.name for level in self.levels)

    @property
    def models(self) -> tuple[TrainedModel, ...]:
        return tuple(level.model for level in self.levels)

    def ends_in_reference(self) -> bool:
        """Whether the final level is the expensive reference classifier."""
        return self.levels[-1].model.is_reference

    # -- execution ---------------------------------------------------------
    def classify(self, raw_images: np.ndarray,
                 store: RepresentationStore | None = None,
                 batch_size: int = 256,
                 metrics: "MetricsRegistry | None" = None) -> np.ndarray:
        # shape: (N, H, W, C) -> (N,)
        # dtype: int64
        """Actually execute the cascade over raw images, returning hard labels.

        A :class:`~repro.storage.store.RepresentationStore` can be passed so
        representations shared across levels (or across cascades) are computed
        only once, mirroring the paper's once-per-input data-handling rule.
        """
        labels, _ = self.classify_with_stats(raw_images, store=store,
                                             batch_size=batch_size,
                                             metrics=metrics)
        return labels

    def classify_with_stats(self, raw_images: np.ndarray,
                            store: RepresentationStore | None = None,
                            batch_size: int = 256,
                            metrics: "MetricsRegistry | None" = None
                            ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        # shape: (N, H, W, C) -> (N,)
        # dtype: int64
        """Like :meth:`classify` but also returns per-level execution counts.

        The stats dictionary contains ``evaluated`` (images reaching each
        level) and ``decided`` (images decided at each level), both arrays of
        length ``depth``.  A :class:`~repro.telemetry.metrics.MetricsRegistry`
        additionally records the per-level filter rates as
        ``repro_cascade_level_evaluated_total`` / ``_decided_total``
        counters labelled by cascade name and level index.
        """
        if raw_images.ndim != 4:
            raise ValueError(f"expected NHWC batch, got shape {raw_images.shape}")
        n = raw_images.shape[0]
        store = store if store is not None else RepresentationStore()
        labels = np.zeros(n, dtype=np.int64)
        pending = np.arange(n)
        evaluated = np.zeros(self.depth, dtype=np.int64)
        decided = np.zeros(self.depth, dtype=np.int64)

        for index, level in enumerate(self.levels):
            if pending.size == 0:
                break
            evaluated[index] = pending.size
            representation = store.get_or_transform(level.model.transform,
                                                    raw_images)
            probabilities = level.model.predict_proba_transformed(
                representation[pending], batch_size=batch_size)
            if level.is_final:
                labels[pending] = (probabilities >= 0.5).astype(np.int64)
                decided[index] = pending.size
                pending = np.array([], dtype=np.int64)
            else:
                confident = level.thresholds.confident_mask(probabilities)
                decided_idx = pending[confident]
                labels[decided_idx] = level.thresholds.decide(
                    probabilities[confident])
                decided[index] = decided_idx.size
                pending = pending[~confident]

        if metrics is not None:
            evaluated_total = metrics.counter(
                "repro_cascade_level_evaluated_total")
            decided_total = metrics.counter(
                "repro_cascade_level_decided_total")
            for index in range(self.depth):
                if evaluated[index]:
                    evaluated_total.inc(int(evaluated[index]),
                                        cascade=self.name, level=str(index))
                if decided[index]:
                    decided_total.inc(int(decided[index]),
                                      cascade=self.name, level=str(index))

        return labels, {"evaluated": evaluated, "decided": decided}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cascade({self.name})"


def count_cascades(n_models: int, n_precision_targets: int, max_depth: int,
                   with_reference_tail: bool) -> int:
    """Size of the cascade design space enumerated by :class:`CascadeBuilder`.

    Counts every ordered arrangement of distinct models where the first
    ``depth - 1`` levels additionally pick one of the precision targets, for
    all depths up to ``max_depth``, plus (when ``with_reference_tail``) the
    variants whose thresholded prefix is followed by the reference classifier.
    This is the analogue of the paper's ~1.3 million cascades per predicate.
    """
    if n_models <= 0 or n_precision_targets <= 0 or max_depth <= 0:
        raise ValueError("all counts must be positive")
    total = 0
    for depth in range(1, max_depth + 1):
        arrangements = 1
        for i in range(depth - 1):
            arrangements *= (n_models - i) * n_precision_targets
        arrangements *= (n_models - (depth - 1))
        total += arrangements
        if with_reference_tail:
            # Same prefix but every level is thresholded and the reference
            # classifier is appended as the always-accept final level.
            tail_arrangements = 1
            for i in range(depth):
                tail_arrangements *= (n_models - i) * n_precision_targets
            total += tail_arrangements
    return total


class CascadeBuilder:
    """Enumerates the cascade set ``C`` from a pool of trained models.

    Parameters
    ----------
    precision_thresholds:
        Mapping from model name to the list of calibrated
        :class:`~repro.core.thresholds.DecisionThresholds` for that model
        (one per precision target).
    max_depth:
        Maximum number of levels drawn from the specialized model pool.
    reference_model:
        Optional expensive classifier appended as an extra final level,
        producing the paper's "+ ResNet50" cascade variants.
    """

    def __init__(self, precision_thresholds: dict[str, list[DecisionThresholds]],
                 max_depth: int = 2,
                 reference_model: TrainedModel | None = None) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.precision_thresholds = precision_thresholds
        self.max_depth = max_depth
        self.reference_model = reference_model

    def _thresholds_for(self, model: TrainedModel) -> list[DecisionThresholds]:
        thresholds = self.precision_thresholds.get(model.name, [])
        if not thresholds:
            raise KeyError(f"no calibrated thresholds for model {model.name!r}")
        return thresholds

    def build(self, models: list[TrainedModel],
              include_reference_tail: bool = True) -> list[Cascade]:
        """Enumerate all cascades up to ``max_depth`` (plus reference tails)."""
        if not models:
            raise ValueError("models must be non-empty")
        cascades: list[Cascade] = []
        self._extend(models, (), cascades, include_reference_tail)
        return cascades

    def _extend(self, models: list[TrainedModel],
                prefix: tuple[CascadeLevel, ...],
                output: list[Cascade],
                include_reference_tail: bool) -> None:
        depth_so_far = len(prefix)
        used = {level.model.name for level in prefix}

        if depth_so_far >= 1 and include_reference_tail and self.reference_model is not None:
            output.append(Cascade(prefix + (CascadeLevel(self.reference_model, None),)))

        if depth_so_far >= self.max_depth:
            return

        for model in models:
            if model.name in used or model.is_reference:
                continue
            # This model as the cascade's final (always-accept) level.
            output.append(Cascade(prefix + (CascadeLevel(model, None),)))
            # This model as an intermediate level, at every precision target.
            for thresholds in self._thresholds_for(model):
                self._extend(models,
                             prefix + (CascadeLevel(model, thresholds),),
                             output, include_reference_tail)
