"""Fast cascade evaluation from cached per-model predictions (Section V-D/E).

The key trick that makes evaluating millions of cascades cheap is that every
cascade is a combination of the same basic models: each model is run over the
held-out evaluation set exactly once, and every cascade's accuracy and
expected cost are then *simulated* from those cached probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cascade import Cascade
from repro.core.model import TrainedModel
from repro.core.pareto import pareto_frontier_indices
from repro.costs.profiler import CostBreakdown, CostProfiler
from repro.storage.store import RepresentationStore

__all__ = ["ModelPredictionCache", "CascadeEvaluation", "EvaluatedCascadeSet",
           "evaluate_cascade", "evaluate_cascades"]


class ModelPredictionCache:
    """Cached probabilities of every model on one labeled image set."""

    def __init__(self, probabilities: dict[str, np.ndarray],
                 labels: np.ndarray) -> None:
        self.labels = np.asarray(labels, dtype=np.int64).ravel()
        self.probabilities = {}
        for name, probs in probabilities.items():
            probs = np.asarray(probs, dtype=np.float64).ravel()
            if probs.shape != self.labels.shape:
                raise ValueError(
                    f"predictions for {name!r} have length {probs.size}, "
                    f"expected {self.labels.size}")
            self.probabilities[name] = probs

    @classmethod
    def from_models(cls, models: list[TrainedModel], images: np.ndarray,
                    labels: np.ndarray,
                    store: RepresentationStore | None = None,
                    batch_size: int = 256) -> "ModelPredictionCache":
        """Run every model once over ``images`` and cache its probabilities.

        A shared :class:`~repro.storage.store.RepresentationStore` avoids
        re-transforming the images for models that share a representation.
        """
        store = store if store is not None else RepresentationStore()
        probabilities = {}
        for model in models:
            representation = store.get_or_transform(model.transform, images)
            probabilities[model.name] = model.predict_proba_transformed(
                representation, batch_size=batch_size)
        return cls(probabilities, labels)

    def get(self, model: TrainedModel) -> np.ndarray:
        try:
            return self.probabilities[model.name]
        except KeyError:
            raise KeyError(f"model {model.name!r} not in prediction cache") from None

    def __contains__(self, model: TrainedModel) -> bool:
        return model.name in self.probabilities

    def __len__(self) -> int:
        return len(self.probabilities)

    @property
    def n_examples(self) -> int:
        return int(self.labels.size)


@dataclass(frozen=True, eq=False)
class CascadeEvaluation:
    """Accuracy and expected per-image cost of one cascade.

    ``positive_rate`` is the fraction of evaluation-set images the cascade
    labels positive — the query planner's selectivity estimate for the
    predicate.  NaN for evaluations built without a decision replay.
    """

    cascade: Cascade
    accuracy: float
    cost: CostBreakdown
    level_fractions: tuple[float, ...]
    positive_rate: float = float("nan")

    @property
    def throughput(self) -> float:
        """Images per second under the profiler's deployment scenario."""
        return self.cost.throughput_fps

    @property
    def name(self) -> str:
        return self.cascade.name

    @property
    def depth(self) -> int:
        return self.cascade.depth

    def point(self) -> tuple[float, float]:
        """The (accuracy, throughput) point used for Pareto analysis."""
        return (self.accuracy, self.throughput)


def evaluate_cascade(cascade: Cascade, cache: ModelPredictionCache,
                     profiler: CostProfiler) -> CascadeEvaluation:
    """Simulate one cascade over the evaluation set and price it.

    Accuracy comes from replaying the cascade's decision logic on the cached
    probabilities.  Expected cost follows the paper's accounting: a level's
    inference cost is weighted by the fraction of images that reach it, and a
    representation's load/transform cost is incurred at the first level that
    uses it (costs "occur once for a given input").
    """
    labels = cache.labels
    n = labels.size
    if n == 0:
        raise ValueError("evaluation set is empty")

    predictions = np.zeros(n, dtype=np.int64)
    reach_mask = np.ones(n, dtype=bool)
    level_fractions = []
    cost = CostBreakdown()
    seen_representations: set[str] = set()

    for level in cascade.levels:
        fraction_reaching = float(reach_mask.mean())
        level_fractions.append(fraction_reaching)
        probabilities = cache.get(level.model)

        # Expected inference cost: pay only for images that reach this level.
        cost = cost + CostBreakdown(
            infer_s=profiler.infer_time(level.model.flops)).scaled(fraction_reaching)

        # Data handling: first level to use a representation pays for it.
        representation_name = level.model.transform.name
        if representation_name not in seen_representations:
            handling = profiler.data_handling_cost(level.model.transform)
            cost = cost + handling.scaled(fraction_reaching)
            seen_representations.add(representation_name)

        if level.is_final:
            predictions[reach_mask] = (probabilities[reach_mask] >= 0.5)
            reach_mask = np.zeros(n, dtype=bool)
            break
        confident = level.thresholds.confident_mask(probabilities)
        decided_here = reach_mask & confident
        predictions[decided_here] = level.thresholds.decide(
            probabilities[decided_here])
        reach_mask = reach_mask & ~confident

    # Images never decided (possible only for malformed cascades) count as 0.
    accuracy = float((predictions == labels).mean())
    return CascadeEvaluation(cascade=cascade, accuracy=accuracy, cost=cost,
                             level_fractions=tuple(level_fractions),
                             positive_rate=float(predictions.mean()))


def evaluate_cascades(cascades: list[Cascade], cache: ModelPredictionCache,
                      profiler: CostProfiler) -> "EvaluatedCascadeSet":
    """Evaluate a whole cascade set under one deployment scenario."""
    if not cascades:
        raise ValueError("cascades must be non-empty")
    evaluations = [evaluate_cascade(cascade, cache, profiler)
                   for cascade in cascades]
    return EvaluatedCascadeSet(evaluations=evaluations,
                               scenario_name=profiler.scenario.name)


@dataclass(eq=False)
class EvaluatedCascadeSet:
    """All cascade evaluations for one predicate under one scenario."""

    evaluations: list[CascadeEvaluation]
    scenario_name: str = ""

    def __post_init__(self) -> None:
        if not self.evaluations:
            raise ValueError("evaluations must be non-empty")

    def __len__(self) -> int:
        return len(self.evaluations)

    def points(self) -> list[tuple[float, float]]:
        """All (accuracy, throughput) points."""
        return [evaluation.point() for evaluation in self.evaluations]

    def frontier(self) -> list[CascadeEvaluation]:
        """The Pareto-optimal evaluations, sorted by descending throughput."""
        accuracy = np.array([e.accuracy for e in self.evaluations])
        throughput = np.array([e.throughput for e in self.evaluations])
        indices = pareto_frontier_indices(accuracy, throughput)
        return [self.evaluations[i] for i in indices]

    def frontier_points(self) -> list[tuple[float, float]]:
        """The Pareto frontier as (accuracy, throughput) points."""
        return [evaluation.point() for evaluation in self.frontier()]

    def accuracy_range(self) -> tuple[float, float]:
        """The (min, max) accuracy spanned by the full cascade set."""
        accuracies = [e.accuracy for e in self.evaluations]
        return (min(accuracies), max(accuracies))

    def best_accuracy(self) -> CascadeEvaluation:
        """The most accurate cascade (ties broken by throughput)."""
        return max(self.evaluations, key=lambda e: (e.accuracy, e.throughput))

    def fastest(self) -> CascadeEvaluation:
        """The highest-throughput cascade (ties broken by accuracy)."""
        return max(self.evaluations, key=lambda e: (e.throughput, e.accuracy))
