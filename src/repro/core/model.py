"""Trained classification models (the elements of the paper's set ``M``)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import ArchitectureSpec
from repro.nn.flops import count_network_flops
from repro.nn.network import Sequential
from repro.transforms.spec import TransformSpec

__all__ = ["TrainedModel"]


@dataclass
class TrainedModel:
    """A trained binary classifier plus the representation it consumes.

    Parameters
    ----------
    name:
        Stable identifier (unique within one optimizer run).
    network:
        The trained :class:`~repro.nn.network.Sequential`.
    transform:
        The physical input representation the network expects.
    architecture:
        The architecture specification, or ``None`` for externally built
        models such as the reference classifier.
    kind:
        ``"specialized"`` for the small grid models, ``"reference"`` for the
        expensive stand-in for ResNet50/YOLOv2.
    flops:
        Per-image forward-pass FLOPs; computed from the network if omitted.
    """

    name: str
    network: Sequential
    transform: TransformSpec
    architecture: ArchitectureSpec | None = None
    kind: str = "specialized"
    flops: int = field(default=0)
    train_accuracy: float = float("nan")

    def __post_init__(self) -> None:
        if self.kind not in ("specialized", "reference"):
            raise ValueError("kind must be 'specialized' or 'reference'")
        if self.flops <= 0:
            self.flops = count_network_flops(self.network, self.transform.shape)

    @property
    def is_reference(self) -> bool:
        return self.kind == "reference"

    # -- inference -----------------------------------------------------------
    def predict_proba(self, raw_images: np.ndarray,
                      batch_size: int = 256) -> np.ndarray:
        # shape: (N, H, W, C) -> (N, ...)
        # dtype: float64
        """Probabilities for raw (full-size RGB) images; applies the transform."""
        transformed = self.transform.apply_batch(raw_images)
        return self.network.predict_proba(transformed, batch_size=batch_size)

    def predict_proba_transformed(self, representation: np.ndarray,
                                  batch_size: int = 256) -> np.ndarray:
        # shape: (N, H, W, C) -> (N, ...)
        # dtype: float64
        """Probabilities for images already in this model's representation."""
        if representation.shape[1:] != self.transform.shape:
            raise ValueError(
                f"representation shape {representation.shape[1:]} does not "
                f"match {self.transform.shape}")
        return self.network.predict_proba(representation, batch_size=batch_size)

    def predict(self, raw_images: np.ndarray, threshold: float = 0.5,
                batch_size: int = 256) -> np.ndarray:
        # shape: (N, H, W, C) -> (N,)
        # dtype: int64
        """Hard binary labels for raw images."""
        return (self.predict_proba(raw_images, batch_size) >= threshold).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TrainedModel({self.name!r}, kind={self.kind!r}, "
                f"flops={self.flops})")
