"""The TAHOMA optimizer: system initialization and query-time selection.

This module ties the pieces of Figure 2 together.  *System initialization*
(per binary predicate) trains the model set ``M`` over the ``A x F`` design
space, calibrates per-model decision thresholds on the configuration set,
caches per-model predictions on the evaluation set and enumerates the cascade
set ``C``.  *Query time* evaluates ``C`` under the current deployment
scenario's cost profile, computes the Pareto frontier and selects the cascade
matching the user's constraints; the selected cascade is then executed over
the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cascade import Cascade, CascadeBuilder
from repro.core.evaluator import (
    CascadeEvaluation,
    EvaluatedCascadeSet,
    ModelPredictionCache,
    evaluate_cascades,
)
from repro.core.model import TrainedModel
from repro.core.selector import UserConstraints, select_cascade
from repro.core.spec import (
    ArchitectureSpec,
    ModelSpec,
    build_model_grid,
    standard_architecture_grid,
)
from repro.core.thresholds import (
    PAPER_PRECISION_TARGETS,
    DecisionThresholds,
    calibrate_thresholds,
)
from repro.core.trainer import ModelTrainer, TrainingConfig
from repro.costs.profiler import CostProfiler
from repro.data.corpus import PredicateDataSplits
from repro.storage.store import RepresentationStore
from repro.transforms.spec import TransformSpec, standard_transform_grid

__all__ = ["TahomaConfig", "TahomaOptimizer"]


@dataclass(frozen=True)
class TahomaConfig:
    """Configuration of one TAHOMA optimizer instance.

    The defaults follow the paper's grids; benchmarks pass reduced grids so
    the whole pipeline runs on CPU in minutes.
    """

    architectures: tuple[ArchitectureSpec, ...] = tuple(standard_architecture_grid())
    transforms: tuple[TransformSpec, ...] = tuple(standard_transform_grid())
    precision_targets: tuple[float, ...] = PAPER_PRECISION_TARGETS
    max_depth: int = 2
    include_reference_tail: bool = True
    training: TrainingConfig = field(default_factory=TrainingConfig)
    threshold_grid_size: int = 25

    def __post_init__(self) -> None:
        if not self.architectures or not self.transforms:
            raise ValueError("architectures and transforms must be non-empty")
        if not self.precision_targets:
            raise ValueError("precision_targets must be non-empty")
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")

    def model_specs(self) -> list[ModelSpec]:
        """The valid points of the ``A x F`` design space."""
        return build_model_grid(list(self.architectures), list(self.transforms))


class TahomaOptimizer:
    """End-to-end TAHOMA pipeline for one binary predicate."""

    def __init__(self, config: TahomaConfig | None = None) -> None:
        self.config = config or TahomaConfig()
        self.models: list[TrainedModel] = []
        self.reference_model: TrainedModel | None = None
        self.thresholds: dict[str, list[DecisionThresholds]] = {}
        self.cache: ModelPredictionCache | None = None
        self.cascades: list[Cascade] = []
        self._initialized = False

    # -- system initialization --------------------------------------------
    def initialize(self, splits: PredicateDataSplits,
                   reference_model: TrainedModel | None = None,
                   rng: np.random.Generator | None = None,
                   extra_models: list[TrainedModel] | None = None) -> None:
        """Run the full initialization pipeline for one predicate.

        Parameters
        ----------
        splits:
            Train / configuration / evaluation datasets for the predicate.
        reference_model:
            Optional expensive classifier (the ResNet50 stand-in) used as the
            cascades' final level and as a baseline.
        rng:
            Random generator controlling training.
        extra_models:
            Additional pre-trained models to include in the pool (used by the
            experiments to share models across optimizer variants).
        """
        rng = rng or np.random.default_rng(self.config.training.seed)

        trainer = ModelTrainer(self.config.training)
        self.models = trainer.train_models(self.config.model_specs(),
                                           splits.train, rng=rng)
        if extra_models:
            self.models = list(self.models) + list(extra_models)
        self.reference_model = reference_model

        self._calibrate_thresholds(splits)
        self._build_cache(splits)
        self._build_cascades()
        self._initialized = True

    def initialize_with_models(self, models: list[TrainedModel],
                               splits: PredicateDataSplits,
                               reference_model: TrainedModel | None = None) -> None:
        """Initialize from an existing model pool (skipping training).

        Used by the experiment harness to evaluate several cascade-set
        variants (e.g. the Figure 10 transformation subsets) without
        retraining shared models.
        """
        if not models:
            raise ValueError("models must be non-empty")
        self.models = list(models)
        self.reference_model = reference_model
        self._calibrate_thresholds(splits)
        self._build_cache(splits)
        self._build_cascades()
        self._initialized = True

    def _calibrate_thresholds(self, splits: PredicateDataSplits) -> None:
        """Calibrate (p_low, p_high) per model per precision target."""
        store = RepresentationStore()
        config_images = splits.config.images
        config_labels = splits.config.labels
        self.thresholds = {}
        for model in self._threshold_models():
            representation = store.get_or_transform(model.transform, config_images)
            probabilities = model.predict_proba_transformed(representation)
            calibrated = []
            for target in self.config.precision_targets:
                calibration = calibrate_thresholds(
                    probabilities, config_labels, precision_target=target,
                    grid_size=self.config.threshold_grid_size)
                calibrated.append(calibration.thresholds)
            self.thresholds[model.name] = calibrated

    def _threshold_models(self) -> list[TrainedModel]:
        models = list(self.models)
        if self.reference_model is not None:
            models.append(self.reference_model)
        return models

    def _build_cache(self, splits: PredicateDataSplits) -> None:
        """Cache per-model predictions on the held-out evaluation set."""
        self.cache = ModelPredictionCache.from_models(
            self._threshold_models(), splits.eval.images, splits.eval.labels)

    def _build_cascades(self) -> None:
        builder = CascadeBuilder(self.thresholds,
                                 max_depth=self.config.max_depth,
                                 reference_model=self.reference_model)
        self.cascades = builder.build(
            self.models,
            include_reference_tail=(self.config.include_reference_tail
                                    and self.reference_model is not None))

    # -- query time ---------------------------------------------------------
    def _require_initialized(self) -> None:
        if not self._initialized or self.cache is None:
            raise RuntimeError("optimizer not initialized; call initialize() first")

    def evaluate(self, profiler: CostProfiler) -> EvaluatedCascadeSet:
        """Evaluate every cascade under the given deployment cost profile."""
        self._require_initialized()
        return evaluate_cascades(self.cascades, self.cache, profiler)

    def frontier(self, profiler: CostProfiler) -> list[CascadeEvaluation]:
        """The Pareto-optimal cascades under the given cost profile."""
        return self.evaluate(profiler).frontier()

    def select(self, profiler: CostProfiler,
               constraints: UserConstraints | None = None) -> CascadeEvaluation:
        """Pick the Pareto-optimal cascade matching the user's constraints."""
        constraints = constraints or UserConstraints()
        return select_cascade(self.frontier(profiler), constraints)

    def query(self, images: np.ndarray, cascade: Cascade | CascadeEvaluation,
              store: RepresentationStore | None = None) -> np.ndarray:
        """Execute a (selected) cascade over raw corpus images."""
        self._require_initialized()
        if isinstance(cascade, CascadeEvaluation):
            cascade = cascade.cascade
        return cascade.classify(images, store=store)

    # -- introspection -----------------------------------------------------
    @property
    def n_models(self) -> int:
        return len(self.models)

    @property
    def n_cascades(self) -> int:
        return len(self.cascades)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TahomaOptimizer(models={self.n_models}, "
                f"cascades={self.n_cascades}, initialized={self._initialized})")
