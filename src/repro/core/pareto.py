"""Pareto-frontier computation over (accuracy, throughput) points.

The paper (Section V-E) computes, for millions of candidate cascades, the
subset that is non-dominated in accuracy and throughput.  With two criteria
this is the classic maxima-of-a-point-set problem and runs in O(n log n)
(Kung, Luccio & Preparata, 1975): sort by one coordinate descending and sweep,
keeping points that improve the running maximum of the other coordinate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pareto_frontier_indices", "pareto_frontier", "is_dominated"]


def pareto_frontier_indices(accuracy: np.ndarray,
                            throughput: np.ndarray) -> np.ndarray:
    """Indices of the Pareto-optimal points, maximizing both coordinates.

    Ties are handled conservatively: a point is kept only if no other point is
    at least as good in both coordinates and strictly better in one.  The
    returned indices are sorted by descending throughput.
    """
    accuracy = np.asarray(accuracy, dtype=np.float64)
    throughput = np.asarray(throughput, dtype=np.float64)
    if accuracy.shape != throughput.shape:
        raise ValueError("accuracy and throughput must have the same shape")
    if accuracy.ndim != 1:
        raise ValueError("expected 1-D arrays")
    n = accuracy.size
    if n == 0:
        return np.array([], dtype=np.int64)

    # Sort by throughput descending; break ties by accuracy descending so the
    # best-accuracy point at a given throughput is seen first.
    order = np.lexsort((-accuracy, -throughput))
    frontier: list[int] = []
    best_accuracy = -np.inf
    for index in order:
        if accuracy[index] > best_accuracy:
            frontier.append(int(index))
            best_accuracy = accuracy[index]
    return np.asarray(frontier, dtype=np.int64)


def pareto_frontier(points: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Pareto frontier of ``(accuracy, throughput)`` tuples, maximizing both."""
    if not points:
        return []
    accuracy = np.array([p[0] for p in points])
    throughput = np.array([p[1] for p in points])
    indices = pareto_frontier_indices(accuracy, throughput)
    return [points[i] for i in indices]


def is_dominated(point: tuple[float, float],
                 others: list[tuple[float, float]]) -> bool:
    """Whether ``point`` is dominated by any point in ``others``.

    A point is dominated when another point is at least as good in both
    coordinates and strictly better in at least one.
    """
    acc, thr = point
    for other_acc, other_thr in others:
        if (other_acc >= acc and other_thr >= thr
                and (other_acc > acc or other_thr > thr)):
            return True
    return False
