"""Model-repository persistence (the "model repository" of paper Figure 2).

System initialization is the expensive part of TAHOMA: tens to hundreds of
models are trained per binary predicate.  This module saves an initialized
:class:`~repro.core.optimizer.TahomaOptimizer` — model weights, architecture
and representation metadata, calibrated thresholds, cached evaluation-set
predictions and the enumerated cascade structure inputs — to a directory, and
restores it without retraining.

Layout of a saved repository::

    <root>/
      repository.json         # metadata: specs, thresholds, config, labels
      weights/<model>.npz      # one archive per trained model (and reference)

Cascades are not stored explicitly (there can be millions); they are re-built
from the saved model pool and thresholds on load, which takes milliseconds.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.model import TrainedModel
from repro.core.optimizer import TahomaConfig, TahomaOptimizer
from repro.core.spec import ArchitectureSpec
from repro.core.thresholds import DecisionThresholds
from repro.nn.serialize import load_weights, save_weights
from repro.transforms.spec import TransformSpec

__all__ = ["save_optimizer", "load_optimizer"]

_FORMAT_VERSION = 1


def _architecture_to_dict(architecture: ArchitectureSpec | None) -> dict | None:
    if architecture is None:
        return None
    return {"conv_layers": architecture.conv_layers,
            "conv_filters": architecture.conv_filters,
            "dense_units": architecture.dense_units,
            "kernel_size": architecture.kernel_size,
            "pool_size": architecture.pool_size}


def _architecture_from_dict(data: dict | None) -> ArchitectureSpec | None:
    if data is None:
        return None
    return ArchitectureSpec(**data)


def _transform_to_dict(transform: TransformSpec) -> dict:
    return {"resolution": transform.resolution,
            "color_mode": transform.color_mode,
            "resize_mode": transform.resize_mode}


def _transform_from_dict(data: dict) -> TransformSpec:
    return TransformSpec(**data)


def _model_to_dict(model: TrainedModel) -> dict:
    return {"name": model.name,
            "kind": model.kind,
            "flops": model.flops,
            "train_accuracy": (None if np.isnan(model.train_accuracy)
                               else float(model.train_accuracy)),
            "architecture": _architecture_to_dict(model.architecture),
            "transform": _transform_to_dict(model.transform)}


def _thresholds_to_list(thresholds: list[DecisionThresholds]) -> list[dict]:
    return [{"p_low": t.p_low, "p_high": t.p_high,
             "precision_target": t.precision_target} for t in thresholds]


def _thresholds_from_list(data: list[dict]) -> list[DecisionThresholds]:
    return [DecisionThresholds(**entry) for entry in data]


def _config_to_dict(config: TahomaConfig) -> dict:
    return {
        "architectures": [_architecture_to_dict(a) for a in config.architectures],
        "transforms": [_transform_to_dict(t) for t in config.transforms],
        "precision_targets": list(config.precision_targets),
        "max_depth": config.max_depth,
        "include_reference_tail": config.include_reference_tail,
        "threshold_grid_size": config.threshold_grid_size,
    }


def _config_from_dict(data: dict) -> TahomaConfig:
    return TahomaConfig(
        architectures=tuple(_architecture_from_dict(a) for a in data["architectures"]),
        transforms=tuple(_transform_from_dict(t) for t in data["transforms"]),
        precision_targets=tuple(data["precision_targets"]),
        max_depth=data["max_depth"],
        include_reference_tail=data["include_reference_tail"],
        threshold_grid_size=data["threshold_grid_size"],
    )


def _rebuild_network(model_meta: dict):
    """Rebuild an untrained network matching a saved model's metadata."""
    transform = _transform_from_dict(model_meta["transform"])
    architecture = _architecture_from_dict(model_meta["architecture"])
    if architecture is not None:
        return architecture.build(transform.shape), architecture, transform
    # Reference models have no ArchitectureSpec; they are rebuilt via the
    # reference builder with its default shape parameters stored alongside.
    from repro.baselines.reference import build_reference_network

    params = model_meta.get("reference_params", {})
    network = build_reference_network(transform.shape, **params)
    return network, None, transform


def save_optimizer(optimizer: TahomaOptimizer, root: str | Path,
                   reference_params: dict | None = None) -> Path:
    """Persist an initialized optimizer to ``root``.

    Parameters
    ----------
    optimizer:
        An initialized :class:`TahomaOptimizer`.
    root:
        Target directory (created if needed).
    reference_params:
        The keyword arguments (``base_width``, ``n_stages``,
        ``blocks_per_stage``, ``dense_units``) used to build the reference
        network, needed to re-instantiate it on load.  Required when the
        optimizer has a reference model built with non-default parameters.
    """
    if optimizer.cache is None:
        raise ValueError("optimizer is not initialized; nothing to save")
    root = Path(root)
    weights_dir = root / "weights"
    weights_dir.mkdir(parents=True, exist_ok=True)

    models_meta = []
    for model in optimizer.models:
        models_meta.append(_model_to_dict(model))
        save_weights(model.network, weights_dir / f"{model.name}.npz")

    reference_meta = None
    if optimizer.reference_model is not None:
        reference_meta = _model_to_dict(optimizer.reference_model)
        reference_meta["reference_params"] = reference_params or {}
        save_weights(optimizer.reference_model.network,
                     weights_dir / f"{optimizer.reference_model.name}.npz")

    payload = {
        "format_version": _FORMAT_VERSION,
        "config": _config_to_dict(optimizer.config),
        "models": models_meta,
        "reference": reference_meta,
        "thresholds": {name: _thresholds_to_list(thresholds)
                       for name, thresholds in optimizer.thresholds.items()},
        "cache": {
            "labels": optimizer.cache.labels.tolist(),
            "probabilities": {name: probs.tolist()
                              for name, probs in optimizer.cache.probabilities.items()},
        },
    }
    (root / "repository.json").write_text(json.dumps(payload))
    return root


def load_optimizer(root: str | Path) -> TahomaOptimizer:
    """Restore an optimizer saved with :func:`save_optimizer` (no retraining)."""
    root = Path(root)
    manifest_path = root / "repository.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no repository.json under {root}")
    payload = json.loads(manifest_path.read_text())
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported repository format "
                         f"{payload.get('format_version')!r}")

    weights_dir = root / "weights"
    config = _config_from_dict(payload["config"])
    optimizer = TahomaOptimizer(config)

    models = []
    for meta in payload["models"]:
        network, architecture, transform = _rebuild_network(meta)
        load_weights(network, weights_dir / f"{meta['name']}.npz")
        models.append(TrainedModel(
            name=meta["name"], network=network, transform=transform,
            architecture=architecture, kind=meta["kind"], flops=meta["flops"],
            train_accuracy=(float("nan") if meta["train_accuracy"] is None
                            else meta["train_accuracy"])))

    reference = None
    if payload["reference"] is not None:
        meta = payload["reference"]
        network, _, transform = _rebuild_network(meta)
        load_weights(network, weights_dir / f"{meta['name']}.npz")
        reference = TrainedModel(
            name=meta["name"], network=network, transform=transform,
            architecture=None, kind="reference", flops=meta["flops"],
            train_accuracy=(float("nan") if meta["train_accuracy"] is None
                            else meta["train_accuracy"]))

    from repro.core.evaluator import ModelPredictionCache

    optimizer.models = models
    optimizer.reference_model = reference
    optimizer.thresholds = {name: _thresholds_from_list(entries)
                            for name, entries in payload["thresholds"].items()}
    optimizer.cache = ModelPredictionCache(
        probabilities={name: np.asarray(probs)
                       for name, probs in payload["cache"]["probabilities"].items()},
        labels=np.asarray(payload["cache"]["labels"]))
    optimizer._build_cascades()
    optimizer._initialized = True
    return optimizer
