"""Cascade selection against user constraints (paper Section V-A).

Like approximate query systems (BlinkDB, VerdictDB), TAHOMA lets the user
declare how much accuracy (``U_acc``) or throughput (``U_thru``) they are
willing to give up; the selector then picks the Pareto-optimal cascade that
best honours the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluator import CascadeEvaluation

__all__ = ["UserConstraints", "select_cascade", "select_fastest",
           "select_most_accurate", "select_matching_accuracy"]


@dataclass(frozen=True)
class UserConstraints:
    """The user's tolerated losses, expressed as fractions of the best value.

    Parameters
    ----------
    max_accuracy_loss:
        Highest tolerable *relative* accuracy loss versus the most accurate
        cascade available (e.g. ``0.05`` tolerates a 5% relative drop).
        ``None`` means accuracy must not be sacrificed at all.
    min_throughput:
        Optional hard floor on throughput (frames per second).
    """

    max_accuracy_loss: float | None = None
    min_throughput: float | None = None

    def __post_init__(self) -> None:
        if self.max_accuracy_loss is not None and not 0.0 <= self.max_accuracy_loss < 1.0:
            raise ValueError("max_accuracy_loss must be in [0, 1)")
        if self.min_throughput is not None and self.min_throughput < 0:
            raise ValueError("min_throughput must be non-negative")


def select_most_accurate(evaluations: list[CascadeEvaluation]) -> CascadeEvaluation:
    """The most accurate cascade; throughput breaks ties."""
    if not evaluations:
        raise ValueError("evaluations must be non-empty")
    return max(evaluations, key=lambda e: (e.accuracy, e.throughput))


def select_fastest(evaluations: list[CascadeEvaluation],
                   min_accuracy: float | None = None) -> CascadeEvaluation:
    """The fastest cascade, optionally subject to an accuracy floor."""
    if not evaluations:
        raise ValueError("evaluations must be non-empty")
    candidates = evaluations
    if min_accuracy is not None:
        candidates = [e for e in evaluations if e.accuracy >= min_accuracy]
        if not candidates:
            raise ValueError(
                f"no cascade reaches the accuracy floor {min_accuracy:.3f}")
    return max(candidates, key=lambda e: (e.throughput, e.accuracy))


def select_matching_accuracy(evaluations: list[CascadeEvaluation],
                             target_accuracy: float) -> CascadeEvaluation:
    """The cascade whose accuracy is closest to, but not below, the target.

    This mirrors how the paper compares against a single classifier: "choose
    the optimal cascade whose accuracy is both higher and closest to the
    accuracy of the single classifier".  Ties on accuracy are broken by
    throughput.  If no cascade reaches the target, the most accurate one is
    returned.
    """
    if not evaluations:
        raise ValueError("evaluations must be non-empty")
    at_or_above = [e for e in evaluations if e.accuracy >= target_accuracy]
    if not at_or_above:
        return select_most_accurate(evaluations)
    best_accuracy = min(e.accuracy for e in at_or_above)
    nearest = [e for e in at_or_above if e.accuracy == best_accuracy]
    return max(nearest, key=lambda e: e.throughput)


def select_cascade(evaluations: list[CascadeEvaluation],
                   constraints: UserConstraints) -> CascadeEvaluation:
    """Select the cascade honouring the user's constraints.

    The selection rule follows the paper's example: with an accuracy-loss
    budget, pick the *fastest* cascade whose accuracy stays within the budget
    relative to the most accurate cascade available; a throughput floor is
    applied afterwards as a hard filter (falling back to the fastest cascade
    meeting the accuracy bound if the floor is unreachable).
    """
    if not evaluations:
        raise ValueError("evaluations must be non-empty")
    most_accurate = select_most_accurate(evaluations)
    if constraints.max_accuracy_loss is None:
        accuracy_floor = most_accurate.accuracy
    else:
        accuracy_floor = most_accurate.accuracy * (1.0 - constraints.max_accuracy_loss)

    within_budget = [e for e in evaluations if e.accuracy >= accuracy_floor]
    if not within_budget:
        within_budget = [most_accurate]

    if constraints.min_throughput is not None:
        fast_enough = [e for e in within_budget
                       if e.throughput >= constraints.min_throughput]
        if fast_enough:
            within_budget = fast_enough

    return max(within_budget, key=lambda e: (e.throughput, e.accuracy))
