"""Model design space: architecture specifications and model specifications.

The paper parameterizes each basic model by an architecture specification
``A`` (number of convolutional layers, nodes per layer, dense-layer width) and
an input transformation ``F`` (a :class:`~repro.transforms.spec.TransformSpec`).
The cross product ``A x F`` is the model design space; in the paper's
experiments it contains 360 models per binary predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sigmoid
from repro.nn.network import Sequential
from repro.transforms.spec import TransformSpec

__all__ = [
    "ArchitectureSpec",
    "ModelSpec",
    "standard_architecture_grid",
    "build_model_grid",
    "PAPER_CONV_LAYERS",
    "PAPER_CONV_FILTERS",
    "PAPER_DENSE_UNITS",
]

#: Architecture hyperparameter values used in the paper (Section VII-A).
PAPER_CONV_LAYERS = (1, 2, 4)
PAPER_CONV_FILTERS = (16, 32)
PAPER_DENSE_UNITS = (16, 32, 64)


@dataclass(frozen=True)
class ArchitectureSpec:
    """Hyperparameters of one small specialized CNN (paper Figure 3).

    The network is ``[Conv -> ReLU -> MaxPool] * n`` followed by a fully
    connected ReLU layer and a single sigmoid output node.

    Parameters
    ----------
    conv_layers:
        Number of convolution/pooling blocks.
    conv_filters:
        Number of filters in each convolutional layer.
    dense_units:
        Width of the fully connected layer before the output node.
    kernel_size:
        Convolution kernel size.
    pool_size:
        Max-pooling window (and stride).
    """

    conv_layers: int
    conv_filters: int
    dense_units: int
    kernel_size: int = 3
    pool_size: int = 2

    def __post_init__(self) -> None:
        if self.conv_layers < 1:
            raise ValueError("need at least one convolutional layer")
        if self.conv_filters < 1 or self.dense_units < 1:
            raise ValueError("layer widths must be positive")
        if self.kernel_size < 1 or self.pool_size < 1:
            raise ValueError("kernel and pool sizes must be positive")

    @property
    def name(self) -> str:
        """Stable identifier, e.g. ``c2f16d32``."""
        return f"c{self.conv_layers}f{self.conv_filters}d{self.dense_units}"

    def min_input_resolution(self) -> int:
        """Smallest square input for which every pooling stage is non-empty."""
        return self.pool_size ** self.conv_layers

    def fits_input(self, resolution: int) -> bool:
        """Whether an input of the given resolution survives all pooling stages."""
        size = resolution
        for _ in range(self.conv_layers):
            size = size // self.pool_size
            if size < 1:
                return False
        return True

    def build(self, input_shape: tuple[int, int, int],
              rng: np.random.Generator | None = None) -> Sequential:
        """Instantiate a :class:`~repro.nn.network.Sequential` for this spec."""
        height, width, channels = input_shape
        if height != width:
            raise ValueError("only square inputs are supported")
        if not self.fits_input(height):
            raise ValueError(
                f"input resolution {height} too small for {self.conv_layers} "
                f"pooling stages of size {self.pool_size}")
        rng = rng or np.random.default_rng(0)

        layers = []
        in_channels = channels
        size = height
        for _ in range(self.conv_layers):
            layers.append(Conv2D(in_channels, self.conv_filters,
                                 kernel_size=self.kernel_size,
                                 padding="same", rng=rng))
            layers.append(ReLU())
            layers.append(MaxPool2D(self.pool_size))
            in_channels = self.conv_filters
            size = size // self.pool_size

        layers.append(Flatten())
        flat_features = size * size * in_channels
        layers.append(Dense(flat_features, self.dense_units, rng=rng))
        layers.append(ReLU())
        layers.append(Dense(self.dense_units, 1, rng=rng))
        layers.append(Sigmoid())
        return Sequential(layers, input_shape=input_shape)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class ModelSpec:
    """One point in the design space: an architecture plus an input representation."""

    architecture: ArchitectureSpec
    transform: TransformSpec

    @property
    def name(self) -> str:
        """Stable identifier combining both components."""
        return f"{self.architecture.name}-{self.transform.name}"

    @property
    def input_shape(self) -> tuple[int, int, int]:
        return self.transform.shape

    def is_valid(self) -> bool:
        """Whether the architecture fits the representation's resolution."""
        return self.architecture.fits_input(self.transform.resolution)

    def build(self, rng: np.random.Generator | None = None) -> Sequential:
        """Instantiate the untrained network for this model spec."""
        return self.architecture.build(self.input_shape, rng=rng)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def standard_architecture_grid(
        conv_layers: tuple[int, ...] = PAPER_CONV_LAYERS,
        conv_filters: tuple[int, ...] = PAPER_CONV_FILTERS,
        dense_units: tuple[int, ...] = PAPER_DENSE_UNITS) -> list[ArchitectureSpec]:
    """The paper's architecture grid: 3 x 2 x 3 = 18 specifications by default."""
    if not conv_layers or not conv_filters or not dense_units:
        raise ValueError("all hyperparameter tuples must be non-empty")
    return [ArchitectureSpec(layers, filters, units)
            for layers in conv_layers
            for filters in conv_filters
            for units in dense_units]


def build_model_grid(architectures: list[ArchitectureSpec],
                     transforms: list[TransformSpec],
                     skip_invalid: bool = True) -> list[ModelSpec]:
    """Cross the architecture and transformation grids into model specs.

    Combinations whose architecture cannot pool the representation's small
    resolution are dropped when ``skip_invalid`` is True (the default) and
    raise otherwise.
    """
    if not architectures or not transforms:
        raise ValueError("architectures and transforms must be non-empty")
    specs = []
    for architecture in architectures:
        for transform in transforms:
            spec = ModelSpec(architecture=architecture, transform=transform)
            if spec.is_valid():
                specs.append(spec)
            elif not skip_invalid:
                raise ValueError(f"architecture {architecture.name} does not fit "
                                 f"representation {transform.name}")
    return specs
