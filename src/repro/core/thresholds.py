"""Decision-threshold calibration (paper Section V-C).

Each basic model gets a pair of thresholds ``(p_low, p_high)``.  A probability
at or below ``p_low`` is a confident negative, at or above ``p_high`` a
confident positive; anything in between is *uncertain* and falls through to
the next cascade level.  Thresholds are chosen per model, independently of any
cascade, by a grid search that requires the precision of confident decisions
to meet a target while maximizing how many examples are decided confidently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionThresholds", "ThresholdCalibration", "calibrate_thresholds",
           "PAPER_PRECISION_TARGETS"]

#: The five precision settings used in the paper's experiments.
PAPER_PRECISION_TARGETS = (0.91, 0.93, 0.95, 0.97, 0.99)


@dataclass(frozen=True)
class DecisionThresholds:
    """A calibrated ``(p_low, p_high)`` pair and the target it was tuned for."""

    p_low: float
    p_high: float
    precision_target: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_low <= self.p_high <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= p_low <= p_high <= 1")
        if not 0.0 < self.precision_target <= 1.0:
            raise ValueError("precision_target must be in (0, 1]")

    def confident_mask(self, probabilities: np.ndarray) -> np.ndarray:
        """Boolean mask of examples decided confidently at this level."""
        probabilities = np.asarray(probabilities)
        return (probabilities <= self.p_low) | (probabilities >= self.p_high)

    def decide(self, probabilities: np.ndarray) -> np.ndarray:
        """Hard labels for the confident examples (undefined where uncertain)."""
        return (np.asarray(probabilities) >= self.p_high).astype(np.int64)


@dataclass(frozen=True)
class ThresholdCalibration:
    """The chosen thresholds plus the statistics observed during calibration."""

    thresholds: DecisionThresholds
    coverage: float
    positive_precision: float
    negative_precision: float
    feasible: bool


def _precision(predicted_positive: np.ndarray, labels: np.ndarray) -> float:
    """Precision of the predicted-positive set; 1.0 when the set is empty."""
    count = int(predicted_positive.sum())
    if count == 0:
        return 1.0
    return float(labels[predicted_positive].mean())


def calibrate_thresholds(probabilities: np.ndarray, labels: np.ndarray,
                         precision_target: float = 0.95,
                         grid_size: int = 25) -> ThresholdCalibration:
    """Grid-search ``(p_low, p_high)`` for one model.

    Parameters
    ----------
    probabilities:
        Model outputs on the configuration set.
    labels:
        Ground-truth binary labels for the configuration set.
    precision_target:
        Required precision of confident decisions, applied to both the
        confident-positive side and the confident-negative side.
    grid_size:
        Number of candidate values per threshold, taken from the quantiles of
        the observed probabilities (plus the 0/0.5/1 anchors).

    Returns
    -------
    ThresholdCalibration
        The feasible pair maximizing coverage (the fraction of examples
        decided confidently).  When no pair meets the target the degenerate
        pair ``(0.5, 0.5)`` — every example decided, used only as a cascade's
        final level — is returned with ``feasible=False``.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.int64).ravel()
    if probabilities.shape != labels.shape:
        raise ValueError("probabilities and labels must have the same length")
    if probabilities.size == 0:
        raise ValueError("cannot calibrate thresholds on an empty set")
    if not 0.0 < precision_target <= 1.0:
        raise ValueError("precision_target must be in (0, 1]")
    if grid_size < 2:
        raise ValueError("grid_size must be at least 2")

    quantiles = np.quantile(probabilities, np.linspace(0.0, 1.0, grid_size))
    candidates = np.unique(np.concatenate([quantiles, [0.0, 0.5, 1.0]]))
    low_candidates = candidates[candidates <= 0.5]
    high_candidates = candidates[candidates >= 0.5]

    best: ThresholdCalibration | None = None
    for p_low in low_candidates:
        negative_mask = probabilities <= p_low
        negative_precision = _precision(negative_mask, 1 - labels)
        if negative_precision < precision_target:
            # Raising p_low only admits more (noisier) negatives, but a
            # *smaller* p_low may still work, so keep scanning.
            continue
        for p_high in high_candidates:
            positive_mask = probabilities >= p_high
            positive_precision = _precision(positive_mask, labels)
            if positive_precision < precision_target:
                continue
            coverage = float((negative_mask | positive_mask).mean())
            if coverage == 0.0:
                # A pair that never decides anything is useless as a cascade
                # level; treat it as infeasible rather than "trivially precise".
                continue
            thresholds = DecisionThresholds(float(p_low), float(p_high),
                                            precision_target)
            candidate = ThresholdCalibration(
                thresholds=thresholds, coverage=coverage,
                positive_precision=positive_precision,
                negative_precision=negative_precision, feasible=True)
            if best is None or candidate.coverage > best.coverage:
                best = candidate

    if best is not None:
        return best

    fallback = DecisionThresholds(0.5, 0.5, precision_target)
    confident = fallback.confident_mask(probabilities)
    predictions = fallback.decide(probabilities)
    accuracy = float((predictions == labels).mean())
    return ThresholdCalibration(
        thresholds=fallback, coverage=float(confident.mean()),
        positive_precision=accuracy, negative_precision=accuracy,
        feasible=False)
