"""Model trainer: fits every model in the design space for one predicate."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import TrainedModel
from repro.core.spec import ModelSpec
from repro.data.augment import augment_with_flips
from repro.data.corpus import LabeledDataset
from repro.nn.optimizers import Adam
from repro.nn.train import EarlyStopping, evaluate_accuracy, fit
from repro.storage.store import RepresentationStore

__all__ = ["TrainingConfig", "ModelTrainer"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters shared by every specialized model's training run.

    The defaults are sized for the reduced CPU-scale benchmarks; the paper's
    GPU-scale settings simply raise ``epochs`` and the dataset sizes.
    """

    epochs: int = 6
    batch_size: int = 32
    learning_rate: float = 0.002
    augment: bool = True
    early_stopping_patience: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


class ModelTrainer:
    """Trains the set ``M`` of basic models for one binary predicate.

    A shared :class:`~repro.storage.store.RepresentationStore` caches each
    physical representation of the training set, so models that share a
    representation do not re-transform the images.
    """

    def __init__(self, config: TrainingConfig | None = None) -> None:
        self.config = config or TrainingConfig()

    def train_model(self, spec: ModelSpec, train_set: LabeledDataset,
                    store: RepresentationStore,
                    validation_set: LabeledDataset | None = None,
                    rng: np.random.Generator | None = None) -> TrainedModel:
        """Train one model spec and wrap it as a :class:`TrainedModel`."""
        rng = rng or np.random.default_rng(self.config.seed)
        network = spec.build(rng=rng)

        train_images = store.get_or_transform(spec.transform, train_set.images)
        train_labels = train_set.labels
        x_val = y_val = None
        early_stopping = None
        if validation_set is not None and len(validation_set) > 0:
            x_val = spec.transform.apply_batch(validation_set.images)
            y_val = validation_set.labels
            if self.config.early_stopping_patience is not None:
                early_stopping = EarlyStopping(
                    patience=self.config.early_stopping_patience)

        fit(network, train_images, train_labels,
            x_val=x_val, y_val=y_val,
            epochs=self.config.epochs, batch_size=self.config.batch_size,
            optimizer=Adam(learning_rate=self.config.learning_rate),
            early_stopping=early_stopping, rng=rng)

        train_accuracy = evaluate_accuracy(network, train_images, train_labels)
        return TrainedModel(name=spec.name, network=network,
                            transform=spec.transform,
                            architecture=spec.architecture,
                            kind="specialized",
                            train_accuracy=train_accuracy)

    def train_models(self, specs: list[ModelSpec], train_set: LabeledDataset,
                     validation_set: LabeledDataset | None = None,
                     rng: np.random.Generator | None = None
                     ) -> list[TrainedModel]:
        """Train every model spec on (an optionally augmented copy of) ``train_set``."""
        if not specs:
            raise ValueError("specs must be non-empty")
        if len(train_set) == 0:
            raise ValueError("training set is empty")
        rng = rng or np.random.default_rng(self.config.seed)

        dataset = train_set
        if self.config.augment:
            dataset = augment_with_flips(train_set, rng=rng)

        store = RepresentationStore()
        models = []
        for spec in specs:
            models.append(self.train_model(spec, dataset, store,
                                           validation_set=validation_set,
                                           rng=rng))
        return models
