"""Deployment-scenario cost model.

The paper's central observation is that query throughput is governed by

    ``t_classify = t_load + t_transform + t_infer``

and that the three terms depend on *where* the system runs (Section VI).  This
package provides:

* :class:`~repro.costs.device.DeviceProfile` — the compute device (effective
  FLOP rate, per-pixel transform cost, fixed per-inference overhead),
* :class:`~repro.costs.scenario.Scenario` — which cost terms a deployment
  scenario pays and from which storage tier bytes are loaded, with the paper's
  four scenarios as presets (INFER_ONLY, ARCHIVE, ONGOING, CAMERA), and
* :class:`~repro.costs.profiler.CostProfiler` — turns a model (or a cascade's
  expected execution) into a :class:`~repro.costs.profiler.CostBreakdown`,
  analytically from FLOPs/bytes or measured with wall-clock timing.
"""

from repro.costs.device import (
    DEFAULT_DEVICE,
    SERVER_CPU,
    SERVER_GPU,
    DeviceProfile,
    calibrate_device,
)
from repro.costs.profiler import CostBreakdown, CostProfiler, measure_inference_time
from repro.costs.scenario import (
    ARCHIVE,
    CAMERA,
    INFER_ONLY,
    ONGOING,
    PAPER_SCENARIOS,
    Scenario,
    get_scenario,
)

__all__ = [
    "DeviceProfile",
    "SERVER_GPU",
    "SERVER_CPU",
    "DEFAULT_DEVICE",
    "calibrate_device",
    "Scenario",
    "INFER_ONLY",
    "ARCHIVE",
    "ONGOING",
    "CAMERA",
    "PAPER_SCENARIOS",
    "get_scenario",
    "CostBreakdown",
    "CostProfiler",
    "measure_inference_time",
]
