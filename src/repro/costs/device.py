"""Compute-device profiles used by the analytic cost model."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceProfile", "SERVER_GPU", "SERVER_CPU", "DEFAULT_DEVICE",
           "calibrate_device"]


@dataclass(frozen=True)
class DeviceProfile:
    """Performance characteristics of the machine executing classifiers.

    Parameters
    ----------
    name:
        Profile name.
    flops_per_second:
        Effective sustained multiply-accumulate rate for CNN inference.  This
        is an *effective* rate (it folds in framework overheads), which is why
        it is far below a device's peak figure.
    transform_seconds_per_value:
        Cost of the image-transformation stage per scalar value touched
        (source pixels read plus destination values written).
    inference_overhead_s:
        Fixed per-image inference overhead (kernel launch / framework
        dispatch), independent of model size.
    """

    name: str
    flops_per_second: float
    transform_seconds_per_value: float = 2.0e-9
    inference_overhead_s: float = 2.0e-5

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")
        if self.transform_seconds_per_value < 0:
            raise ValueError("transform_seconds_per_value must be non-negative")
        if self.inference_overhead_s < 0:
            raise ValueError("inference_overhead_s must be non-negative")

    def inference_time(self, flops: int | float) -> float:
        """Seconds to run one inference of a model with the given FLOP count."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return self.inference_overhead_s + float(flops) / self.flops_per_second

    def transform_time(self, values_touched: int | float) -> float:
        """Seconds to run a transformation touching ``values_touched`` scalars."""
        if values_touched < 0:
            raise ValueError("values_touched must be non-negative")
        return float(values_touched) * self.transform_seconds_per_value


#: A datacenter GPU profile, loosely calibrated to the paper's K80 numbers
#: (a ResNet50-class model lands near 75 inferences per second).
SERVER_GPU = DeviceProfile(
    name="server-gpu",
    flops_per_second=3.0e11,
    transform_seconds_per_value=1.5e-9,
    inference_overhead_s=3.0e-5,
)

#: A server CPU profile, roughly 30x slower at dense inference.
SERVER_CPU = DeviceProfile(
    name="server-cpu",
    flops_per_second=1.0e10,
    transform_seconds_per_value=1.0e-9,
    inference_overhead_s=5.0e-6,
)

DEFAULT_DEVICE = SERVER_GPU


def calibrate_device(device: DeviceProfile, reference_flops: int | float,
                     target_fps: float = 75.0) -> DeviceProfile:
    """Rescale ``device`` so a reference model lands at ``target_fps``.

    The paper reports its fine-tuned ResNet50 at roughly 75 frames per second
    under INFER ONLY.  Our stand-in reference network has a different absolute
    FLOP count, so the benchmarks calibrate the device rate such that the
    reference classifier's analytic inference time matches the paper's anchor
    point; every other model is then priced on the same scale.
    """
    if reference_flops <= 0:
        raise ValueError("reference_flops must be positive")
    if target_fps <= 0:
        raise ValueError("target_fps must be positive")
    target_time = 1.0 / target_fps
    compute_time = target_time - device.inference_overhead_s
    if compute_time <= 0:
        raise ValueError("target_fps too high for the device's fixed overhead")
    return replace(device, flops_per_second=float(reference_flops) / compute_time)
