"""Cost profiling: per-model and per-representation cost breakdowns.

The profiler prices the three terms of the paper's cost equation

    ``t_classify = t_load + t_transform + t_infer``

for a given :class:`~repro.costs.device.DeviceProfile` and
:class:`~repro.costs.scenario.Scenario`.  Costs are analytic by default
(FLOPs / device rate, bytes / tier bandwidth, values touched x per-value
transform cost); :func:`measure_inference_time` provides the wall-clock
alternative for real deployments of the NumPy models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.costs.device import DEFAULT_DEVICE, DeviceProfile
from repro.costs.scenario import INFER_ONLY, Scenario
from repro.storage.encoding import encoded_bytes, raw_bytes
from repro.transforms.spec import TransformSpec

__all__ = ["CostBreakdown", "CostProfiler", "measure_inference_time"]


@dataclass(frozen=True)
class CostBreakdown:
    """Per-image cost of classifying with one model (or one cascade level)."""

    load_s: float = 0.0
    transform_s: float = 0.0
    infer_s: float = 0.0

    def __post_init__(self) -> None:
        if min(self.load_s, self.transform_s, self.infer_s) < 0:
            raise ValueError("cost components must be non-negative")

    @property
    def total_s(self) -> float:
        """Total per-image classification time in seconds."""
        return self.load_s + self.transform_s + self.infer_s

    @property
    def throughput_fps(self) -> float:
        """Images classified per second (the reciprocal of the total time)."""
        if self.total_s == 0:
            return float("inf")
        return 1.0 / self.total_s

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(self.load_s + other.load_s,
                             self.transform_s + other.transform_s,
                             self.infer_s + other.infer_s)

    def scaled(self, factor: float) -> "CostBreakdown":
        """A breakdown with every component multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return CostBreakdown(self.load_s * factor, self.transform_s * factor,
                             self.infer_s * factor)


class CostProfiler:
    """Prices loads, transforms and inferences for one deployment scenario.

    Parameters
    ----------
    device:
        Compute-device profile.
    scenario:
        Deployment scenario (which cost terms apply and from where bytes load).
    source_resolution:
        Side length of the full-size source images in the corpus.
    source_channels:
        Channels of the source images (3 for the RGB corpora used here).
    cost_resolution:
        Optional resolution at which data-handling costs are priced.  The
        reproduction renders corpora at a reduced size (e.g. 32 px) to keep
        CPU training tractable, but a real deployment handles full camera
        frames; setting ``cost_resolution=224`` prices loads and transforms as
        if every representation kept its *relative* size but the source were
        224 px, which preserves the paper's data-handling/inference balance.
        Defaults to ``source_resolution`` (no rescaling).
    """

    def __init__(self, device: DeviceProfile = DEFAULT_DEVICE,
                 scenario: Scenario = INFER_ONLY,
                 source_resolution: int = 224,
                 source_channels: int = 3,
                 cost_resolution: int | None = None) -> None:
        if source_resolution <= 0 or source_channels <= 0:
            raise ValueError("source dimensions must be positive")
        if cost_resolution is not None and cost_resolution <= 0:
            raise ValueError("cost_resolution must be positive")
        self.device = device
        self.scenario = scenario
        self.source_resolution = source_resolution
        self.source_channels = source_channels
        self.cost_resolution = (cost_resolution if cost_resolution is not None
                                else source_resolution)

    # -- individual cost terms ------------------------------------------------
    @property
    def _area_scale(self) -> float:
        """Factor applied to pixel/byte counts when pricing data handling."""
        ratio = self.cost_resolution / self.source_resolution
        return ratio * ratio

    def source_values(self) -> int:
        """Number of scalar values in one full-size source image."""
        return self.source_resolution * self.source_resolution * self.source_channels

    def load_time(self, spec: TransformSpec) -> float:
        """Seconds to load the bytes a classifier with input ``spec`` needs."""
        if not self.scenario.include_load:
            return 0.0
        if self.scenario.load_full_image:
            height = width = self.source_resolution
            channels = self.source_channels
        else:
            height, width, channels = spec.shape
        if self.scenario.compressed:
            num_bytes = encoded_bytes(height, width, channels)
        else:
            num_bytes = raw_bytes(height, width, channels)
        return self.scenario.load_tier.read_time(
            int(round(num_bytes * self._area_scale)))

    def transform_time(self, spec: TransformSpec) -> float:
        """Seconds to produce the representation ``spec`` from the source image."""
        if not self.scenario.include_transform:
            return 0.0
        is_identity = (spec.resolution == self.source_resolution
                       and spec.color_mode == "rgb")
        if is_identity:
            return 0.0
        values_touched = (self.source_values() + spec.num_values) * self._area_scale
        return self.device.transform_time(values_touched)

    def infer_time(self, flops: int | float) -> float:
        """Seconds of model inference for a model of the given FLOP count."""
        return self.device.inference_time(flops)

    # -- aggregate -------------------------------------------------------------
    def data_handling_cost(self, spec: TransformSpec) -> CostBreakdown:
        """Load + transform cost of materializing ``spec`` for one image."""
        return CostBreakdown(load_s=self.load_time(spec),
                             transform_s=self.transform_time(spec))

    def model_cost(self, flops: int | float, spec: TransformSpec) -> CostBreakdown:
        """Full per-image cost of one model: load + transform + infer."""
        handling = self.data_handling_cost(spec)
        return CostBreakdown(load_s=handling.load_s,
                             transform_s=handling.transform_s,
                             infer_s=self.infer_time(flops))

    def with_scenario(self, scenario: Scenario) -> "CostProfiler":
        """A profiler identical to this one but under a different scenario."""
        return CostProfiler(device=self.device, scenario=scenario,
                            source_resolution=self.source_resolution,
                            source_channels=self.source_channels,
                            cost_resolution=self.cost_resolution)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CostProfiler(device={self.device.name!r}, "
                f"scenario={self.scenario.name!r}, "
                f"source={self.source_resolution}px)")


def measure_inference_time(network, images: np.ndarray, repeats: int = 3,
                           batch_size: int = 64) -> float:
    """Wall-clock seconds per image for ``network`` on ``images``.

    Used when the library is deployed as a real profiler rather than with the
    analytic cost model; the median over ``repeats`` runs is returned to damp
    scheduler noise.
    """
    if images.shape[0] == 0:
        raise ValueError("need at least one image to measure")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        network.predict(images, batch_size=batch_size)
        timings.append(time.perf_counter() - start)
    return float(np.median(timings) / images.shape[0])
