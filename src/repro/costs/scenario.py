"""Deployment scenarios (paper Sections III and VII-A)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.tiers import MEMORY, SSD, StorageTier

__all__ = ["Scenario", "INFER_ONLY", "ARCHIVE", "ONGOING", "CAMERA",
           "PAPER_SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class Scenario:
    """Which cost terms a deployment pays, and from where bytes are loaded.

    Parameters
    ----------
    name:
        Scenario name.
    include_load:
        Whether image bytes must be loaded from ``load_tier`` at query time.
    include_transform:
        Whether the input transformation must be computed at query time.
    load_full_image:
        If True (ARCHIVE), the *full-size* source image is loaded and then
        transformed; if False and ``include_load`` (ONGOING), only the bytes
        of the already-materialized target representation are loaded.
    load_tier:
        Storage tier the bytes come from.
    compressed:
        Whether stored images are in a compressed encoding (affects bytes
        loaded, plus a decode pass counted as a transform touching every
        source value).
    description:
        One-line description used in reports.
    """

    name: str
    include_load: bool
    include_transform: bool
    load_full_image: bool = True
    load_tier: StorageTier = SSD
    compressed: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")

    @property
    def materializes_on_ingest(self) -> bool:
        """Whether this deployment transforms frames at ingest time.

        True exactly when query time loads pre-built representation bytes
        (ONGOING): no transform is paid at query time, yet bytes are loaded
        at representation (not source) size — so the representations must
        already exist on the tier, i.e. they were built when the frames
        arrived.
        """
        return (self.include_load and not self.include_transform
                and not self.load_full_image)


#: Only CNN inference time counts (the computer-vision-literature convention).
INFER_ONLY = Scenario(
    name="infer_only", include_load=False, include_transform=False,
    load_full_image=False, load_tier=MEMORY,
    description="Inference cost only; data handling ignored.")

#: Full-size archived images on SSD: load full image, then transform.
ARCHIVE = Scenario(
    name="archive", include_load=True, include_transform=True,
    load_full_image=True, load_tier=SSD, compressed=False,
    description="Archived full-size images on SSD; load and transform at query time.")

#: Representations materialized on ingest; load only the representation bytes.
ONGOING = Scenario(
    name="ongoing", include_load=True, include_transform=False,
    load_full_image=False, load_tier=SSD,
    description="Pre-resized representations stored on SSD at ingest time.")

#: Frames arrive from a connected camera: transform only, no load cost.
CAMERA = Scenario(
    name="camera", include_load=False, include_transform=True,
    load_full_image=False, load_tier=MEMORY,
    description="Frames already in memory from the camera; transform at query time.")

#: The four scenarios evaluated in the paper, in its reporting order.
PAPER_SCENARIOS = (INFER_ONLY, ONGOING, CAMERA, ARCHIVE)

_SCENARIOS = {scenario.name: scenario for scenario in PAPER_SCENARIOS}


def get_scenario(name: str) -> Scenario:
    """Look up one of the paper's scenarios by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"available: {sorted(_SCENARIOS)}") from None
