"""Synthetic visual corpus generation.

The paper evaluates on ten ImageNet categories plus two NoScope video
datasets.  Neither is redistributable (nor usable offline), so this package
provides a parametric substitute:

* :mod:`repro.data.categories` — the ten Table II categories, each mapped to a
  procedural object renderer (shape, color signature, texture),
* :mod:`repro.data.synthesis` — the renderer that composites objects onto
  cluttered backgrounds,
* :mod:`repro.data.corpus` — labeled datasets and train/config/eval splits per
  binary predicate, plus a queryable image corpus with metadata,
* :mod:`repro.data.video` — temporally coherent synthetic video streams used
  for the NoScope comparison (Figure 8), and
* :mod:`repro.data.augment` — the horizontal-flip augmentation the paper uses.

The relevant behaviour preserved by the substitution: labels are exact, task
difficulty responds to resolution and color-channel reduction, and video
streams exhibit controllable frame-to-frame redundancy.
"""

from repro.data.augment import augment_with_flips
from repro.data.categories import (
    TABLE2_CATEGORIES,
    CategoryDef,
    get_category,
    list_category_names,
)
from repro.data.corpus import (
    ImageCorpus,
    LabeledDataset,
    PredicateDataSplits,
    build_predicate_dataset,
    build_predicate_splits,
    generate_corpus,
)
from repro.data.synthesis import render_image
from repro.data.video import (
    CORAL_PRESET,
    JACKSON_PRESET,
    VideoStream,
    VideoStreamConfig,
    generate_video_stream,
)

__all__ = [
    "CategoryDef",
    "TABLE2_CATEGORIES",
    "get_category",
    "list_category_names",
    "render_image",
    "LabeledDataset",
    "PredicateDataSplits",
    "ImageCorpus",
    "build_predicate_dataset",
    "build_predicate_splits",
    "generate_corpus",
    "augment_with_flips",
    "VideoStream",
    "VideoStreamConfig",
    "generate_video_stream",
    "CORAL_PRESET",
    "JACKSON_PRESET",
]
