"""Data augmentation.

The paper doubles each training set by adding a left-right flipped copy of
every image (Section VII-A).
"""

from __future__ import annotations

import numpy as np

from repro.data.corpus import LabeledDataset
from repro.transforms.ops import horizontal_flip

__all__ = ["augment_with_flips"]


def augment_with_flips(dataset: LabeledDataset,
                       rng: np.random.Generator | None = None) -> LabeledDataset:
    """Return a dataset twice the size containing each image and its mirror.

    If ``rng`` is provided the combined dataset is shuffled; otherwise the
    flipped copies are appended after the originals.
    """
    if len(dataset) == 0:
        return dataset
    flipped = LabeledDataset(horizontal_flip(dataset.images),
                             dataset.labels.copy())
    combined = dataset.concat(flipped)
    if rng is not None:
        combined = combined.shuffled(rng)
    return combined
