"""The ten binary-predicate categories (paper Table II).

Each category maps to a procedural renderer configuration: a base shape, a
color signature (so color-channel reduction matters), a texture frequency (so
resolution reduction matters) and a size range.  The ImageNet synset ids are
kept purely as provenance labels.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CategoryDef", "TABLE2_CATEGORIES", "get_category", "list_category_names"]

#: Shapes understood by :mod:`repro.data.synthesis`.
SHAPES = ("disk", "square", "triangle", "ring", "cross", "stripes",
          "diamond", "checker", "blob", "star")


@dataclass(frozen=True)
class CategoryDef:
    """Parameters of one procedural object category.

    Parameters
    ----------
    name:
        Category name (matches the paper's Table II predicate names).
    imagenet_id:
        The ImageNet synset id from Table II (provenance only).
    shape:
        Base geometric shape drawn for positive examples.
    color:
        RGB color signature of the object, values in [0, 1].
    texture_frequency:
        Spatial frequency of the texture modulating the object; higher values
        mean finer detail that is lost at low resolutions.
    size_range:
        (min, max) object radius as a fraction of the image size.
    """

    name: str
    imagenet_id: str
    shape: str
    color: tuple[float, float, float]
    texture_frequency: float
    size_range: tuple[float, float] = (0.18, 0.32)

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ValueError(f"unknown shape {self.shape!r}")
        if not all(0.0 <= c <= 1.0 for c in self.color):
            raise ValueError("color components must be in [0, 1]")
        if self.texture_frequency <= 0:
            raise ValueError("texture_frequency must be positive")
        low, high = self.size_range
        if not 0 < low <= high < 0.5:
            raise ValueError("size_range must satisfy 0 < low <= high < 0.5")


#: The ten categories of Table II, with procedural render parameters.
TABLE2_CATEGORIES: tuple[CategoryDef, ...] = (
    CategoryDef("acorn", "n12267677", "disk", (0.55, 0.35, 0.10), 6.0),
    CategoryDef("amphibian", "n02704792", "blob", (0.20, 0.55, 0.25), 4.0),
    CategoryDef("cloak", "n03045698", "triangle", (0.45, 0.15, 0.50), 3.0),
    CategoryDef("coho", "n02536864", "diamond", (0.70, 0.30, 0.30), 8.0),
    CategoryDef("fence", "n03930313", "stripes", (0.50, 0.45, 0.40), 10.0),
    CategoryDef("ferret", "n02443484", "blob", (0.60, 0.50, 0.35), 7.0),
    CategoryDef("komondor", "n02105505", "ring", (0.85, 0.82, 0.75), 9.0),
    CategoryDef("pinwheel", "n03944341", "star", (0.20, 0.40, 0.80), 5.0),
    CategoryDef("scorpion", "n01770393", "cross", (0.35, 0.25, 0.15), 6.0),
    CategoryDef("wallet", "n04548362", "square", (0.30, 0.20, 0.10), 4.0),
)

_BY_NAME = {category.name: category for category in TABLE2_CATEGORIES}


def get_category(name: str) -> CategoryDef:
    """Look up a category by name, raising ``KeyError`` with suggestions."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown category {name!r}; "
                       f"available: {sorted(_BY_NAME)}") from None


def list_category_names() -> list[str]:
    """Names of all built-in categories, in Table II order."""
    return [category.name for category in TABLE2_CATEGORIES]
