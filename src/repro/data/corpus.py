"""Labeled datasets, per-predicate splits and a queryable image corpus."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.categories import TABLE2_CATEGORIES, CategoryDef
from repro.data.synthesis import render_image

__all__ = [
    "LabeledDataset",
    "PredicateDataSplits",
    "ImageCorpus",
    "build_predicate_dataset",
    "build_predicate_splits",
    "generate_corpus",
]


@dataclass
class LabeledDataset:
    """A set of images with binary labels.

    ``images`` has shape ``(n, size, size, 3)`` with values in [0, 1];
    ``labels`` has shape ``(n,)`` with values in {0, 1}.
    """

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64).ravel()
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels have different lengths")
        if self.images.ndim != 4:
            raise ValueError(
                f"images must be NHWC, got shape {self.images.shape}")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_size(self) -> int:
        return int(self.images.shape[1])

    @property
    def positive_fraction(self) -> float:
        if len(self) == 0:
            return float("nan")
        return float(self.labels.mean())

    def subset(self, indices: np.ndarray) -> "LabeledDataset":
        """A new dataset containing only the given indices."""
        indices = np.asarray(indices)
        return LabeledDataset(self.images[indices], self.labels[indices])

    def shuffled(self, rng: np.random.Generator) -> "LabeledDataset":
        """A copy with examples in random order."""
        order = rng.permutation(len(self))
        return self.subset(order)

    def concat(self, other: "LabeledDataset") -> "LabeledDataset":
        """Concatenate two datasets (images must share shape)."""
        if other.images.shape[1:] != self.images.shape[1:]:
            raise ValueError("cannot concatenate datasets of different image shapes")
        return LabeledDataset(
            np.concatenate([self.images, other.images], axis=0),
            np.concatenate([self.labels, other.labels], axis=0))

    def split(self, fractions: tuple[float, ...],
              rng: np.random.Generator) -> list["LabeledDataset"]:
        """Random split into ``len(fractions)`` parts with the given fractions."""
        if not np.isclose(sum(fractions), 1.0):
            raise ValueError("fractions must sum to 1")
        order = rng.permutation(len(self))
        sizes = [int(round(f * len(self))) for f in fractions[:-1]]
        sizes.append(len(self) - sum(sizes))
        parts, start = [], 0
        for size in sizes:
            parts.append(self.subset(order[start:start + size]))
            start += size
        return parts


@dataclass
class PredicateDataSplits:
    """The paper's three per-predicate datasets.

    * ``train`` — used to fit each candidate model,
    * ``config`` — used to calibrate per-model decision thresholds,
    * ``eval`` — used to measure cascade accuracy (held out from both).
    """

    train: LabeledDataset
    config: LabeledDataset
    eval: LabeledDataset

    def sizes(self) -> tuple[int, int, int]:
        return (len(self.train), len(self.config), len(self.eval))


def build_predicate_dataset(category: CategoryDef, n_positive: int,
                            n_negative: int, image_size: int,
                            rng: np.random.Generator,
                            distractors: tuple[CategoryDef, ...] | None = None
                            ) -> LabeledDataset:
    """Render a balanced labeled dataset for one binary predicate."""
    if n_positive < 0 or n_negative < 0:
        raise ValueError("example counts must be non-negative")
    distractors = distractors if distractors is not None else TABLE2_CATEGORIES
    images, labels = [], []
    for _ in range(n_positive):
        images.append(render_image(category, image_size, True, rng, distractors))
        labels.append(1)
    for _ in range(n_negative):
        images.append(render_image(category, image_size, False, rng, distractors))
        labels.append(0)
    if not images:
        return LabeledDataset(np.zeros((0, image_size, image_size, 3)),
                              np.zeros((0,), dtype=np.int64))
    dataset = LabeledDataset(np.stack(images), np.asarray(labels))
    return dataset.shuffled(rng)


def build_predicate_splits(category: CategoryDef, *, n_train: int = 240,
                           n_config: int = 120, n_eval: int = 120,
                           image_size: int = 64,
                           rng: np.random.Generator | None = None,
                           distractors: tuple[CategoryDef, ...] | None = None
                           ) -> PredicateDataSplits:
    """Render the train/config/eval splits for one binary predicate.

    Counts are per split and are rendered balanced (half positive examples).
    Defaults are scaled down from the paper's 3,000-4,000 labeled images so
    the full pipeline runs on CPU; all counts are parameters.
    """
    rng = rng or np.random.default_rng(0)

    def balanced(total: int) -> LabeledDataset:
        n_pos = total // 2
        return build_predicate_dataset(category, n_pos, total - n_pos,
                                       image_size, rng, distractors)

    return PredicateDataSplits(train=balanced(n_train),
                               config=balanced(n_config),
                               eval=balanced(n_eval))


@dataclass
class ImageCorpus:
    """A queryable corpus: images plus metadata plus ground-truth content tuples.

    This is the object the query engine (:mod:`repro.query`) operates over.
    ``content`` maps category name to a boolean presence vector; the query
    engine never reads it (it exists to check query results in tests and
    experiments).
    """

    images: np.ndarray
    metadata: dict[str, np.ndarray]
    content: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        n = self.images.shape[0]
        # Coerce and *store* the arrays: list-valued columns must not survive
        # into persistence or append paths as Python lists.
        self.metadata = {key: self._column(key, values, n, "metadata")
                         for key, values in self.metadata.items()}
        self.content = {key: self._column(key, values, n, "content")
                        for key, values in self.content.items()}

    @staticmethod
    def _column(key: str, values, n: int, kind: str) -> np.ndarray:
        array = np.asarray(values)
        if array.shape[0] != n:
            raise ValueError(f"{kind} column {key!r} has wrong length")
        return array

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_size(self) -> int:
        return int(self.images.shape[1])

    def append(self, images: np.ndarray,
               metadata: dict[str, np.ndarray] | None = None,
               content: dict[str, np.ndarray] | None = None) -> np.ndarray:
        """Append new rows in place, returning the new rows' image ids.

        This is the corpus half of streaming ingest: ``images`` is an NHWC
        batch with the same frame shape as the corpus, ``metadata`` must
        provide exactly the existing metadata columns, and ``content``
        (ground truth, optional) may provide any subset of the existing
        content columns — missing ones are padded with ``False`` for the new
        rows, mirroring frames whose ground truth is unknown.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4:
            raise ValueError(f"images must be NHWC, got shape {images.shape}")
        if images.shape[1:] != self.images.shape[1:]:
            raise ValueError(
                f"appended frame shape {images.shape[1:]} does not match "
                f"corpus frame shape {self.images.shape[1:]}")
        n_new = images.shape[0]

        metadata = metadata or {}
        if set(metadata) != set(self.metadata):
            raise ValueError(
                f"metadata columns {sorted(metadata)} do not match corpus "
                f"columns {sorted(self.metadata)}")
        new_metadata = {key: self._column(key, values, n_new, "metadata")
                        for key, values in metadata.items()}

        content = content or {}
        unknown = set(content) - set(self.content)
        if unknown:
            raise ValueError(f"unknown content columns {sorted(unknown)}; "
                             f"corpus has {sorted(self.content)}")
        new_content = {}
        for key, existing in self.content.items():
            if key in content:
                new_content[key] = self._column(key, content[key], n_new,
                                                "content")
            else:
                new_content[key] = np.zeros(n_new, dtype=existing.dtype)

        n_old = len(self)
        self.images = np.concatenate([self.images, images], axis=0)
        self.metadata = {key: np.concatenate([values, new_metadata[key]])
                         for key, values in self.metadata.items()}
        self.content = {key: np.concatenate([values, new_content[key]])
                        for key, values in self.content.items()}
        return np.arange(n_old, n_old + n_new)

    def drop_oldest(self, n: int) -> int:
        """Drop the ``n`` oldest (front) rows in place; returns rows dropped.

        This is the corpus half of retention windows: a streaming table is a
        sliding window over its feed, so eviction always takes the front.
        The surviving arrays are copied, not sliced — a view would pin the
        dropped rows' memory, defeating the point of retention.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        n = min(int(n), len(self))
        if n == 0:
            return 0
        self.images = self.images[n:].copy()
        self.metadata = {key: values[n:].copy()
                         for key, values in self.metadata.items()}
        self.content = {key: values[n:].copy()
                        for key, values in self.content.items()}
        return n


def generate_corpus(categories: tuple[CategoryDef, ...], n_images: int,
                    image_size: int, rng: np.random.Generator | None = None,
                    locations: tuple[str, ...] = ("detroit", "seattle", "austin"),
                    positive_rate: float = 0.35) -> ImageCorpus:
    """Generate a mixed corpus where each image may contain several categories.

    Each image independently contains each category with probability
    ``positive_rate / len(categories)`` scaled so the expected number of
    object-bearing images stays moderate; metadata columns ``location`` and
    ``timestamp`` are attached for metadata-predicate queries.
    """
    if n_images <= 0:
        raise ValueError("n_images must be positive")
    if not categories:
        raise ValueError("categories must be non-empty")
    rng = rng or np.random.default_rng(0)

    images = np.zeros((n_images, image_size, image_size, 3), dtype=np.float64)
    content = {category.name: np.zeros(n_images, dtype=bool)
               for category in categories}
    per_category_rate = min(1.0, positive_rate)

    from repro.data.synthesis import render_background, render_object

    for index in range(n_images):
        image = render_background(image_size, rng)
        for category in categories:
            if rng.random() < per_category_rate / len(categories):
                image = render_object(image, category, rng)
                content[category.name][index] = True
        images[index] = image

    metadata = {
        "location": np.array([locations[rng.integers(0, len(locations))]
                              for _ in range(n_images)]),
        "timestamp": np.sort(rng.uniform(0, 86_400, size=n_images)),
        "camera_id": rng.integers(0, 8, size=n_images),
    }
    return ImageCorpus(images=images, metadata=metadata, content=content)
