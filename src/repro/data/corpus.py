"""Labeled datasets, per-predicate splits and a queryable image corpus."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.categories import TABLE2_CATEGORIES, CategoryDef
from repro.data.synthesis import render_image

__all__ = [
    "LabeledDataset",
    "PredicateDataSplits",
    "CorpusSegment",
    "ImageCorpus",
    "build_predicate_dataset",
    "build_predicate_splits",
    "generate_corpus",
]


@dataclass
class LabeledDataset:
    """A set of images with binary labels.

    ``images`` has shape ``(n, size, size, 3)`` with values in [0, 1];
    ``labels`` has shape ``(n,)`` with values in {0, 1}.
    """

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64).ravel()
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels have different lengths")
        if self.images.ndim != 4:
            raise ValueError(
                f"images must be NHWC, got shape {self.images.shape}")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_size(self) -> int:
        return int(self.images.shape[1])

    @property
    def positive_fraction(self) -> float:
        if len(self) == 0:
            return float("nan")
        return float(self.labels.mean())

    def subset(self, indices: np.ndarray) -> "LabeledDataset":
        """A new dataset containing only the given indices."""
        indices = np.asarray(indices)
        return LabeledDataset(self.images[indices], self.labels[indices])

    def shuffled(self, rng: np.random.Generator) -> "LabeledDataset":
        """A copy with examples in random order."""
        order = rng.permutation(len(self))
        return self.subset(order)

    def concat(self, other: "LabeledDataset") -> "LabeledDataset":
        """Concatenate two datasets (images must share shape)."""
        if other.images.shape[1:] != self.images.shape[1:]:
            raise ValueError("cannot concatenate datasets of different image shapes")
        return LabeledDataset(
            np.concatenate([self.images, other.images], axis=0),
            np.concatenate([self.labels, other.labels], axis=0))

    def split(self, fractions: tuple[float, ...],
              rng: np.random.Generator) -> list["LabeledDataset"]:
        """Random split into ``len(fractions)`` parts with the given fractions."""
        if not np.isclose(sum(fractions), 1.0):
            raise ValueError("fractions must sum to 1")
        order = rng.permutation(len(self))
        sizes = [int(round(f * len(self))) for f in fractions[:-1]]
        sizes.append(len(self) - sum(sizes))
        parts, start = [], 0
        for size in sizes:
            parts.append(self.subset(order[start:start + size]))
            start += size
        return parts


@dataclass
class PredicateDataSplits:
    """The paper's three per-predicate datasets.

    * ``train`` — used to fit each candidate model,
    * ``config`` — used to calibrate per-model decision thresholds,
    * ``eval`` — used to measure cascade accuracy (held out from both).
    """

    train: LabeledDataset
    config: LabeledDataset
    eval: LabeledDataset

    def sizes(self) -> tuple[int, int, int]:
        return (len(self.train), len(self.config), len(self.eval))


def build_predicate_dataset(category: CategoryDef, n_positive: int,
                            n_negative: int, image_size: int,
                            rng: np.random.Generator,
                            distractors: tuple[CategoryDef, ...] | None = None
                            ) -> LabeledDataset:
    """Render a balanced labeled dataset for one binary predicate."""
    if n_positive < 0 or n_negative < 0:
        raise ValueError("example counts must be non-negative")
    distractors = distractors if distractors is not None else TABLE2_CATEGORIES
    images, labels = [], []
    for _ in range(n_positive):
        images.append(render_image(category, image_size, True, rng, distractors))
        labels.append(1)
    for _ in range(n_negative):
        images.append(render_image(category, image_size, False, rng, distractors))
        labels.append(0)
    if not images:
        return LabeledDataset(np.zeros((0, image_size, image_size, 3)),
                              np.zeros((0,), dtype=np.int64))
    dataset = LabeledDataset(np.stack(images), np.asarray(labels))
    return dataset.shuffled(rng)


def build_predicate_splits(category: CategoryDef, *, n_train: int = 240,
                           n_config: int = 120, n_eval: int = 120,
                           image_size: int = 64,
                           rng: np.random.Generator | None = None,
                           distractors: tuple[CategoryDef, ...] | None = None
                           ) -> PredicateDataSplits:
    """Render the train/config/eval splits for one binary predicate.

    Counts are per split and are rendered balanced (half positive examples).
    Defaults are scaled down from the paper's 3,000-4,000 labeled images so
    the full pipeline runs on CPU; all counts are parameters.
    """
    rng = rng or np.random.default_rng(0)

    def balanced(total: int) -> LabeledDataset:
        n_pos = total // 2
        return build_predicate_dataset(category, n_pos, total - n_pos,
                                       image_size, rng, distractors)

    return PredicateDataSplits(train=balanced(n_train),
                               config=balanced(n_config),
                               eval=balanced(n_eval))


@dataclass(frozen=True)
class CorpusSegment:
    """One immutable run of corpus rows: images plus aligned columns.

    Segments are the storage unit of the streaming engine: every
    :meth:`ImageCorpus.append` creates one, retention drops whole ones from
    the front (splitting only the boundary segment), and the write-ahead log
    journals them as durable records.  A segment is never mutated after
    construction — readers holding a reference (a query snapshot, a pending
    WAL write) keep a consistent view while the corpus moves on.
    """

    images: np.ndarray
    metadata: dict[str, np.ndarray]
    content: dict[str, np.ndarray]

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @staticmethod
    def build(images, metadata, content) -> "CorpusSegment":
        """Coerce and validate raw arrays into a segment."""
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4:
            raise ValueError(f"images must be NHWC, got shape {images.shape}")
        n = images.shape[0]
        metadata = {key: _column(key, values, n, "metadata")
                    for key, values in (metadata or {}).items()}
        content = {key: _column(key, values, n, "content")
                   for key, values in (content or {}).items()}
        return CorpusSegment(images=images, metadata=metadata, content=content)

    def tail(self, start: int) -> "CorpusSegment":
        """A new segment holding rows ``start:`` (copied, never a view).

        Copies so the dropped front rows' memory is actually released —
        retention splitting a boundary segment must free bytes.
        """
        return CorpusSegment(
            images=self.images[start:].copy(),
            metadata={key: values[start:].copy()
                      for key, values in self.metadata.items()},
            content={key: values[start:].copy()
                     for key, values in self.content.items()})

    @staticmethod
    def merge(segments: list["CorpusSegment"]) -> "CorpusSegment":
        """Fold several adjacent segments into one (row order preserved)."""
        if len(segments) == 1:
            return segments[0]
        return CorpusSegment(
            images=np.concatenate([seg.images for seg in segments], axis=0),
            metadata={key: np.concatenate([seg.metadata[key]
                                           for seg in segments])
                      for key in segments[0].metadata},
            content={key: np.concatenate([seg.content[key]
                                          for seg in segments])
                     for key in segments[0].content})


def _column(key: str, values, n: int, kind: str) -> np.ndarray:
    array = np.asarray(values)
    if array.shape[0] != n:
        raise ValueError(f"{kind} column {key!r} has wrong length")
    return array


class ImageCorpus:
    """A queryable corpus: images plus metadata plus ground-truth content tuples.

    This is the object the query engine (:mod:`repro.query`) operates over.
    ``content`` maps category name to a boolean presence vector; the query
    engine never reads it (it exists to check query results in tests and
    experiments).

    Internally the corpus is an ordered list of immutable
    :class:`CorpusSegment` objects — every :meth:`append` adds one in O(batch)
    and :meth:`drop_oldest` pops whole segments from the front, so streaming
    ingest and retention never copy the surviving history.  The monolithic
    ``images`` / ``metadata`` / ``content`` views the query engine consumes
    are built lazily on first read (and the segment list collapses to the
    consolidated form, so memory is never held twice); :meth:`compact` folds
    segments explicitly.
    """

    def __init__(self, images: np.ndarray,
                 metadata: dict[str, np.ndarray] | None = None,
                 content: dict[str, np.ndarray] | None = None, *,
                 _segments: list[CorpusSegment] | None = None) -> None:
        if _segments is not None:
            if not _segments:
                raise ValueError("corpus needs at least one segment")
            self._segments = list(_segments)
        else:
            self._segments = [CorpusSegment.build(images, metadata or {},
                                                  content or {})]

    # -- consolidated views --------------------------------------------------
    def _consolidated(self) -> CorpusSegment:
        """The whole corpus as one segment (collapses the segment list).

        Collapsing (instead of caching alongside) keeps peak memory at one
        copy of the corpus; the segment structure only needs to survive
        between mutations and the next read, which is exactly when it saves
        the O(corpus) concatenations the old grow-in-place arrays paid on
        every append.
        """
        if len(self._segments) > 1:
            self._segments = [CorpusSegment.merge(self._segments)]
        return self._segments[0]

    @property
    def images(self) -> np.ndarray:
        return self._consolidated().images

    @property
    def metadata(self) -> dict[str, np.ndarray]:
        return self._consolidated().metadata

    @property
    def content(self) -> dict[str, np.ndarray]:
        return self._consolidated().content

    def metadata_arrays(self) -> dict[str, np.ndarray]:
        """Concatenated metadata columns *without* consolidating images.

        The executor rebuilds its base relation after every ingest; going
        through this method keeps that rebuild O(rows × metadata columns)
        instead of forcing the (much larger) image arrays to collapse —
        images consolidate lazily when a query actually reads them.
        """
        if len(self._segments) == 1:
            return self._segments[0].metadata
        return {key: np.concatenate([segment.metadata[key]
                                     for segment in self._segments])
                for key in self._segments[0].metadata}

    @property
    def segments(self) -> tuple[CorpusSegment, ...]:
        """The current segment list (newest last).  Segments are immutable."""
        return tuple(self._segments)

    def segment_rows(self) -> list[int]:
        """Row count per segment, oldest first."""
        return [len(segment) for segment in self._segments]

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def __len__(self) -> int:
        return sum(len(segment) for segment in self._segments)

    @property
    def image_size(self) -> int:
        return int(self._segments[0].images.shape[1])

    def images_from(self, start: int) -> np.ndarray:
        """The image rows ``start:`` without consolidating the corpus.

        The ingest hot path extends stored representations with just the new
        frames; reading the tail through this method touches only the
        segments that cover it, so a long history is never concatenated to
        transform one fresh batch.
        """
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        parts, offset = [], 0
        for segment in self._segments:
            end = offset + len(segment)
            if end > start:
                parts.append(segment.images[max(0, start - offset):])
            offset = end
        if not parts:
            return self._segments[-1].images[:0]
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts, axis=0)

    # -- mutation -------------------------------------------------------------
    def append(self, images: np.ndarray,
               metadata: dict[str, np.ndarray] | None = None,
               content: dict[str, np.ndarray] | None = None) -> np.ndarray:
        """Append new rows as a fresh segment, returning the new rows' ids.

        This is the corpus half of streaming ingest: ``images`` is an NHWC
        batch with the same frame shape as the corpus, ``metadata`` must
        provide exactly the existing metadata columns, and ``content``
        (ground truth, optional) may provide any subset of the existing
        content columns — missing ones are padded with ``False`` for the new
        rows, mirroring frames whose ground truth is unknown.  The appended
        batch becomes one immutable :class:`CorpusSegment`, so the cost is
        O(batch), not O(corpus).
        """
        segment = self._build_appended(images, metadata, content)
        n_old = len(self)
        self._segments.append(segment)
        return np.arange(n_old, n_old + len(segment))

    def _build_appended(self, images, metadata, content) -> CorpusSegment:
        """Validate an append batch against the corpus schema."""
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4:
            raise ValueError(f"images must be NHWC, got shape {images.shape}")
        frame_shape = self._segments[0].images.shape[1:]
        if images.shape[1:] != frame_shape:
            raise ValueError(
                f"appended frame shape {images.shape[1:]} does not match "
                f"corpus frame shape {frame_shape}")
        n_new = images.shape[0]

        schema = self._segments[0]
        metadata = metadata or {}
        if set(metadata) != set(schema.metadata):
            raise ValueError(
                f"metadata columns {sorted(metadata)} do not match corpus "
                f"columns {sorted(schema.metadata)}")
        new_metadata = {key: _column(key, values, n_new, "metadata")
                        for key, values in metadata.items()}

        content = content or {}
        unknown = set(content) - set(schema.content)
        if unknown:
            raise ValueError(f"unknown content columns {sorted(unknown)}; "
                             f"corpus has {sorted(schema.content)}")
        new_content = {}
        for key, existing in schema.content.items():
            if key in content:
                new_content[key] = _column(key, content[key], n_new, "content")
            else:
                new_content[key] = np.zeros(n_new, dtype=existing.dtype)
        return CorpusSegment(images=images, metadata=new_metadata,
                             content=new_content)

    def drop_oldest(self, n: int) -> int:
        """Drop the ``n`` oldest (front) rows; returns rows dropped.

        This is the corpus half of retention windows: a streaming table is a
        sliding window over its feed, so eviction always takes the front.
        Whole leading segments are dropped in O(1) each — their memory is
        released without touching the survivors — and only a segment
        straddling the boundary is split (the surviving tail is copied, not
        sliced, so a view never pins the dropped rows' memory).
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        n = min(int(n), len(self))
        if n == 0:
            return 0
        remaining = n
        while remaining > 0:
            head = self._segments[0]
            if remaining >= len(head) and len(self._segments) > 1:
                self._segments.pop(0)
                remaining -= len(head)
            else:
                # Boundary split — also the "corpus emptied" case, where the
                # zero-row tail keeps the column schema alive.
                self._segments[0] = head.tail(remaining)
                remaining = 0
        return n

    def compact(self, min_rows: int | None = None) -> int:
        """Fold small adjacent segments together; returns segments folded away.

        With ``min_rows=None`` the whole corpus collapses to one segment.
        Otherwise only runs of adjacent segments smaller than ``min_rows``
        are merged, so a large old segment is never rewritten just to absorb
        a trickle of small ingest batches behind it.
        """
        before = len(self._segments)
        if min_rows is None:
            self._consolidated()
            return before - len(self._segments)
        merged: list[CorpusSegment] = []
        run: list[CorpusSegment] = []
        for segment in self._segments:
            if len(segment) < min_rows:
                run.append(segment)
                continue
            if run:
                merged.append(CorpusSegment.merge(run))
                run = []
            merged.append(segment)
        if run:
            merged.append(CorpusSegment.merge(run))
        self._segments = merged
        return before - len(self._segments)


def generate_corpus(categories: tuple[CategoryDef, ...], n_images: int,
                    image_size: int, rng: np.random.Generator | None = None,
                    locations: tuple[str, ...] = ("detroit", "seattle", "austin"),
                    positive_rate: float = 0.35) -> ImageCorpus:
    """Generate a mixed corpus where each image may contain several categories.

    Each image independently contains each category with probability
    ``positive_rate / len(categories)`` scaled so the expected number of
    object-bearing images stays moderate; metadata columns ``location`` and
    ``timestamp`` are attached for metadata-predicate queries.
    """
    if n_images <= 0:
        raise ValueError("n_images must be positive")
    if not categories:
        raise ValueError("categories must be non-empty")
    rng = rng or np.random.default_rng(0)

    images = np.zeros((n_images, image_size, image_size, 3), dtype=np.float64)
    content = {category.name: np.zeros(n_images, dtype=bool)
               for category in categories}
    per_category_rate = min(1.0, positive_rate)

    from repro.data.synthesis import render_background, render_object

    for index in range(n_images):
        image = render_background(image_size, rng)
        for category in categories:
            if rng.random() < per_category_rate / len(categories):
                image = render_object(image, category, rng)
                content[category.name][index] = True
        images[index] = image

    metadata = {
        "location": np.array([locations[rng.integers(0, len(locations))]
                              for _ in range(n_images)]),
        "timestamp": np.sort(rng.uniform(0, 86_400, size=n_images)),
        "camera_id": rng.integers(0, 8, size=n_images),
    }
    return ImageCorpus(images=images, metadata=metadata, content=content)
