"""Procedural image synthesis.

Every image is a cluttered background with zero or more objects composited on
top.  A *positive* example for a category contains that category's object; a
*negative* example contains only distractor objects drawn from other
categories.  Objects carry a color signature and a texture whose spatial
frequency scales with the category's ``texture_frequency``, so both
color-channel reduction and resolution reduction degrade (but do not destroy)
separability — the property the paper's representation study depends on.
"""

from __future__ import annotations

import numpy as np

from repro.data.categories import CategoryDef

__all__ = ["render_background", "render_object", "render_image", "shape_mask"]


def _coordinate_grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    coords = (np.arange(size) + 0.5) / size
    return np.meshgrid(coords, coords, indexing="ij")


def shape_mask(shape: str, size: int, center: tuple[float, float],
               radius: float, rng: np.random.Generator) -> np.ndarray:
    """Binary (soft) mask of a shape on a ``size`` x ``size`` canvas.

    ``center`` and ``radius`` are in normalized [0, 1] image coordinates.
    """
    yy, xx = _coordinate_grid(size)
    cy, cx = center
    dy, dx = yy - cy, xx - cx
    dist = np.sqrt(dy ** 2 + dx ** 2)

    if shape == "disk":
        mask = dist <= radius
    elif shape == "square":
        mask = (np.abs(dy) <= radius) & (np.abs(dx) <= radius)
    elif shape == "diamond":
        mask = (np.abs(dy) + np.abs(dx)) <= radius * 1.3
    elif shape == "ring":
        mask = (dist <= radius) & (dist >= radius * 0.55)
    elif shape == "triangle":
        mask = (dy >= -radius) & (np.abs(dx) <= (dy + radius) * 0.6) & (dy <= radius)
    elif shape == "cross":
        arm = radius * 0.35
        mask = (((np.abs(dy) <= arm) & (np.abs(dx) <= radius))
                | ((np.abs(dx) <= arm) & (np.abs(dy) <= radius)))
    elif shape == "stripes":
        inside = (np.abs(dy) <= radius) & (np.abs(dx) <= radius)
        period = max(radius / 2.0, 2.0 / size)
        bands = (np.floor((dx + radius) / period) % 2) == 0
        mask = inside & bands
    elif shape == "checker":
        inside = (np.abs(dy) <= radius) & (np.abs(dx) <= radius)
        period = max(radius / 2.0, 2.0 / size)
        cells = ((np.floor((dx + radius) / period)
                  + np.floor((dy + radius) / period)) % 2) == 0
        mask = inside & cells
    elif shape == "star":
        angle = np.arctan2(dy, dx)
        lobes = 0.65 + 0.35 * np.cos(5.0 * angle)
        mask = dist <= radius * lobes
    elif shape == "blob":
        angle = np.arctan2(dy, dx)
        phase = rng.uniform(0, 2 * np.pi)
        wobble = 0.8 + 0.2 * np.sin(3.0 * angle + phase)
        mask = dist <= radius * wobble
    else:
        raise ValueError(f"unknown shape {shape!r}")
    return mask.astype(np.float64)


def render_background(size: int, rng: np.random.Generator,
                      clutter: float = 0.35) -> np.ndarray:
    """A low-frequency cluttered background image of shape ``(size, size, 3)``."""
    base_color = rng.uniform(0.25, 0.55, size=3)
    image = np.ones((size, size, 3), dtype=np.float64) * base_color

    yy, xx = _coordinate_grid(size)
    # Low-frequency "lighting" gradients per channel.
    for channel in range(3):
        fy, fx = rng.uniform(0.5, 2.0, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        image[:, :, channel] += 0.08 * np.sin(
            2 * np.pi * (fy * yy + fx * xx) + phase)

    # Random clutter blobs.
    n_blobs = rng.integers(2, 6)
    for _ in range(n_blobs):
        center = rng.uniform(0.1, 0.9, size=2)
        radius = rng.uniform(0.05, 0.15)
        color = rng.uniform(0.2, 0.7, size=3)
        mask = shape_mask("disk", size, tuple(center), radius, rng)
        image += clutter * mask[:, :, None] * (color - image)

    image += rng.normal(0.0, 0.02, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def render_object(image: np.ndarray, category: CategoryDef,
                  rng: np.random.Generator,
                  jitter: float = 0.06) -> np.ndarray:
    """Composite one instance of ``category`` onto ``image`` (in place copy)."""
    size = image.shape[0]
    out = image.copy()
    radius = rng.uniform(*category.size_range)
    center = tuple(rng.uniform(radius + 0.05, 1.0 - radius - 0.05, size=2))
    mask = shape_mask(category.shape, size, center, radius, rng)

    yy, xx = _coordinate_grid(size)
    freq = category.texture_frequency
    phase = rng.uniform(0, 2 * np.pi)
    texture = 0.5 + 0.5 * np.sin(2 * np.pi * freq * (xx + yy) + phase)

    color = np.asarray(category.color) + rng.normal(0.0, jitter, size=3)
    color = np.clip(color, 0.0, 1.0)
    layer = color[None, None, :] * (0.75 + 0.25 * texture[:, :, None])
    alpha = mask[:, :, None] * 0.95
    out = out * (1.0 - alpha) + layer * alpha
    return np.clip(out, 0.0, 1.0)


def render_image(category: CategoryDef, size: int, positive: bool,
                 rng: np.random.Generator,
                 distractors: tuple[CategoryDef, ...] = (),
                 max_distractors: int = 2) -> np.ndarray:
    """Render one labeled example for a binary predicate.

    Parameters
    ----------
    category:
        The predicate's target category.
    size:
        Square image size in pixels.
    positive:
        Whether the target object should be present.
    rng:
        Random generator controlling all stochastic choices.
    distractors:
        Categories from which negative/extra objects may be drawn.
    max_distractors:
        Maximum number of distractor objects composited per image.
    """
    if size < 8:
        raise ValueError("size must be at least 8 pixels")
    image = render_background(size, rng)

    usable = [d for d in distractors if d.name != category.name]
    n_distractors = int(rng.integers(0, max_distractors + 1)) if usable else 0
    for _ in range(n_distractors):
        distractor = usable[rng.integers(0, len(usable))]
        image = render_object(image, distractor, rng)

    if positive:
        image = render_object(image, category, rng)
    return image
