"""Temporally coherent synthetic video streams.

These stand in for NoScope's ``coral`` and ``jackson`` fixed-camera datasets
in the Figure 8 comparison.  The properties that matter for that experiment —
and that the generator therefore controls — are:

* a *static background* shared by all frames (so a difference detector can
  skip redundant frames),
* objects that *enter and dwell* for geometrically distributed runs of frames
  (temporal coherence / class skew), and
* per-frame sensor noise controlling how often the difference detector fires.

``CORAL_PRESET`` models an easy stream (large redundancy, easy classification)
and ``JACKSON_PRESET`` a hard one (little redundancy, harder classification),
mirroring the relative difficulty the NoScope authors report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.categories import TABLE2_CATEGORIES, CategoryDef, get_category
from repro.data.corpus import LabeledDataset
from repro.data.synthesis import render_background, render_object

__all__ = ["VideoStreamConfig", "VideoStream", "generate_video_stream",
           "CORAL_PRESET", "JACKSON_PRESET"]


@dataclass(frozen=True)
class VideoStreamConfig:
    """Parameters of a synthetic fixed-camera video stream.

    Parameters
    ----------
    name:
        Stream name (used in reports).
    category_name:
        The target category whose presence defines the positive label.
    n_frames:
        Number of frames to generate.
    frame_size:
        Square frame size in pixels.
    positive_rate:
        Long-run fraction of frames containing the target object.
    mean_dwell:
        Mean number of consecutive frames an object stays once it appears
        (and, symmetrically, the mean length of empty runs is scaled to hit
        ``positive_rate``).  Larger values mean more temporal redundancy.
    sensor_noise:
        Standard deviation of per-frame additive noise; lower values mean a
        difference detector can reuse more previous results.
    difficulty:
        Extra clutter objects per frame; higher is harder to classify.
    """

    name: str
    category_name: str
    n_frames: int = 600
    frame_size: int = 64
    positive_rate: float = 0.3
    mean_dwell: float = 12.0
    sensor_noise: float = 0.01
    difficulty: int = 1

    def __post_init__(self) -> None:
        if self.n_frames <= 0:
            raise ValueError("n_frames must be positive")
        if not 0.0 < self.positive_rate < 1.0:
            raise ValueError("positive_rate must be in (0, 1)")
        if self.mean_dwell < 1.0:
            raise ValueError("mean_dwell must be at least 1 frame")
        if self.sensor_noise < 0:
            raise ValueError("sensor_noise must be non-negative")


@dataclass
class VideoStream:
    """A generated stream: frames, labels and the generating config."""

    config: VideoStreamConfig
    frames: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return int(self.frames.shape[0])

    def as_dataset(self) -> LabeledDataset:
        """View the stream as a labeled dataset (for training/evaluation)."""
        return LabeledDataset(self.frames, self.labels)

    def temporal_redundancy(self) -> float:
        """Fraction of frames whose label equals the previous frame's label."""
        if len(self) < 2:
            return 1.0
        return float((self.labels[1:] == self.labels[:-1]).mean())


def _dwell_labels(config: VideoStreamConfig, rng: np.random.Generator) -> np.ndarray:
    """Alternating present/absent runs with geometric dwell times."""
    labels = np.zeros(config.n_frames, dtype=np.int64)
    # Mean run lengths chosen so the long-run positive fraction matches.
    mean_present = config.mean_dwell
    mean_absent = mean_present * (1.0 - config.positive_rate) / config.positive_rate
    mean_absent = max(mean_absent, 1.0)

    position = 0
    present = rng.random() < config.positive_rate
    while position < config.n_frames:
        mean_run = mean_present if present else mean_absent
        run = 1 + rng.geometric(1.0 / mean_run)
        labels[position:position + run] = int(present)
        position += run
        present = not present
    return labels


def generate_video_stream(config: VideoStreamConfig,
                          rng: np.random.Generator | None = None,
                          category: CategoryDef | None = None) -> VideoStream:
    """Generate a :class:`VideoStream` according to ``config``."""
    rng = rng or np.random.default_rng(0)
    category = category or get_category(config.category_name)

    labels = _dwell_labels(config, rng)
    background = render_background(config.frame_size, rng)
    distractors = [c for c in TABLE2_CATEGORIES if c.name != category.name]

    frames = np.zeros((config.n_frames, config.frame_size, config.frame_size, 3),
                      dtype=np.float64)
    object_layer: np.ndarray | None = None
    for index in range(config.n_frames):
        frame = background.copy()
        # Occasional passing distractor objects make the stream harder.
        for _ in range(config.difficulty):
            if distractors and rng.random() < 0.15:
                distractor = distractors[rng.integers(0, len(distractors))]
                frame = render_object(frame, distractor, rng)
        if labels[index] == 1:
            # Re-render the object only when it (re)appears so consecutive
            # positive frames stay nearly identical, as in a real fixed camera.
            if index == 0 or labels[index - 1] == 0 or object_layer is None:
                object_layer = render_object(background, category, rng)
            frame = object_layer.copy()
        frame += rng.normal(0.0, config.sensor_noise, size=frame.shape)
        frames[index] = np.clip(frame, 0.0, 1.0)

    return VideoStream(config=config, frames=frames, labels=labels)


#: Easy stream: heavy temporal redundancy, low noise (analogue of ``coral``).
CORAL_PRESET = VideoStreamConfig(
    name="coral", category_name="coho", n_frames=600, frame_size=64,
    positive_rate=0.25, mean_dwell=24.0, sensor_noise=0.005, difficulty=0)

#: Hard stream: little redundancy, more noise (analogue of ``jackson``).
JACKSON_PRESET = VideoStreamConfig(
    name="jackson", category_name="scorpion", n_frames=600, frame_size=64,
    positive_rate=0.45, mean_dwell=3.0, sensor_noise=0.06, difficulty=3)
