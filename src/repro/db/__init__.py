"""The database facade: TAHOMA as a visual analytics *database*.

This package is the repository's single public entry point.  It wraps system
initialization (:func:`~repro.db.database.VisualDatabase.register_predicate`),
deployment-cost-aware cascade selection (:mod:`repro.db.planner`), execution
with materialized virtual columns and a shared representation store
(:mod:`repro.db.executor`), DB-API-flavoured result consumption
(:mod:`repro.db.results`) and whole-database persistence
(:mod:`repro.db.persistence`) behind a connection-style API::

    import repro.db

    db = repro.db.connect(corpus)                  # single table: "images"
    db.register_predicate("bicycle", splits=splits, config=config)
    db.use_scenario("archive")
    results = db.execute("SELECT * FROM images "
                         "WHERE location = 'detroit' AND contains_object(bicycle)")

A ``{name: corpus}`` mapping opens a multi-table catalog
(:mod:`repro.db.catalog`): ``SELECT * FROM <table>`` routes to one shard and
the virtual ``all_cameras`` table fans out across all of them concurrently::

    db = repro.db.connect({"cam_north": north, "cam_south": south})
    merged = db.execute("SELECT * FROM all_cameras "
                        "WHERE contains_object(bicycle)")
"""

from repro.db.catalog import DEFAULT_TABLE, FANOUT_TABLE, Catalog

from repro.db.database import (
    PredicateDefinition,
    VisualDatabase,
    connect,
    initialize_predicate,
)
from repro.db.executor import QueryExecutor
from repro.db.planner import (
    ContentStep,
    MetadataStep,
    QueryPlan,
    QueryPlanner,
    estimate_selectivity,
)
from repro.db.aggregates import GroupedPartials, compute_partials, merge_partials
from repro.db.results import (TABLE_COLUMN, AggregateResultSet,
                              FanoutResultSet, ResultSet, build_result_set)
from repro.db.retention import RetentionPolicy
from repro.db.wal import TableWal
from repro.query.ast import QueryError, SqlParseError

__all__ = [
    "VisualDatabase",
    "connect",
    "Catalog",
    "DEFAULT_TABLE",
    "FANOUT_TABLE",
    "PredicateDefinition",
    "initialize_predicate",
    "QueryPlanner",
    "QueryPlan",
    "MetadataStep",
    "ContentStep",
    "estimate_selectivity",
    "QueryExecutor",
    "ResultSet",
    "FanoutResultSet",
    "AggregateResultSet",
    "build_result_set",
    "GroupedPartials",
    "compute_partials",
    "merge_partials",
    "QueryError",
    "SqlParseError",
    "TABLE_COLUMN",
    "RetentionPolicy",
    "TableWal",
]
