"""The database facade: TAHOMA as a visual analytics *database*.

This package is the repository's single public entry point.  It wraps system
initialization (:func:`~repro.db.database.VisualDatabase.register_predicate`),
deployment-cost-aware cascade selection (:mod:`repro.db.planner`), execution
with materialized virtual columns and a shared representation store
(:mod:`repro.db.executor`), DB-API-flavoured result consumption
(:mod:`repro.db.results`) and whole-database persistence
(:mod:`repro.db.persistence`) behind a connection-style API::

    import repro.db

    db = repro.db.connect(corpus)
    db.register_predicate("bicycle", splits=splits, config=config)
    db.use_scenario("archive")
    results = db.execute("SELECT * FROM images "
                         "WHERE location = 'detroit' AND contains_object(bicycle)")
"""

from repro.db.database import (
    PredicateDefinition,
    VisualDatabase,
    connect,
    initialize_predicate,
)
from repro.db.executor import QueryExecutor
from repro.db.planner import (
    ContentStep,
    MetadataStep,
    QueryPlan,
    QueryPlanner,
    estimate_selectivity,
)
from repro.db.results import ResultSet

__all__ = [
    "VisualDatabase",
    "connect",
    "PredicateDefinition",
    "initialize_predicate",
    "QueryPlanner",
    "QueryPlan",
    "MetadataStep",
    "ContentStep",
    "estimate_selectivity",
    "QueryExecutor",
    "ResultSet",
]
