"""Distributed aggregates: per-shard partial states and their merge.

The paper's workloads are dominated by counting/grouping analytics ("how
many frames per camera contain a bicycle?").  For a fan-out query the
coordinator must not ship every selected row across shards just to count
them — each shard computes a :class:`GroupedPartials` over its own selected
rows and the coordinator merges the *group tuples*:

* COUNT, SUM, MIN and MAX merge associatively;
* AVG is exact because its partial state is ``(sum, count)`` — never a
  per-shard average of averages.

A query without GROUP BY is a single global group (one output row even over
zero selected rows, as in SQL); with GROUP BY, groups appear in key-sorted
order unless the query orders them otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.query.ast import Aggregate, QueryError
from repro.query.relation import Relation, to_python as _to_python

__all__ = ["GroupedPartials", "compute_partials", "merge_partials"]


def _numeric_values(aggregate: Aggregate, values: np.ndarray) -> np.ndarray:
    # shape: (V,) -> (V,)
    if values.dtype.kind not in ("b", "i", "u", "f"):
        raise QueryError(
            f"{aggregate.label}: column {aggregate.argument!r} has "
            f"non-numeric dtype {values.dtype}; SUM/AVG need a numeric column")
    return values


def _non_null(values: np.ndarray) -> np.ndarray:
    # shape: (V,) -> (W,)
    """Drop NaN entries of float columns — NaN is the relation's NULL.

    Every aggregate skips NULLs the SQL way: COUNT(col) counts the rest,
    SUM/AVG total and average the rest, MIN/MAX ignore them.  Non-float
    dtypes have no null sentinel, so all rows count.
    """
    if values.dtype.kind == "f":
        return values[~np.isnan(values)]
    return values


def _initial_state(aggregate: Aggregate, values: np.ndarray | None,
                   n_rows: int):
    """The partial state of one aggregate over one shard's group rows.

    ``values`` is ``None`` only for ``COUNT(*)``; otherwise it is the
    group's slice of the argument column.  States are chosen so that merging
    is associative and AVG stays exact: ``count`` -> n, ``sum``/``avg`` ->
    (total, n), ``min``/``max`` -> the extremum or ``None`` over no rows.
    """
    func = aggregate.func
    if func == "count":
        if values is None:
            return n_rows
        return int(_non_null(values).shape[0])
    if func in ("sum", "avg"):
        values = _non_null(_numeric_values(aggregate, values))
        total = float(np.sum(values)) if values.size else 0.0
        return (total, int(values.shape[0]))
    # Not np.min/np.max: the minimum/maximum ufuncs have no unicode loop,
    # and MIN/MAX over a string column is well-defined (lexicographic) —
    # one sort covers every comparable dtype.
    values = np.sort(_non_null(values))
    if func == "min":
        return _to_python(values[0]) if values.size else None
    return _to_python(values[-1]) if values.size else None


def _merge_state(func: str, a, b):
    if func == "count":
        return a + b
    if func in ("sum", "avg"):
        return (a[0] + b[0], a[1] + b[1])
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b) if func == "min" else max(a, b)


def _finalize_state(func: str, state):
    if func == "count":
        return state
    if func == "sum":
        total, n = state
        return total if n else float("nan")
    if func == "avg":
        total, n = state
        return total / n if n else float("nan")
    return state if state is not None else float("nan")


@dataclass
class GroupedPartials:
    """Partial aggregate states for every group of one shard (or a merge).

    ``groups`` maps the group key (a tuple of plain-Python group-column
    values; the empty tuple for a global aggregate) to one partial state per
    aggregate, in ``aggregates`` order.
    """

    group_by: tuple[str, ...]
    aggregates: tuple[Aggregate, ...]
    groups: dict[tuple, tuple]

    def finalize(self) -> Relation:
        """The merged groups as a relation: group columns + aggregate labels.

        Groups appear in key-sorted order (deterministic across merges); an
        ORDER BY stage re-sorts downstream.  SUM/AVG/MIN/MAX over zero rows
        finalize to NaN (SQL's NULL); COUNT to 0.
        """
        keys = sorted(self.groups)
        columns: dict[str, np.ndarray] = {}
        for position, name in enumerate(self.group_by):
            columns[name] = np.array([key[position] for key in keys])
        for position, aggregate in enumerate(self.aggregates):
            columns[aggregate.label] = np.array(
                [_finalize_state(aggregate.func, self.groups[key][position])
                 for key in keys])
        if not columns:
            raise QueryError("an aggregate query needs at least one "
                             "aggregate or GROUP BY column")
        return Relation(columns)


def compute_partials(relation: Relation, aggregates: tuple[Aggregate, ...],
                     group_by: tuple[str, ...]) -> GroupedPartials:
    """Partial aggregates over one shard's selected rows.

    Unknown group or argument columns raise :class:`QueryError` naming the
    available columns.
    """
    n = len(relation)
    for aggregate in aggregates:
        if aggregate.argument is not None:
            _require_column(relation, aggregate.argument, aggregate.label)
    for name in group_by:
        _require_column(relation, name, "GROUP BY")

    if group_by:
        group_arrays = [np.asarray(relation[name]) for name in group_by]
        stacked = np.empty(n, dtype=[(f"k{i}", array.dtype)
                                     for i, array in enumerate(group_arrays)])
        for i, array in enumerate(group_arrays):
            stacked[f"k{i}"] = array
        unique_keys, inverse = np.unique(stacked, return_inverse=True)
        # One stable argsort groups the members of every group contiguously
        # (O(n log n)); a per-group `inverse == g` scan would be
        # O(groups x rows) and collapse on high-cardinality keys.
        order = np.argsort(inverse, kind="stable")
        counts = np.bincount(inverse, minlength=len(unique_keys))
        member_lists = np.split(order, np.cumsum(counts)[:-1])
        keys = [tuple(_to_python(unique_keys[g][f"k{i}"])
                      for i in range(len(group_by)))
                for g in range(len(unique_keys))]
    else:
        # A global aggregate is one group — present even over zero rows.
        member_lists = [np.arange(n)]
        keys = [()]

    groups: dict[tuple, tuple] = {}
    for key, members in zip(keys, member_lists):
        states = []
        for aggregate in aggregates:
            values = (None if aggregate.argument is None
                      else np.asarray(relation[aggregate.argument])[members])
            states.append(_initial_state(aggregate, values, int(members.size)))
        groups[key] = tuple(states)
    return GroupedPartials(group_by=group_by, aggregates=aggregates,
                           groups=groups)


def merge_partials(a: GroupedPartials, b: GroupedPartials) -> GroupedPartials:
    """Merge two shards' partials (associative; AVG merges as sum+count)."""
    if a.group_by != b.group_by or a.aggregates != b.aggregates:
        raise ValueError("cannot merge partials of different aggregate specs")
    groups = dict(a.groups)
    for key, states in b.groups.items():
        mine = groups.get(key)
        if mine is None:
            groups[key] = states
        else:
            groups[key] = tuple(
                _merge_state(aggregate.func, left, right)
                for aggregate, left, right in zip(a.aggregates, mine, states))
    return GroupedPartials(group_by=a.group_by, aggregates=a.aggregates,
                           groups=groups)


def _require_column(relation: Relation, name: str, context: str) -> None:
    if name not in relation:
        raise QueryError(f"{context}: unknown column {name!r}; "
                         f"available: {relation.column_names()}")
