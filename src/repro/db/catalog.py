"""The table catalog: named corpora behind one shared representation budget.

The paper's CAMERA scenario assumes many live feeds; the catalog is the piece
that lets one :class:`~repro.db.database.VisualDatabase` hold many of them as
named tables (one per camera, archive, or other shard).  Each table owns its
own :class:`~repro.db.executor.QueryExecutor` — corpus, base relation and
materialized virtual columns — while all tables share a single
:class:`~repro.storage.store.RepresentationStore` budget through per-table
:meth:`~repro.storage.store.RepresentationStore.scoped` namespaces, so one
hot camera cannot evict every other shard's representations.

``SELECT * FROM <table>`` routes to that table's executor; the reserved
virtual table :data:`FANOUT_TABLE` (``all_cameras``) fans a query out across
every attached shard.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.data.corpus import ImageCorpus
from repro.db.executor import QueryExecutor
from repro.db.retention import RetentionPolicy
from repro.locking import make_rlock
from repro.query.processor import DEFAULT_TABLE
from repro.storage.store import RepresentationStore
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["Catalog", "DEFAULT_TABLE", "FANOUT_TABLE"]

#: Reserved virtual table: ``SELECT * FROM all_cameras`` fans out across
#: every attached table.  It can never be attached.
FANOUT_TABLE = "all_cameras"

_TABLE_NAME_RE = re.compile(r"^[a-zA-Z_]\w*$")


class Catalog:
    """Named tables, each an :class:`~repro.db.executor.QueryExecutor`.

    Parameters
    ----------
    store_budget:
        Byte budget for the *shared* representation store.  All tables draw
        on one budget; accounting is namespace-aware (see
        :mod:`repro.storage.store`).
    metrics:
        The registry the store's hit/miss/eviction counters and every
        attached executor's query histograms land on; a private registry is
        created when omitted so a standalone catalog still meters itself.
    """

    def __init__(self, store_budget: int | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._store = RepresentationStore(byte_budget=store_budget,
                                          metrics=self.metrics)
        # Reentrant: replace() detaches and re-attaches under one hold, so
        # membership changes are atomic to concurrent readers.  The catalog
        # lock is only ever the *outermost* lock (catalog -> executor ->
        # wal/store); no executor or store path calls back into the catalog.
        self._lock = make_rlock("catalog")
        self._executors: dict[str, QueryExecutor] = {}  # guarded by: self._lock

    # -- membership -----------------------------------------------------------
    def attach(self, name: str, corpus: ImageCorpus,
               retention: RetentionPolicy | None = None) -> QueryExecutor:
        """Attach ``corpus`` as table ``name``; rejects duplicates.

        ``retention`` makes the table a sliding window over its feed: the
        oldest rows are dropped whenever the window is exceeded (see
        :class:`~repro.db.retention.RetentionPolicy`).
        """
        self._validate_name(name)
        with self._lock:
            if name in self._executors:
                raise ValueError(f"table {name!r} already attached; "
                                 f"detach it first or use replace()")
            executor = QueryExecutor(corpus, store=self._store.scoped(name),
                                     table=name, retention=retention,
                                     metrics=self.metrics)
            self._executors[name] = executor
            return executor

    def replace(self, name: str, corpus: ImageCorpus,
                retention: RetentionPolicy | None = None) -> QueryExecutor:
        """Attach ``corpus`` as ``name``, dropping any previous shard's state."""
        with self._lock:
            if name in self._executors:
                self.detach(name)
            return self.attach(name, corpus, retention=retention)

    def set_retention(self, name: str,
                      policy: RetentionPolicy | None) -> None:
        """Set (or clear, with ``None``) table ``name``'s retention policy.

        The policy takes effect at the next ingest or ``retain()`` call; it
        never drops rows by itself.  Routed through the executor so the
        change is journaled when the shard has a write-ahead log.
        """
        self.executor(name).set_retention(policy)

    def retention(self, name: str) -> RetentionPolicy | None:
        """Table ``name``'s retention policy (``None`` when unbounded)."""
        return self.executor(name).retention

    def detach(self, name: str) -> None:
        """Drop table ``name``: executor state and its store namespace."""
        with self._lock:
            executor = self._executors.pop(name, None)
            if executor is None:
                raise KeyError(f"no table {name!r}; "
                               f"attached: {self.tables()}")
        # Purge outside the membership-critical section: the shard is
        # already invisible, and the store lock is taken without holding
        # the catalog lock on this (detach-only) path.
        executor.store.purge()

    # -- lookup ---------------------------------------------------------------
    def tables(self) -> list[str]:
        """Attached table names, in attachment order."""
        with self._lock:
            return list(self._executors)

    def executor(self, name: str) -> QueryExecutor:
        with self._lock:
            try:
                return self._executors[name]
            except KeyError:
                raise KeyError(f"no table {name!r}; "
                               f"attached: {self.tables()}") from None

    def default_table(self) -> str | None:
        """The table unqualified operations act on.

        :data:`DEFAULT_TABLE` when attached (the single-corpus API), else the
        sole table when exactly one is attached, else ``None`` — callers must
        then name a table explicitly.
        """
        with self._lock:
            if DEFAULT_TABLE in self._executors:
                return DEFAULT_TABLE
            if len(self._executors) == 1:
                return next(iter(self._executors))
            return None

    @property
    def store(self) -> RepresentationStore:
        """The shared (root) representation store; tables see scoped views."""
        return self._store

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._executors

    def __len__(self) -> int:
        with self._lock:
            return len(self._executors)

    def __iter__(self) -> Iterator[str]:
        # Iterate a snapshot: handing out a live dict iterator would let
        # concurrent attach/detach raise mid-iteration in the caller.
        with self._lock:
            return iter(list(self._executors))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Catalog(tables={self.tables()})"

    # -- internals -------------------------------------------------------------
    @staticmethod
    def _validate_name(name: str) -> None:
        if not isinstance(name, str) or not _TABLE_NAME_RE.match(name):
            raise ValueError(f"invalid table name {name!r}; table names are "
                             "SQL identifiers ([a-zA-Z_][a-zA-Z0-9_]*)")
        if name == FANOUT_TABLE:
            raise ValueError(f"{FANOUT_TABLE!r} is the reserved virtual "
                             "fan-out table and cannot be attached")
