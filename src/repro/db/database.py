"""The connection-style facade: ``repro.db.connect(...)`` and VisualDatabase.

The paper presents TAHOMA as a *visual analytics database*: users write ::

    SELECT * FROM images WHERE location = 'detroit' AND contains_object(bicycle)

and the system hides cascade training, representation choice and
deployment-cost-aware selection.  :class:`VisualDatabase` is that surface.
A typical multi-camera session::

    db = repro.db.connect({"cam_north": north, "cam_south": south})
    db.register_predicate("bicycle", splits=splits, config=small_config)
    db.use_scenario("camera")
    for row in db.execute("SELECT * FROM cam_north "
                          "WHERE contains_object(bicycle)"):
        ...
    results = db.execute("SELECT * FROM all_cameras "
                         "WHERE contains_object(bicycle)")
    for row in results:                     # merged, with provenance
        print(row["__table__"], row["image_id"])
    db.attach("cam_east", east)             # a new feed comes online
    db.ingest(new_frames, table="cam_north")   # ONGOING: grows one shard
    print(db.explain("SELECT * FROM cam_south "
                     "WHERE contains_object(bicycle)"))
    db.save("my.vdb")

``connect(corpus)`` with a single corpus registers it as the table
``images``, preserving the original one-table API.  Under the facade,
queries flow through the :mod:`repro.query.sql` parser, the
:class:`~repro.db.planner.QueryPlanner` (cascade selection + predicate
ordering, planned per shard) and one
:class:`~repro.db.executor.QueryExecutor` per table (materialized virtual
columns + a per-table namespace of the shared representation store).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.baselines.reference import train_reference_model
from repro.core.model import TrainedModel
from repro.core.optimizer import TahomaConfig, TahomaOptimizer
from repro.core.selector import UserConstraints
from repro.costs.device import DEFAULT_DEVICE, DeviceProfile, calibrate_device
from repro.costs.profiler import CostProfiler
from repro.costs.scenario import INFER_ONLY, Scenario, get_scenario
from repro.data.corpus import ImageCorpus, PredicateDataSplits
from repro.db.catalog import DEFAULT_TABLE, FANOUT_TABLE, Catalog
from repro.db.executor import QueryExecutor
from repro.db.planner import QueryPlan, QueryPlanner, annotate_plan_dict
from repro.db.results import (AggregateResultSet, FanoutResultSet, ResultSet,
                              build_result_set)
from repro.db.retention import RetentionPolicy
from repro.query.processor import Query
from repro.query.sql import parse_query, split_explain_analyze
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import NO_SPAN, Tracer

__all__ = ["VisualDatabase", "connect", "PredicateDefinition",
           "initialize_predicate"]

#: ``reference_params`` keys consumed by the network *builder* (and therefore
#: needed again at load time); the rest parameterize training only.
_REFERENCE_BUILD_KEYS = ("base_width", "n_stages", "blocks_per_stage",
                         "dense_units")


def initialize_predicate(splits: PredicateDataSplits,
                         config: TahomaConfig | None = None, *,
                         reference_params: dict | None = None,
                         reference_name: str = "reference",
                         train_reference: bool = True,
                         reference_model: TrainedModel | None = None,
                         rng: np.random.Generator | None = None,
                         ) -> tuple[TahomaOptimizer, TrainedModel | None]:
    """System initialization for one predicate: reference + grid + cascades.

    This is the one place the repository trains a predicate end to end; both
    :meth:`VisualDatabase.register_predicate` and the experiment workspaces
    build on it.

    Parameters
    ----------
    splits:
        Train / configuration / evaluation datasets for the predicate.
    config:
        The optimizer configuration (defaults to the paper's full grids —
        pass a reduced :class:`TahomaConfig` for CPU-scale runs).
    reference_params:
        Keyword arguments for
        :func:`~repro.baselines.reference.train_reference_model`
        (``epochs``, ``base_width``, ``n_stages``, ``blocks_per_stage``, ...).
    reference_model:
        An already-trained reference classifier; skips reference training.
    train_reference:
        Set False to build cascades without a reference tail.
    """
    config = config or TahomaConfig()
    rng = rng if rng is not None else np.random.default_rng(config.training.seed)

    reference = reference_model
    if reference is None and train_reference:
        reference = train_reference_model(
            splits, resolution=splits.train.image_size, name=reference_name,
            rng=rng, **dict(reference_params or {}))

    optimizer = TahomaOptimizer(config)
    optimizer.initialize(splits, reference_model=reference, rng=rng)
    return optimizer, reference


@dataclass
class PredicateDefinition:
    """A registered-but-untrained predicate (``register_predicate(lazy=True)``)."""

    name: str
    splits: PredicateDataSplits
    config: TahomaConfig | None
    reference_params: dict | None
    train_reference: bool
    reference_model: TrainedModel | None
    seed: int


class VisualDatabase:
    """A queryable visual analytics database over a catalog of image corpora.

    Parameters
    ----------
    corpus:
        What to query: a single :class:`~repro.data.corpus.ImageCorpus`
        (registered as the table ``images``), a ``{name: corpus}`` mapping
        (one table per camera/shard), or ``None`` (attach tables later via
        :meth:`attach` / :meth:`register_corpus`).
    device:
        Base compute-device profile for the analytic cost model.
    scenario:
        Initial deployment scenario (a :class:`Scenario`, one of the paper's
        scenario names, or a fully built :class:`CostProfiler`).
    cost_resolution:
        Resolution at which data-handling costs are priced (the paper's
        224 px camera frames), independent of the corpus rendering size.
    calibrate_target_fps:
        When set, the device is re-calibrated so the first registered
        reference classifier lands at this throughput (the paper's ~75 fps
        ResNet50 anchor).  ``None`` keeps ``device`` as given.
    default_constraints:
        Constraints applied to queries that do not carry their own.
    store_budget:
        Byte budget for the representation store (see
        :class:`~repro.storage.store.RepresentationStore`): a long-lived
        database over growing corpora holds representation memory constant
        by evicting least-recently-used representations; evicted ones are
        recomputed on demand, so results are unaffected.  The budget is
        shared by *all* tables (namespace-aware accounting keeps one hot
        camera from evicting every other shard's representations).  ``None``
        keeps the store unbounded.
    retention:
        Retention window(s) for the attached tables: a single
        :class:`~repro.db.retention.RetentionPolicy` applied to every table
        given in ``corpus``, or a ``{name: policy}`` mapping assigning
        per-table windows (names must be a subset of the attached tables).
        A table with a policy is a sliding window over its feed — the
        oldest rows are dropped at the end of every :meth:`ingest` (and on
        demand via :meth:`retain`), with image ids stable across drops.
        ``None`` keeps every table unbounded.
    plan_cache:
        Cache physical plans keyed by normalized query shape (literals
        stripped — see :class:`~repro.server.plan_cache.PlanCache`), so a
        repeated dashboard query skips parse + cascade selection.  ``True``
        enables a default-capacity cache, an ``int`` sets the capacity,
        ``False`` (the default) plans every query from scratch.  The cache
        is invalidated on scenario switches, attach/detach and retention
        changes; :meth:`enable_plan_cache` turns it on after construction
        (the network server does this for the database it serves).
    """

    def __init__(self,
                 corpus: ImageCorpus | Mapping[str, ImageCorpus] | None = None,
                 *,
                 device: DeviceProfile = DEFAULT_DEVICE,
                 scenario: Scenario | str | CostProfiler = INFER_ONLY,
                 cost_resolution: int = 224,
                 source_resolution: int | None = None,
                 calibrate_target_fps: float | None = 75.0,
                 default_constraints: UserConstraints | None = None,
                 store_budget: int | None = None,
                 retention: RetentionPolicy
                 | Mapping[str, RetentionPolicy] | None = None,
                 plan_cache: bool | int = False) -> None:
        self._device = device
        self._closed = False
        self._plan_cache = None
        self._wal_root: Path | None = None
        self._checkpoints = 0
        self._device_calibrated = False
        self._scenario: Scenario = INFER_ONLY
        self._profiler_override: CostProfiler | None = None
        self.cost_resolution = cost_resolution
        self._source_resolution = source_resolution
        self.calibrate_target_fps = calibrate_target_fps
        self.default_constraints = default_constraints or UserConstraints()
        self.store_budget = store_budget

        # One registry + tracer per database: every layer beneath (catalog,
        # store, executors, WAL, planner, plan cache) meters onto this
        # registry, and the serving layer picks it up via ``db.metrics`` so
        # ``stats`` and ``metrics`` can never disagree.
        self._metrics = MetricsRegistry()
        self._tracer = Tracer()
        self._catalog = Catalog(store_budget=store_budget,
                                metrics=self._metrics)
        self._optimizers: dict[str, TahomaOptimizer] = {}
        self._pending: dict[str, PredicateDefinition] = {}
        self._reference_params: dict[str, dict] = {}

        if retention is not None and not isinstance(retention,
                                                    (RetentionPolicy, Mapping)):
            raise TypeError("retention must be a RetentionPolicy or a "
                            f"{{table: policy}} mapping, got {retention!r}")
        if corpus is not None:
            if isinstance(corpus, Mapping):
                for name, table_corpus in corpus.items():
                    self.attach(name, table_corpus,
                                retention=self._policy_for(retention, name))
            else:
                self.register_corpus(
                    corpus,
                    retention=self._policy_for(retention, DEFAULT_TABLE))
        if isinstance(retention, Mapping):
            unknown = [name for name in retention if name not in self._catalog]
            if unknown:
                raise ValueError(f"retention names unknown tables {unknown}; "
                                 f"attached: {self.tables()}")
        self.use_scenario(scenario)
        if plan_cache:
            self.enable_plan_cache(plan_cache if isinstance(plan_cache, int)
                                   and not isinstance(plan_cache, bool)
                                   else 128)

    @staticmethod
    def _policy_for(retention, name: str) -> RetentionPolicy | None:
        """Resolve the constructor's ``retention`` argument for one table."""
        if retention is None:
            return None
        if isinstance(retention, RetentionPolicy):
            return retention
        return retention.get(name)

    # -- lifecycle -------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("database is closed")

    def close(self) -> None:
        """Release the database's state deterministically (idempotent).

        Detaches every table — dropping executors, materialized virtual
        columns and each shard's store namespace — clears the shared
        representation store and the plan cache, and marks the database
        closed: queries, ingest and catalog changes afterwards raise
        :class:`RuntimeError`.  For a WAL-enabled database every journal
        handle is flushed and closed *first* (without writing detach
        tombstones — closing is not detaching; the tables come back on the
        next load), so no buffered log bytes are lost and the log files are
        released.  The server closes the database it serves on shutdown;
        tests use the context-manager form::

            with repro.db.connect(corpus) as db:
                db.execute("SELECT * FROM images LIMIT 5")
        """
        if self._closed:
            return
        self._closed = True
        for name in self.tables():
            executor = self._catalog.executor(name)
            wal = executor.wal
            if wal is not None:
                # Detach the journal before detaching the table, so the
                # catalog teardown below is not mistaken for a detach().
                executor.set_wal(None)
                wal.close()
            self._catalog.detach(name)
        self._catalog.store.clear()
        if self._plan_cache is not None:
            self._plan_cache.invalidate()

    def __enter__(self) -> "VisualDatabase":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- telemetry -------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """The database-wide metrics registry (see :mod:`repro.telemetry`).

        Every layer meters here: planner/executor latency histograms,
        per-cascade classification counters, WAL append/replay timings,
        store hit/miss/eviction counts.  The network server adopts this
        registry for its own admission/plan-cache/outcome counters, so the
        wire ``metrics`` command and :meth:`telemetry` read one source.
        """
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        """The per-query span recorder (last few traces kept)."""
        return self._tracer

    def telemetry(self) -> dict:
        """One JSON-safe observability snapshot: metrics plus recent traces.

        ``metrics`` is the registry snapshot (every metric's labeled series);
        ``traces`` is the tracer's ring buffer of recent span trees, oldest
        first — each query's parse/plan/snapshot/classify/merge breakdown.
        """
        return {"metrics": self._metrics.snapshot(),
                "traces": self._tracer.recent()}

    # -- plan cache ------------------------------------------------------------
    @property
    def plan_cache(self):
        """The :class:`~repro.server.plan_cache.PlanCache` (``None`` = off)."""
        return self._plan_cache

    def enable_plan_cache(self, capacity: int = 128):
        """Turn on plan caching (idempotent); returns the cache.

        Plans are keyed by normalized query shape — literals stripped — so a
        dashboard query re-run with a fresh timestamp reuses its cascade
        selections instead of repeating the Pareto analysis, and an exact
        repeat skips parse + plan entirely.  The cache is invalidated on
        scenario switches, attach/detach/replace and retention changes;
        cached selectivities otherwise go stale at the pace of ingest, which
        only affects predicate *ordering*, never correctness.
        """
        if self._plan_cache is None:
            from repro.server.plan_cache import PlanCache

            self._plan_cache = PlanCache(capacity=capacity,
                                         metrics=self._metrics)
        return self._plan_cache

    def _invalidate_plans(self) -> None:
        if self._plan_cache is not None:
            self._plan_cache.invalidate()

    # -- catalog ---------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        """The table catalog (one executor per attached corpus)."""
        return self._catalog

    def register_corpus(self, corpus: ImageCorpus,
                        name: str = DEFAULT_TABLE,
                        retention: RetentionPolicy | None = None) -> None:
        """Attach (or replace) ``name``; that table's caches start fresh."""
        self._check_open()
        old_wal = None
        if self._wal_root is not None and name in self._catalog:
            executor = self._catalog.executor(name)
            old_wal = executor.wal
            executor.set_wal(None)
        self._catalog.replace(name, corpus, retention=retention)
        if old_wal is not None:
            # The replaced table's journal ends with a tombstone; the new
            # incarnation's baseline is journaled right after, in the same
            # log, so replay reproduces the replace.
            old_wal.log_detach()
            old_wal.close()
        if self._wal_root is not None:
            self._arm_wal(name, baseline=True)
        self._invalidate_plans()

    def attach(self, name: str, corpus: ImageCorpus,
               retention: RetentionPolicy | None = None) -> None:
        """Attach ``corpus`` as a new table ``name`` (duplicates rejected).

        Predicates are shared across tables: train once, query any shard.
        ``retention`` makes the new table a sliding window over its feed.
        On a WAL-enabled database the new table is journaled from birth: its
        baseline corpus lands in the log as an ``attach`` record, so a crash
        before the next checkpoint still recovers it.
        """
        self._check_open()
        self._catalog.attach(name, corpus, retention=retention)
        if self._wal_root is not None:
            self._arm_wal(name, baseline=True)
        self._invalidate_plans()

    def detach(self, name: str) -> None:
        """Drop table ``name`` with its materialized labels and store namespace.

        On a WAL-enabled database a ``detach`` tombstone is journaled, so
        recovery from an older checkpoint drops the table again.
        """
        wal = None
        if self._wal_root is not None and name in self._catalog:
            executor = self._catalog.executor(name)
            wal = executor.wal
            executor.set_wal(None)
        self._catalog.detach(name)
        if wal is not None:
            wal.log_detach()
            wal.close()
        self._invalidate_plans()

    def tables(self) -> list[str]:
        """Attached table names, in attachment order."""
        return self._catalog.tables()

    # -- retention -------------------------------------------------------------
    def set_retention(self, table: str,
                      policy: RetentionPolicy | None) -> None:
        """Set (or clear, with ``None``) one table's retention window.

        Takes effect at the end of the next :meth:`ingest` into that table,
        or immediately via :meth:`retain`.
        """
        self._catalog.set_retention(table, policy)
        self._invalidate_plans()

    def retention_for(self, table: str) -> RetentionPolicy | None:
        """One table's retention policy (``None`` when unbounded)."""
        return self._catalog.retention(table)

    def retain(self, table: str | None = None) -> dict[str, int]:
        """Enforce retention windows now, without waiting for an ingest.

        ``table`` restricts the pass to one table; ``None`` sweeps the whole
        catalog.  Returns ``{table: rows_dropped}`` (tables without a policy
        drop 0 rows).  Image ids stay stable — see
        :class:`~repro.db.retention.RetentionPolicy`.
        """
        targets = [table] if table is not None else self.tables()
        return {name: self._catalog.executor(name).retain()
                for name in targets}

    def ingest(self, images: np.ndarray,
               metadata: dict[str, np.ndarray] | None = None,
               content: dict[str, np.ndarray] | None = None, *,
               materialize: bool | None = None,
               table: str | None = None) -> np.ndarray:
        """Append new frames to one table — the paper's ONGOING ingest path.

        ``table`` names the shard receiving the frames; ``None`` targets the
        default table (``images``, or the sole attached table).  Query-time
        state grows incrementally: already-classified rows are never
        re-classified, so a repeated query after ingest pays only for the
        new frames.  Under a scenario that materializes at ingest (ONGOING),
        every representation the table's store namespace has registered is
        extended with the new frames now, so queries keep loading
        representation bytes instead of transforming; other scenarios
        (ARCHIVE, CAMERA) stay lazy.  ``materialize`` overrides the
        scenario's policy.

        A zero-row batch is a cheap no-op returning an empty id array.  When
        the table carries a retention policy, the window is enforced after
        the append (oldest rows dropped, surviving ids stable).

        Returns the new rows' (stable) image ids (within that table).
        """
        self._check_open()
        if materialize is None:
            materialize = self._scenario.materializes_on_ingest
        executor = (self.executor if table is None
                    else self.executor_for(table))
        trace = self._tracer.trace("ingest", table=executor.table or "-",
                                   rows=int(len(images)))
        with trace.root as span:
            return executor.ingest(images, metadata=metadata,
                                   content=content, materialize=materialize,
                                   span=span)

    def _default_executor(self) -> QueryExecutor:
        default = self._catalog.default_table()
        if default is None:
            if len(self._catalog) == 0:
                raise RuntimeError("no corpus registered; call "
                                   "register_corpus() or pass one to connect()")
            raise RuntimeError(
                f"multiple tables attached ({self.tables()}) and none is "
                f"{DEFAULT_TABLE!r}; name one explicitly "
                "(executor_for/corpus_for/ingest(table=...))")
        return self._catalog.executor(default)

    @property
    def corpus(self) -> ImageCorpus:
        """The default table's corpus (single-corpus API)."""
        return self._default_executor().corpus

    def corpus_for(self, table: str) -> ImageCorpus:
        """The corpus behind one attached table."""
        return self._catalog.executor(table).corpus

    @property
    def executor(self) -> QueryExecutor:
        """The default table's executor (single-corpus API)."""
        return self._default_executor()

    def executor_for(self, table: str) -> QueryExecutor:
        """The executor owning one table's materialized columns and store."""
        return self._catalog.executor(table)

    # -- predicates ------------------------------------------------------------
    def register_predicate(self, name: str, splits: PredicateDataSplits, *,
                           config: TahomaConfig | None = None,
                           reference_params: dict | None = None,
                           train_reference: bool = True,
                           reference_model: TrainedModel | None = None,
                           lazy: bool = False, seed: int = 0) -> None:
        """Register ``contains_object(name)``: train its cascade machinery.

        Predicates are catalog-wide: trained once, evaluated against any
        table (each shard keeps its own materialized labels).  With
        ``lazy=True`` training is deferred until the predicate is first used
        by :meth:`execute` / :meth:`explain` (or :meth:`save`), so a
        database over many predicates only pays for the ones queries touch.
        """
        if name in self._optimizers or name in self._pending:
            raise ValueError(f"predicate {name!r} already registered")
        definition = PredicateDefinition(
            name=name, splits=splits, config=config,
            reference_params=reference_params,
            train_reference=train_reference,
            reference_model=reference_model, seed=seed)
        if lazy:
            self._pending[name] = definition
        else:
            self._train(definition)

    def register_optimizer(self, name: str, optimizer: TahomaOptimizer,
                           reference_params: dict | None = None) -> None:
        """Install an already-initialized optimizer for ``name``.

        ``reference_params`` must carry the reference network's build
        arguments when it was built with non-default parameters, so the
        database can be saved and reloaded.
        """
        if name in self._optimizers or name in self._pending:
            raise ValueError(f"predicate {name!r} already registered")
        self._optimizers[name] = optimizer
        self._reference_params[name] = self._build_params(reference_params)
        self._maybe_calibrate(optimizer.reference_model)

    def predicates(self) -> list[str]:
        """All registered predicate names (trained and pending)."""
        return sorted(set(self._optimizers) | set(self._pending))

    def is_trained(self, name: str) -> bool:
        """Whether ``name``'s optimizer is initialized (False while pending)."""
        if name in self._optimizers:
            return True
        if name in self._pending:
            return False
        raise KeyError(f"unknown predicate {name!r}; "
                       f"registered: {self.predicates()}")

    def optimizer(self, name: str) -> TahomaOptimizer:
        """The (initialized) optimizer for one predicate, training if pending."""
        self._ensure_trained([name])
        try:
            return self._optimizers[name]
        except KeyError:
            raise KeyError(f"unknown predicate {name!r}; "
                           f"registered: {self.predicates()}") from None

    def _train(self, definition: PredicateDefinition) -> None:
        optimizer, _ = initialize_predicate(
            definition.splits, definition.config,
            reference_params=definition.reference_params,
            reference_name=f"reference-{definition.name}",
            train_reference=definition.train_reference,
            reference_model=definition.reference_model,
            rng=np.random.default_rng(definition.seed))
        self._optimizers[definition.name] = optimizer
        self._reference_params[definition.name] = self._build_params(
            definition.reference_params)
        self._maybe_calibrate(optimizer.reference_model)

    def _ensure_trained(self, names) -> None:
        for name in names:
            definition = self._pending.pop(name, None)
            if definition is not None:
                self._train(definition)

    @staticmethod
    def _build_params(reference_params: dict | None) -> dict:
        """The subset of reference params the network *builder* needs."""
        params = reference_params or {}
        return {key: params[key] for key in _REFERENCE_BUILD_KEYS
                if key in params}

    def _maybe_calibrate(self, reference: TrainedModel | None) -> None:
        """Anchor the device rate to the first reference classifier."""
        if (reference is None or self._device_calibrated
                or self.calibrate_target_fps is None):
            return
        self._device = calibrate_device(self._device, reference.flops,
                                        target_fps=self.calibrate_target_fps)
        self._device_calibrated = True

    # -- deployment scenario ---------------------------------------------------
    def use_scenario(self, scenario: Scenario | str | CostProfiler) -> None:
        """Switch the deployment scenario all following queries are priced for.

        Accepts one of the paper's scenario names (``"archive"``, ...), a
        :class:`Scenario`, or a fully built :class:`CostProfiler` for complete
        control over device and resolutions.

        Switching is safe at any time: executors key materialized labels
        by the cascade that produced them, so a newly selected cascade never
        serves another cascade's labels, while switching back to a previous
        scenario reuses its materialized columns.
        """
        self._invalidate_plans()
        if isinstance(scenario, CostProfiler):
            self._profiler_override = scenario
            self._scenario = scenario.scenario
            return
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        self._profiler_override = None
        self._scenario = scenario

    @property
    def scenario(self) -> Scenario:
        return self._scenario

    @property
    def device(self) -> DeviceProfile:
        return self._device

    @property
    def profiler(self) -> CostProfiler:
        """The cost profiler for the active scenario (rebuilt on demand)."""
        if self._profiler_override is not None:
            return self._profiler_override
        source = self._source_resolution
        if source is None and len(self._catalog) > 0:
            first = self._catalog.default_table() or self.tables()[0]
            source = self._catalog.executor(first).corpus.image_size
        if source is None:
            raise RuntimeError("cannot price costs without a corpus; register "
                               "one or pass source_resolution=")
        return CostProfiler(self._device, self._scenario,
                            source_resolution=source,
                            cost_resolution=self.cost_resolution)

    # -- queries ---------------------------------------------------------------
    def _parse(self, sql: str,
               constraints: UserConstraints | None) -> Query:
        # Unknown tables are rejected at plan time, listing the catalog; an
        # empty catalog skips validation so the "no corpus registered" error
        # (not a parse error) surfaces, as in the single-corpus API.
        known = self.tables()
        query = parse_query(sql, constraints=constraints
                            or self.default_constraints,
                            known_tables=known + [FANOUT_TABLE]
                            if known else None)
        self._ensure_trained(predicate.category
                             for predicate in query.content_predicates)
        return query

    def _profiler_for(self, table: str | None) -> CostProfiler:
        """The cost profiler pricing one shard's plan.

        Shards may render at different resolutions; unless the database was
        given an explicit profiler or ``source_resolution``, each table's
        data-handling costs are priced at *its own* corpus resolution.
        """
        if (self._profiler_override is not None
                or self._source_resolution is not None
                or table is None or table not in self._catalog):
            return self.profiler
        return CostProfiler(
            self._device, self._scenario,
            source_resolution=self._catalog.executor(table).corpus.image_size,
            cost_resolution=self.cost_resolution)

    def _planner_for(self, table: str | None) -> QueryPlanner:
        # Selectivity is refreshed from that shard's materialized virtual
        # columns (when a cascade has classified rows already — including
        # rows just ingested) so predicate ordering tracks each shard's
        # corpus, not the balanced eval set.
        hook = None
        if table is not None and table in self._catalog:
            hook = self._catalog.executor(table).observed_positive_rate
        return QueryPlanner(self._optimizers, self._profiler_for(table),
                            selectivity_hook=hook, metrics=self._metrics)

    def _resolve_single_table(self, query: Query) -> str:
        if query.table in self._catalog:
            return query.table
        # Empty catalog: fall through to the executor property so the
        # single-corpus "no corpus registered" RuntimeError is raised.
        self._default_executor()
        raise AssertionError("unreachable")  # pragma: no cover

    def _fanout_targets(self, query: Query,
                        tables: Iterable[str] | None) -> list[str]:
        if tables is not None:
            if query.table != FANOUT_TABLE:
                # Never answer a FROM cam_a query with cam_b's rows: an
                # explicit shard list goes with the virtual fan-out table.
                raise ValueError(
                    f"tables=[...] requires FROM {FANOUT_TABLE}; the query "
                    f"names table {query.table!r}")
            targets = list(tables)
            if not targets:
                raise ValueError("tables=[...] must name at least one "
                                 f"attached table; attached: {self.tables()}")
        else:
            targets = self.tables()
            if not targets:
                raise RuntimeError("no corpus registered; call "
                                   "register_corpus() or pass one to connect()")
        unknown = [name for name in targets if name not in self._catalog]
        if unknown:
            raise KeyError(f"unknown tables {unknown}; "
                           f"attached: {self.tables()}")
        return targets

    def _plan_per_table(self, query: Query, targets: list[str],
                        cached=None) -> dict[str, QueryPlan]:
        """Plan once per shard, with that shard's observed selectivity."""
        return {table: self._planner_for(table).plan(
                    query, table=table,
                    selections=self._selections_from(cached, table))
                for table in targets}

    @staticmethod
    def _selections_from(cached, table: str | None):
        """Per-category cascade choices of a cached plan, for rebinding.

        ``cached`` is the previous plan built for the same query shape — a
        single :class:`QueryPlan` or a fan-out ``{table: plan}`` mapping —
        and supplies the already-selected :class:`ContentStep` per category
        so re-planning with new literals skips cascade selection.
        """
        if cached is None:
            return None
        plan = cached.get(table) if isinstance(cached, dict) else cached
        if plan is None:
            return None
        return {step.category: step for step in plan.content_steps}

    def _plan_query(self, query: Query, tables: Iterable[str] | None,
                    cached=None) -> QueryPlan | dict[str, QueryPlan]:
        """Lower one parsed query to its plan(s); dict means fan-out."""
        if tables is not None or query.table == FANOUT_TABLE:
            targets = self._fanout_targets(query, tables)
            return self._plan_per_table(query, targets, cached=cached)
        table = self._resolve_single_table(query)
        return self._planner_for(table).plan(
            query, table=table,
            selections=self._selections_from(cached, table))

    def _plan_for(self, sql: str, constraints: UserConstraints | None,
                  tables: Iterable[str] | None
                  ) -> QueryPlan | dict[str, QueryPlan]:
        """Resolve ``sql`` to its plan(s), through the plan cache when on.

        Cache policy: queries with an explicit ``tables=[...]`` shard list
        bypass the cache (the list is not part of the SQL text); otherwise
        the key is the normalized query shape plus constraints and scenario.
        An exact repeat (same literals) returns the cached plan without
        parsing; a shape hit with different literals re-parses (cheap) and
        re-plans with the cached cascade selections seeded, skipping the
        expensive Pareto analysis; a miss plans from scratch and populates
        the cache.
        """
        cache = self._plan_cache
        if cache is None or tables is not None:
            return self._plan_query(self._parse(sql, constraints), tables)
        effective = constraints or self.default_constraints
        key, literals = cache.key_for(sql, effective, self._scenario.name)
        status, entry = cache.lookup(key, literals)
        if status == "hit":
            return entry.plans
        cached = entry.plans if status == "rebind" else None
        plans = self._plan_query(self._parse(sql, constraints), None,
                                 cached=cached)
        cache.store(key, literals, plans)
        return plans

    def execute(self, sql: str,
                constraints: UserConstraints | None = None, *,
                tables: Iterable[str] | None = None,
                cancel=None
                ) -> ResultSet | FanoutResultSet | AggregateResultSet | dict:
        """Parse, plan and run one SELECT query, returning a :class:`ResultSet`.

        The dialect supports projection (``SELECT col, ...``), aggregates
        (``COUNT/SUM/AVG/MIN/MAX``), boolean WHERE trees (AND/OR/NOT with
        parentheses), ``GROUP BY``, ``ORDER BY`` and ``LIMIT`` — see
        :mod:`repro.query.sql` for the grammar.  An aggregate query returns
        an :class:`~repro.db.results.AggregateResultSet` of group tuples.

        ``FROM <table>`` routes to that table's executor.  A query against
        the virtual ``all_cameras`` table fans out — across every attached
        table, or just the shards named by ``tables=[...]`` (only valid with
        ``FROM all_cameras``): the planner plans once per shard using that
        shard's observed selectivity, the shards execute concurrently, and
        the merged :class:`~repro.db.results.FanoutResultSet` carries a
        ``__table__`` provenance column plus per-shard ``cascades_used`` and
        ``images_classified``.  A fan-out aggregate merges per-shard
        *partial aggregates* at the coordinator instead of shipping rows.

        ``cancel`` is an optional zero-argument callable checked at chunk
        boundaries during execution; raising from it aborts the query (see
        :meth:`~repro.db.executor.QueryExecutor.execute`).  The network
        server's per-query timeouts are built on it.

        A query prefixed ``EXPLAIN ANALYZE`` executes normally but returns
        the :meth:`explain_analyze` report (a JSON-safe dict) instead of a
        result set.
        """
        self._check_open()
        # Cheap prefix sniff before tokenizing: plan-cache hits must not pay
        # a tokenize pass on every ordinary query.
        if sql.lstrip()[:7].upper() == "EXPLAIN":
            analyze, body = split_explain_analyze(sql)
            if analyze:
                return self._analyze_report(body, constraints, tables=tables,
                                            cancel=cancel)
        result_set, _, _, _, _ = self._execute_traced(sql, constraints,
                                                      tables, cancel)
        return result_set

    def _execute_traced(self, sql: str, constraints, tables, cancel):
        """Plan and run one query under a fresh trace.

        Returns ``(result_set, plans, raw, trace, wall_time_s)`` — ``raw``
        is the executor-level :class:`~repro.query.processor.QueryResult`
        (or ``{table: QueryResult}`` for a fan-out), which still carries the
        per-plan-node measurements ``EXPLAIN ANALYZE`` annotates with.
        """
        trace = self._tracer.trace("query", sql=sql.strip())
        started = time.perf_counter()
        with trace.root as root:
            with root.child("plan"):
                plans = self._plan_for(sql, constraints, tables)
            if isinstance(plans, dict):
                raw = self._fanout_results(plans, cancel=cancel, span=root)
                if next(iter(plans.values())).is_aggregate:
                    result_set = AggregateResultSet.from_fanout(raw, plans)
                else:
                    result_set = FanoutResultSet(raw, plans)
            else:
                executor = self._catalog.executor(plans.table)
                with root.child(f"table:{plans.table}",
                                table=plans.table) as shard_span:
                    raw = executor.execute(plans, cancel=cancel,
                                           span=shard_span)
                result_set = build_result_set(raw, plans)
        wall = time.perf_counter() - started
        root.annotate(rows=len(result_set))
        result_set.attach_stats(trace_id=trace.trace_id, wall_time_s=wall)
        return result_set, plans, raw, trace, wall

    def _fanout_results(self, plans: dict[str, QueryPlan], cancel=None,
                        span=NO_SPAN) -> dict:
        """Run per-shard plans concurrently; ``{table: QueryResult}``.

        Executors are independent (per-table state; the shared store is
        namespace-locked, models compute outputs from locals), so shards run
        on a thread pool — classification is NumPy matmul-bound and releases
        the GIL.  Per-shard spans are created on the coordinator thread and
        handed to the workers explicitly, so the trace tree stays correct
        under fan-out.
        """
        shard_spans = {table: span.child(f"table:{table}", table=table)
                       for table in plans}

        def run_shard(table: str, plan: QueryPlan):
            with shard_spans[table] as shard_span:
                return self._catalog.executor(table).execute(
                    plan, cancel=cancel, span=shard_span)

        workers = min(len(plans), os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="repro-fanout") as pool:
            futures = {table: pool.submit(run_shard, table, plan)
                       for table, plan in plans.items()}
            return {table: future.result()
                    for table, future in futures.items()}

    def _execute_fanout(self, plans: dict[str, QueryPlan], cancel=None
                        ) -> FanoutResultSet | AggregateResultSet:
        """Run per-shard plans concurrently and merge with provenance.

        For an aggregate query each shard returns *partial aggregates*
        (group tuples — COUNT/SUM/MIN/MAX associative states, AVG as
        sum+count) and the coordinator merges them exactly; selected rows
        never cross the shard boundary.
        """
        results = self._fanout_results(plans, cancel=cancel)
        if next(iter(plans.values())).is_aggregate:
            return AggregateResultSet.from_fanout(results, plans)
        return FanoutResultSet(results, plans)

    def explain_analyze(self, sql: str,
                        constraints: UserConstraints | None = None, *,
                        tables: Iterable[str] | None = None,
                        cancel=None) -> dict:
        """Execute ``sql`` and report where its time actually went.

        The query runs exactly as :meth:`execute` would run it (same plan
        cache, same fan-out); the return value is a JSON-safe report instead
        of a result set::

            {"sql": ..., "trace_id": ..., "wall_time_s": ..., "rows": ...,
             "plan": {... per-node "estimated_selectivity" + "actual":
                      {rows_in, rows_out, rows_classified, elapsed_s,
                       actual_selectivity, ...}},
             "spans": {... the query's span tree ...}}

        A fan-out query reports ``"plans"`` — one annotated plan per shard —
        since shards plan (and measure) independently.  ``sql`` may carry
        the ``EXPLAIN ANALYZE`` prefix or be a bare SELECT.
        """
        self._check_open()
        _, body = split_explain_analyze(sql)
        return self._analyze_report(body, constraints, tables=tables,
                                    cancel=cancel)

    def _analyze_report(self, sql: str, constraints, *, tables=None,
                        cancel=None) -> dict:
        """Run the (prefix-stripped) query and build the analyze report."""
        result_set, plans, raw, trace, wall = self._execute_traced(
            sql, constraints, tables, cancel)
        report = {"sql": sql.strip(), "trace_id": trace.trace_id,
                  "wall_time_s": wall, "rows": len(result_set),
                  "spans": trace.to_dict()}
        if isinstance(plans, dict):
            report["plans"] = {
                table: annotate_plan_dict(plan, raw[table].node_stats)
                for table, plan in plans.items()}
        else:
            report["plan"] = annotate_plan_dict(plans, raw.node_stats)
        return report

    def explain(self, sql: str,
                constraints: UserConstraints | None = None, *,
                tables: Iterable[str] | None = None
                ) -> QueryPlan | dict[str, QueryPlan]:
        """The physical plan :meth:`execute` would run, without running it.

        For a fan-out query (``FROM all_cameras`` or ``tables=[...]``)
        returns the per-shard plans as a ``{table: QueryPlan}`` mapping —
        shards can pick different cascade orderings when their observed
        selectivities differ.

        Plans serialize via :meth:`~repro.db.planner.QueryPlan.to_dict` —
        the wire protocol's ``explain`` command ships that JSON form.
        """
        self._check_open()
        return self._plan_for(sql, constraints, tables)

    # -- durability ------------------------------------------------------------
    @property
    def wal_root(self) -> Path | None:
        """The write-ahead-log root directory (``None`` = durability off)."""
        return self._wal_root

    def enable_wal(self, root: str | Path) -> Path:
        """Turn on write-ahead logging under ``root`` and take the first
        checkpoint there.

        After this every mutation — :meth:`ingest` segments, retention drops
        and policy changes, :meth:`attach`/:meth:`detach` — is journaled to
        ``root/wal/<table>/`` *as it happens*, so a process killed between
        checkpoints loses nothing: ``VisualDatabase.load(root)`` restores
        the last checkpoint and replays each table's log tail.  Call
        :meth:`checkpoint` periodically to fold the log back into the
        checkpoint image and keep replay short.

        Enabling trains pending lazy predicates (via the initial checkpoint)
        — recovery must not depend on training state.  Raises
        :class:`RuntimeError` when a WAL is already enabled.
        """
        self._check_open()
        if self._wal_root is not None:
            raise RuntimeError(f"write-ahead log already enabled under "
                               f"{self._wal_root}")
        self._wal_root = Path(root)
        try:
            for name in self.tables():
                # No baseline records: the initial checkpoint below captures
                # the current corpora; the log only carries what follows.
                self._arm_wal(name, baseline=False)
            return self.save(self._wal_root)
        except BaseException:
            for name in self.tables():
                executor = self._catalog.executor(name)
                wal = executor.wal
                if wal is not None:
                    executor.set_wal(None)
                    wal.close()
            self._wal_root = None
            raise

    def checkpoint(self, store_bytes_cap: int | None = None) -> Path:
        """Fold the write-ahead log into a fresh checkpoint image.

        A checkpoint bounds recovery time: the log tail replayed at load
        time only covers mutations since the last checkpoint.  Each table's
        journal rotates at capture time and the absorbed generations are
        pruned once the new manifest is durably on disk — killing the
        process *during* a checkpoint is always recoverable.  Requires
        :meth:`enable_wal` first.
        """
        self._check_open()
        if self._wal_root is None:
            raise RuntimeError("no write-ahead log; call enable_wal(root) "
                               "before checkpoint()")
        return self.save(self._wal_root, store_bytes_cap=store_bytes_cap)

    def compact(self, table: str | None = None,
                min_rows: int | None = None) -> dict[str, int]:
        """Fold small corpus segments together; ``{table: segments_folded}``.

        Streaming ingest leaves each table's corpus as many small immutable
        segments; compaction merges adjacent runs smaller than ``min_rows``
        (``None`` collapses each table to a single segment).  Purely an
        in-memory reorganization: ids, query results and the WAL are
        untouched.  ``table`` restricts the pass to one shard.
        """
        self._check_open()
        targets = [table] if table is not None else self.tables()
        return {name: self._catalog.executor(name).compact(min_rows)
                for name in targets}

    def storage_stats(self) -> dict:
        """Storage-engine counters: per-table segments/WAL depth, store bytes.

        The server's ``stats`` command ships this, so operators can watch
        segment fragmentation (is a ``compact()`` due?) and WAL length (is a
        ``checkpoint()`` due?) per shard.
        """
        return {
            "wal_enabled": self._wal_root is not None,
            "wal_root": (str(self._wal_root)
                         if self._wal_root is not None else None),
            "checkpoints": self._checkpoints,
            "store_bytes": self._catalog.store.total_bytes_stored(),
            "tables": {name: self._catalog.executor(name).stats()
                       for name in self.tables()},
        }

    def _arm_wal(self, name: str, *, baseline: bool) -> None:
        """Open ``name``'s journal and attach it to the executor.

        ``baseline=True`` journals the table's current corpus as an
        ``attach`` record first (a table attached *between* checkpoints
        exists only in the log); ``baseline=False`` is for
        :meth:`enable_wal`, where the initial checkpoint carries the
        corpora.
        """
        from repro.data.corpus import CorpusSegment
        from repro.db.wal import TableWal

        executor = self._catalog.executor(name)
        wal = TableWal(self._wal_root, name, metrics=self._metrics)
        if baseline:
            corpus = executor.corpus
            wal.log_attach(
                CorpusSegment.build(corpus.images, corpus.metadata,
                                    corpus.content),
                id_offset=executor.id_offset)
            if executor.retention is not None:
                wal.log_retention(executor.retention.to_dict())
        executor.set_wal(wal)

    # -- persistence -----------------------------------------------------------
    def save(self, path: str | Path, include_corpus: bool = True,
             store_bytes_cap: int | None = None) -> Path:
        """Persist the whole catalog (optimizers, scenario, tables) to disk.

        Pending lazy predicates are trained first — a saved database is fully
        initialized.  Materialized representation arrays are saved per table
        up to ``store_bytes_cap`` (hottest first), so a reload warm-starts
        without recompute; see :mod:`repro.db.persistence` for the layout.
        Saving a WAL-enabled database into its own WAL root is a
        **checkpoint** (see :meth:`checkpoint`); saving anywhere else writes
        an ordinary standalone copy.
        """
        from repro.db.persistence import save_database

        return save_database(self, path, include_corpus=include_corpus,
                             store_bytes_cap=store_bytes_cap)

    @classmethod
    def load(cls, path: str | Path,
             corpus: ImageCorpus | None = None) -> "VisualDatabase":
        """Restore a database saved with :meth:`save` (no retraining).

        ``corpus`` overrides the stored corpus of a single-table save (e.g.
        when the database was saved with ``include_corpus=False``).
        """
        from repro.db.persistence import load_database

        return load_database(path, corpus=corpus)

    # -- introspection ---------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rows = {name: len(self._catalog.executor(name).corpus)
                for name in self.tables()}
        return (f"VisualDatabase(tables={rows}, "
                f"predicates={self.predicates()}, "
                f"scenario={self._scenario.name!r})")


def connect(corpus: ImageCorpus | Mapping[str, ImageCorpus] | None = None,
            **kwargs) -> VisualDatabase:
    """Open a :class:`VisualDatabase` (DB-API-style entry point).

    ``corpus`` may be a single :class:`~repro.data.corpus.ImageCorpus`
    (registered as the table ``images``) or a ``{name: corpus}`` mapping —
    one table per camera or shard.  Keyword arguments are forwarded to
    :class:`VisualDatabase`.
    """
    return VisualDatabase(corpus, **kwargs)
