"""The connection-style facade: ``repro.db.connect(...)`` and VisualDatabase.

The paper presents TAHOMA as a *visual analytics database*: users write ::

    SELECT * FROM images WHERE location = 'detroit' AND contains_object(bicycle)

and the system hides cascade training, representation choice and
deployment-cost-aware selection.  :class:`VisualDatabase` is that surface.
A typical session::

    db = repro.db.connect(corpus)
    db.register_predicate("bicycle", splits=splits, config=small_config)
    db.use_scenario("archive")
    for row in db.execute("SELECT * FROM images WHERE location = 'detroit' "
                          "AND contains_object(bicycle)"):
        ...
    print(db.explain("SELECT * FROM images WHERE contains_object(bicycle)"))
    db.ingest(new_frames, metadata=new_metadata)   # ONGOING: grows in place
    db.save("my.vdb")

Under the facade, queries flow through the :mod:`repro.query.sql` parser, the
:class:`~repro.db.planner.QueryPlanner` (cascade selection + predicate
ordering) and the :class:`~repro.db.executor.QueryExecutor` (materialized
virtual columns + the shared representation store).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.baselines.reference import train_reference_model
from repro.core.model import TrainedModel
from repro.core.optimizer import TahomaConfig, TahomaOptimizer
from repro.core.selector import UserConstraints
from repro.costs.device import DEFAULT_DEVICE, DeviceProfile, calibrate_device
from repro.costs.profiler import CostProfiler
from repro.costs.scenario import INFER_ONLY, Scenario, get_scenario
from repro.data.corpus import ImageCorpus, PredicateDataSplits
from repro.db.executor import QueryExecutor
from repro.db.planner import QueryPlan, QueryPlanner
from repro.db.results import ResultSet
from repro.query.sql import parse_query

__all__ = ["VisualDatabase", "connect", "PredicateDefinition",
           "initialize_predicate"]

#: ``reference_params`` keys consumed by the network *builder* (and therefore
#: needed again at load time); the rest parameterize training only.
_REFERENCE_BUILD_KEYS = ("base_width", "n_stages", "blocks_per_stage",
                         "dense_units")


def initialize_predicate(splits: PredicateDataSplits,
                         config: TahomaConfig | None = None, *,
                         reference_params: dict | None = None,
                         reference_name: str = "reference",
                         train_reference: bool = True,
                         reference_model: TrainedModel | None = None,
                         rng: np.random.Generator | None = None,
                         ) -> tuple[TahomaOptimizer, TrainedModel | None]:
    """System initialization for one predicate: reference + grid + cascades.

    This is the one place the repository trains a predicate end to end; both
    :meth:`VisualDatabase.register_predicate` and the experiment workspaces
    build on it.

    Parameters
    ----------
    splits:
        Train / configuration / evaluation datasets for the predicate.
    config:
        The optimizer configuration (defaults to the paper's full grids —
        pass a reduced :class:`TahomaConfig` for CPU-scale runs).
    reference_params:
        Keyword arguments for
        :func:`~repro.baselines.reference.train_reference_model`
        (``epochs``, ``base_width``, ``n_stages``, ``blocks_per_stage``, ...).
    reference_model:
        An already-trained reference classifier; skips reference training.
    train_reference:
        Set False to build cascades without a reference tail.
    """
    config = config or TahomaConfig()
    rng = rng if rng is not None else np.random.default_rng(config.training.seed)

    reference = reference_model
    if reference is None and train_reference:
        reference = train_reference_model(
            splits, resolution=splits.train.image_size, name=reference_name,
            rng=rng, **dict(reference_params or {}))

    optimizer = TahomaOptimizer(config)
    optimizer.initialize(splits, reference_model=reference, rng=rng)
    return optimizer, reference


@dataclass
class PredicateDefinition:
    """A registered-but-untrained predicate (``register_predicate(lazy=True)``)."""

    name: str
    splits: PredicateDataSplits
    config: TahomaConfig | None
    reference_params: dict | None
    train_reference: bool
    reference_model: TrainedModel | None
    seed: int


class VisualDatabase:
    """A queryable visual analytics database over one image corpus.

    Parameters
    ----------
    corpus:
        The corpus to query (may also be attached later via
        :meth:`register_corpus`).
    device:
        Base compute-device profile for the analytic cost model.
    scenario:
        Initial deployment scenario (a :class:`Scenario`, one of the paper's
        scenario names, or a fully built :class:`CostProfiler`).
    cost_resolution:
        Resolution at which data-handling costs are priced (the paper's
        224 px camera frames), independent of the corpus rendering size.
    calibrate_target_fps:
        When set, the device is re-calibrated so the first registered
        reference classifier lands at this throughput (the paper's ~75 fps
        ResNet50 anchor).  ``None`` keeps ``device`` as given.
    default_constraints:
        Constraints applied to queries that do not carry their own.
    store_budget:
        Byte budget for the representation store (see
        :class:`~repro.storage.store.RepresentationStore`): a long-lived
        database over a growing corpus holds representation memory constant
        by evicting least-recently-used representations; evicted ones are
        recomputed on demand, so results are unaffected.  ``None`` keeps the
        store unbounded.
    """

    def __init__(self, corpus: ImageCorpus | None = None, *,
                 device: DeviceProfile = DEFAULT_DEVICE,
                 scenario: Scenario | str | CostProfiler = INFER_ONLY,
                 cost_resolution: int = 224,
                 source_resolution: int | None = None,
                 calibrate_target_fps: float | None = 75.0,
                 default_constraints: UserConstraints | None = None,
                 store_budget: int | None = None) -> None:
        self._device = device
        self._device_calibrated = False
        self._scenario: Scenario = INFER_ONLY
        self._profiler_override: CostProfiler | None = None
        self.cost_resolution = cost_resolution
        self._source_resolution = source_resolution
        self.calibrate_target_fps = calibrate_target_fps
        self.default_constraints = default_constraints or UserConstraints()
        self.store_budget = store_budget

        self._executor: QueryExecutor | None = None
        self._optimizers: dict[str, TahomaOptimizer] = {}
        self._pending: dict[str, PredicateDefinition] = {}
        self._reference_params: dict[str, dict] = {}

        if corpus is not None:
            self.register_corpus(corpus)
        self.use_scenario(scenario)

    # -- corpus ---------------------------------------------------------------
    def register_corpus(self, corpus: ImageCorpus) -> None:
        """Attach (or replace) the corpus; query-time caches start fresh."""
        from repro.storage.store import RepresentationStore

        self._executor = QueryExecutor(
            corpus, store=RepresentationStore(byte_budget=self.store_budget))

    def ingest(self, images: np.ndarray,
               metadata: dict[str, np.ndarray] | None = None,
               content: dict[str, np.ndarray] | None = None, *,
               materialize: bool | None = None) -> np.ndarray:
        """Append new frames to the corpus — the paper's ONGOING ingest path.

        Query-time state grows incrementally: already-classified rows are
        never re-classified, so a repeated query after ingest pays only for
        the new frames.  Under a scenario that materializes at ingest
        (ONGOING), every representation the store has registered is extended
        with the new frames now, so queries keep loading representation
        bytes instead of transforming; other scenarios (ARCHIVE, CAMERA)
        stay lazy.  ``materialize`` overrides the scenario's policy.

        Returns the new rows' image ids.
        """
        if materialize is None:
            materialize = self._scenario.materializes_on_ingest
        return self.executor.ingest(images, metadata=metadata,
                                    content=content, materialize=materialize)

    @property
    def corpus(self) -> ImageCorpus:
        if self._executor is None:
            raise RuntimeError("no corpus registered; call register_corpus() "
                               "or pass one to connect()")
        return self._executor.corpus

    @property
    def executor(self) -> QueryExecutor:
        """The query executor (owns materialized columns and the store)."""
        if self._executor is None:
            raise RuntimeError("no corpus registered; call register_corpus() "
                               "or pass one to connect()")
        return self._executor

    # -- predicates ------------------------------------------------------------
    def register_predicate(self, name: str, splits: PredicateDataSplits, *,
                           config: TahomaConfig | None = None,
                           reference_params: dict | None = None,
                           train_reference: bool = True,
                           reference_model: TrainedModel | None = None,
                           lazy: bool = False, seed: int = 0) -> None:
        """Register ``contains_object(name)``: train its cascade machinery.

        With ``lazy=True`` training is deferred until the predicate is first
        used by :meth:`execute` / :meth:`explain` (or :meth:`save`), so a
        database over many predicates only pays for the ones queries touch.
        """
        if name in self._optimizers or name in self._pending:
            raise ValueError(f"predicate {name!r} already registered")
        definition = PredicateDefinition(
            name=name, splits=splits, config=config,
            reference_params=reference_params,
            train_reference=train_reference,
            reference_model=reference_model, seed=seed)
        if lazy:
            self._pending[name] = definition
        else:
            self._train(definition)

    def register_optimizer(self, name: str, optimizer: TahomaOptimizer,
                           reference_params: dict | None = None) -> None:
        """Install an already-initialized optimizer for ``name``.

        ``reference_params`` must carry the reference network's build
        arguments when it was built with non-default parameters, so the
        database can be saved and reloaded.
        """
        if name in self._optimizers or name in self._pending:
            raise ValueError(f"predicate {name!r} already registered")
        self._optimizers[name] = optimizer
        self._reference_params[name] = self._build_params(reference_params)
        self._maybe_calibrate(optimizer.reference_model)

    def predicates(self) -> list[str]:
        """All registered predicate names (trained and pending)."""
        return sorted(set(self._optimizers) | set(self._pending))

    def is_trained(self, name: str) -> bool:
        """Whether ``name``'s optimizer is initialized (False while pending)."""
        if name in self._optimizers:
            return True
        if name in self._pending:
            return False
        raise KeyError(f"unknown predicate {name!r}; "
                       f"registered: {self.predicates()}")

    def optimizer(self, name: str) -> TahomaOptimizer:
        """The (initialized) optimizer for one predicate, training if pending."""
        self._ensure_trained([name])
        try:
            return self._optimizers[name]
        except KeyError:
            raise KeyError(f"unknown predicate {name!r}; "
                           f"registered: {self.predicates()}") from None

    def _train(self, definition: PredicateDefinition) -> None:
        optimizer, _ = initialize_predicate(
            definition.splits, definition.config,
            reference_params=definition.reference_params,
            reference_name=f"reference-{definition.name}",
            train_reference=definition.train_reference,
            reference_model=definition.reference_model,
            rng=np.random.default_rng(definition.seed))
        self._optimizers[definition.name] = optimizer
        self._reference_params[definition.name] = self._build_params(
            definition.reference_params)
        self._maybe_calibrate(optimizer.reference_model)

    def _ensure_trained(self, names) -> None:
        for name in names:
            definition = self._pending.pop(name, None)
            if definition is not None:
                self._train(definition)

    @staticmethod
    def _build_params(reference_params: dict | None) -> dict:
        """The subset of reference params the network *builder* needs."""
        params = reference_params or {}
        return {key: params[key] for key in _REFERENCE_BUILD_KEYS
                if key in params}

    def _maybe_calibrate(self, reference: TrainedModel | None) -> None:
        """Anchor the device rate to the first reference classifier."""
        if (reference is None or self._device_calibrated
                or self.calibrate_target_fps is None):
            return
        self._device = calibrate_device(self._device, reference.flops,
                                        target_fps=self.calibrate_target_fps)
        self._device_calibrated = True

    # -- deployment scenario ---------------------------------------------------
    def use_scenario(self, scenario: Scenario | str | CostProfiler) -> None:
        """Switch the deployment scenario all following queries are priced for.

        Accepts one of the paper's scenario names (``"archive"``, ...), a
        :class:`Scenario`, or a fully built :class:`CostProfiler` for complete
        control over device and resolutions.

        Switching is safe at any time: the executor keys materialized labels
        by the cascade that produced them, so a newly selected cascade never
        serves another cascade's labels, while switching back to a previous
        scenario reuses its materialized columns.
        """
        if isinstance(scenario, CostProfiler):
            self._profiler_override = scenario
            self._scenario = scenario.scenario
            return
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        self._profiler_override = None
        self._scenario = scenario

    @property
    def scenario(self) -> Scenario:
        return self._scenario

    @property
    def device(self) -> DeviceProfile:
        return self._device

    @property
    def profiler(self) -> CostProfiler:
        """The cost profiler for the active scenario (rebuilt on demand)."""
        if self._profiler_override is not None:
            return self._profiler_override
        source = self._source_resolution
        if source is None and self._executor is not None:
            source = self.corpus.image_size
        if source is None:
            raise RuntimeError("cannot price costs without a corpus; register "
                               "one or pass source_resolution=")
        return CostProfiler(self._device, self._scenario,
                            source_resolution=source,
                            cost_resolution=self.cost_resolution)

    # -- queries ---------------------------------------------------------------
    def _plan(self, sql: str,
              constraints: UserConstraints | None) -> QueryPlan:
        query = parse_query(sql, constraints=constraints
                            or self.default_constraints)
        self._ensure_trained(predicate.category
                             for predicate in query.content_predicates)
        # Selectivity is refreshed from materialized virtual columns (when a
        # cascade has classified rows already — including rows just ingested)
        # so predicate ordering tracks the corpus, not the balanced eval set.
        hook = (self._executor.observed_positive_rate
                if self._executor is not None else None)
        planner = QueryPlanner(self._optimizers, self.profiler,
                               selectivity_hook=hook)
        return planner.plan(query)

    def execute(self, sql: str,
                constraints: UserConstraints | None = None) -> ResultSet:
        """Parse, plan and run one SELECT query, returning a :class:`ResultSet`."""
        plan = self._plan(sql, constraints)
        return ResultSet(self.executor.execute(plan), plan)

    def explain(self, sql: str,
                constraints: UserConstraints | None = None) -> QueryPlan:
        """The physical plan :meth:`execute` would run, without running it."""
        return self._plan(sql, constraints)

    # -- persistence -----------------------------------------------------------
    def save(self, path: str | Path, include_corpus: bool = True) -> Path:
        """Persist the whole database (optimizers, scenario, corpus) to disk.

        Pending lazy predicates are trained first — a saved database is fully
        initialized.  See :mod:`repro.db.persistence` for the layout.
        """
        from repro.db.persistence import save_database

        return save_database(self, path, include_corpus=include_corpus)

    @classmethod
    def load(cls, path: str | Path,
             corpus: ImageCorpus | None = None) -> "VisualDatabase":
        """Restore a database saved with :meth:`save` (no retraining).

        ``corpus`` overrides the stored corpus (e.g. when the database was
        saved with ``include_corpus=False``).
        """
        from repro.db.persistence import load_database

        return load_database(path, corpus=corpus)

    # -- introspection ---------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_rows = len(self._executor.corpus) if self._executor else 0
        return (f"VisualDatabase(rows={n_rows}, "
                f"predicates={self.predicates()}, "
                f"scenario={self._scenario.name!r})")


def connect(corpus: ImageCorpus | None = None, **kwargs) -> VisualDatabase:
    """Open a :class:`VisualDatabase` over ``corpus`` (DB-API-style entry point).

    Keyword arguments are forwarded to :class:`VisualDatabase`.
    """
    return VisualDatabase(corpus, **kwargs)
