"""Query execution: runs a physical plan over the corpus.

The executor owns the mutable query-time state the paper's system keeps
between queries:

* the base metadata relation over the corpus,
* the **materialized virtual columns** — once ``contains_object(c)`` has been
  evaluated for a row, the label is kept and later queries never re-classify
  that row — and
* a **shared, persistent** :class:`~repro.storage.store.RepresentationStore`
  holding full-corpus input representations, so a representation computed for
  one predicate (or one query) is reused by every later cascade level,
  predicate and query that consumes the same representation.

Plans come from :class:`~repro.db.planner.QueryPlanner`; the executor never
chooses cascades or orders predicates itself.

Queries run against a **snapshot**: :meth:`execute` captures a frozen view of
the shard (consolidated corpus arrays, base relation, materialized columns,
stored representations, id offset) under the per-shard lock, then evaluates
the plan entirely lock-free, and finally merges what it learned (new
materialized labels, topped-up representations) back under the lock.  Reads
therefore no longer serialize against ``ingest()``/``retain()`` for the
duration of classification — only for the capture and merge instants — and a
query always sees one consistent corpus even while the shard churns.  Merge
maps snapshot rows to current rows through the id-offset shift, so labels
computed for rows retention dropped mid-query are discarded and surviving
rows keep their results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.data.corpus import ImageCorpus
from repro.locking import make_rlock
from repro.query.relation import Relation
from repro.storage.store import RepresentationStore
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import NO_SPAN

from repro.db.planner import (ContentStep, MetadataStep, PlanAnd, PlanNot,
                              PlanOr, QueryPlan)
from repro.db.retention import RetentionPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.db.wal import TableWal
    from repro.query.processor import QueryResult
    from repro.transforms.spec import TransformSpec

__all__ = ["QueryExecutor"]


@dataclass
class _Snapshot:
    """A frozen view of one shard, captured under the lock.

    Every array here is immutable by convention (mutators replace arrays,
    they never write in place), so holding references is safe while the live
    shard moves on.  ``materialized`` / ``reps`` start as shallow copies of
    the live state; execution replaces entries it touches and records the
    keys in ``dirty_materialized`` / ``dirty_reps`` so the merge step knows
    what it learned.
    """

    images: np.ndarray
    relation: Relation
    materialized: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]]
    id_offset: int
    epoch: int
    n: int
    reps: dict[str, tuple["TransformSpec", np.ndarray]]
    dirty_materialized: set[tuple[str, str]] = field(default_factory=set)
    dirty_reps: set[str] = field(default_factory=set)
    registered: list = field(default_factory=list)
    # Per-plan-node execution measurements, keyed by ``id(plan node)``:
    # rows in/out, rows classified, elapsed seconds — accumulated across
    # chunks and surfaced as QueryResult.node_stats (EXPLAIN ANALYZE).
    node_stats: dict = field(default_factory=dict)


class QueryExecutor:
    """Evaluates :class:`~repro.db.planner.QueryPlan` objects over a corpus.

    Parameters
    ----------
    corpus:
        The image corpus with metadata columns.
    store:
        Optional pre-populated representation store (e.g. the paper's ONGOING
        scenario, where representations are materialized at ingest).  A fresh
        store is created when omitted; either way it persists across queries.
    full_materialize_fraction:
        A representation is transformed (and kept) for the *whole* corpus
        only when a query is about to classify at least this fraction of it;
        narrower queries transform just their candidate rows without caching,
        so a needle-in-haystack query never pays O(corpus) transform work.
    min_limit_chunk:
        Chunk size floor for ``LIMIT`` queries: candidate rows are classified
        in chunks of ``max(min_limit_chunk, 4 * limit)`` and execution stops
        as soon as the limit is satisfied, so a selective LIMIT query never
        classifies the whole candidate set.
    table:
        The catalog table this executor backs (purely informational; a
        catalog passes the table name so diagnostics can name the shard).
    retention:
        Optional :class:`~repro.db.retention.RetentionPolicy` making this
        table a sliding window over its feed: the oldest rows are dropped at
        the end of every :meth:`ingest` (and on demand via :meth:`retain`),
        truncating corpus, base relation, materialized virtual columns and
        the store namespace coherently while image ids stay stable.
    """

    def __init__(self, corpus: ImageCorpus,
                 store: RepresentationStore | None = None,
                 full_materialize_fraction: float = 0.5,
                 min_limit_chunk: int = 64,
                 table: str = "",
                 retention: RetentionPolicy | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if len(corpus) == 0:
            raise ValueError("corpus is empty")
        if not 0.0 <= full_materialize_fraction <= 1.0:
            raise ValueError("full_materialize_fraction must be in [0, 1]")
        if min_limit_chunk < 1:
            raise ValueError("min_limit_chunk must be positive")
        self.corpus = corpus
        self.store = store if store is not None else RepresentationStore()
        self.full_materialize_fraction = full_materialize_fraction
        self.min_limit_chunk = min_limit_chunk
        self.table = table
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._execute_seconds = self.metrics.histogram(
            "repro_query_execute_seconds")
        self._snapshot_seconds = self.metrics.histogram(
            "repro_query_snapshot_capture_seconds")
        self._merge_seconds = self.metrics.histogram(
            "repro_query_merge_seconds")
        self._replay_seconds = self.metrics.histogram(
            "repro_wal_replay_seconds")
        self._rows_classified = self.metrics.counter(
            "repro_query_rows_classified_total")
        # One lock per table: ingest and retention on the same shard
        # serialize; queries only take it for snapshot capture and merge
        # (fan-out stays concurrent — each shard has its own lock).  Created
        # before any guarded state so even construction observes the
        # discipline the runtime sanitizer asserts.
        self._lock = make_rlock(f"executor:{table or 'default'}")
        with self._lock:
            self.retention = retention  # guarded by: self._lock
            # Rows ever dropped by retention: stable image id = offset + row
            # position.  Ids survive retention passes and are never reused.
            self._id_offset = 0  # guarded by: self._lock
            # Bumped whenever materialized labels stop being comparable
            # across a capture (invalidate, clear_cache, an id_offset
            # rebase): a snapshot merge from before the bump would write
            # back stale labels, so it aborts instead.  Ingest/retention do
            # NOT bump — the id-offset shift maps snapshot rows onto
            # surviving current rows exactly.
            self._epoch = 0  # guarded by: self._lock
            # Write-ahead log, attached by the database when durability is
            # on.
            self._wal: "TableWal | None" = None  # guarded by: self._lock
            self._rebuild_base_relation()
            # Materialized virtual columns, keyed by (category, cascade
            # name) so labels are only ever served as output of the cascade
            # that produced them (the selected cascade changes with scenario
            # and constraints): (category, cascade) -> (mask, labels).
            self._materialized: dict[  # guarded by: self._lock
                tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}

    def _rebuild_base_relation(self) -> None:
        # metadata_arrays() concatenates the scalar columns without touching
        # the image segments, so the per-ingest rebuild stays O(rows), not
        # O(corpus bytes).
        n = len(self.corpus)
        self._base_relation = Relation(  # guarded by: self._lock
            {**self.corpus.metadata_arrays(),
             "image_id": np.arange(self._id_offset, self._id_offset + n)})

    # -- public API ----------------------------------------------------------
    @property
    def relation(self) -> Relation:
        """The metadata relation (without content columns)."""
        return self._base_relation

    @property
    def id_offset(self) -> int:
        """Image ids ever retired by retention: id = offset + row position."""
        return self._id_offset

    @id_offset.setter
    def id_offset(self, offset: int) -> None:
        if offset < 0:
            raise ValueError(f"id_offset must be non-negative, got {offset}")
        with self._lock:
            self._id_offset = int(offset)
            self._epoch += 1
            self._rebuild_base_relation()

    @property
    def wal(self) -> "TableWal | None":
        """The write-ahead log journaling this shard, if durability is on."""
        return self._wal

    def set_wal(self, wal: "TableWal | None") -> None:
        """Attach (or detach, with ``None``) the shard's write-ahead log.

        Every later mutation is journaled while holding the shard lock, so
        the log order is exactly the apply order.
        """
        with self._lock:
            self._wal = wal

    def ingest(self, images: np.ndarray,
               metadata: dict[str, np.ndarray] | None = None,
               content: dict[str, np.ndarray] | None = None, *,
               materialize: bool = False, span=NO_SPAN) -> np.ndarray:
        """Append new frames and grow query-time state incrementally.

        The batch lands as one immutable corpus segment, the base relation
        gains the new rows, and every materialized virtual column is padded
        with *unevaluated* new rows — existing rows are never re-classified,
        so a repeated query after ingest classifies only the new frames.
        With a write-ahead log attached, the segment is journaled durably
        before the call returns.

        With ``materialize=True`` (the ONGOING scenario) every representation
        the store has registered is brought up to full corpus length by
        transforming just the new frames — queries then load representation
        bytes without transforming.  Otherwise (ARCHIVE and friends) stored
        representations go stale and are topped up lazily the next time a
        query needs them.

        A zero-row batch is a cheap no-op: nothing is rebuilt, the store is
        untouched, and an empty id array comes back.  With a
        :attr:`retention` policy the window is enforced after the append —
        the returned ids are the ones the new rows were assigned, whether or
        not they immediately fall out of the window.

        Returns the new rows' (stable) image ids.
        """
        images = np.asarray(images)
        if images.ndim >= 1 and images.shape[0] == 0:
            return np.array([], dtype=np.int64)
        with self._lock:
            new_ids = self.corpus.append(images, metadata=metadata,
                                         content=content)
            # Journal after the in-memory apply succeeds (validation raised
            # before any state changed), still under the lock so log order
            # is apply order.
            if self._wal is not None:
                with span.child("wal-append", table=self.table,
                                rows=int(new_ids.size)):
                    self._wal.log_segment(self.corpus.segments[-1])
            self._pad_materialized(new_ids.size)
            if materialize:
                for spec in self.store.registered_specs():
                    self._materialize_tail(spec)
            new_ids = new_ids + self._id_offset
            # A retention drop rebuilds the base relation itself; only
            # rebuild here when nothing was dropped, so the hot streaming
            # path pays the O(window) relation construction exactly once.
            if self.retain() == 0:
                self._rebuild_base_relation()
            return new_ids

    def _pad_materialized(self, n_new: int) -> None:
        """Extend every materialized column with unevaluated new rows."""
        for key, (evaluated, labels) in self._materialized.items():
            self._materialized[key] = (
                np.concatenate([evaluated, np.zeros(n_new, dtype=bool)]),
                np.concatenate([labels, np.zeros(n_new, dtype=np.int64)]))

    def set_retention(self, policy: RetentionPolicy | None) -> None:
        """Swap the shard's retention policy (journaled when a WAL is on)."""
        with self._lock:
            self.retention = policy
            if self._wal is not None:
                self._wal.log_retention(
                    policy.to_dict() if policy is not None else None)

    def retain(self) -> int:
        """Enforce :attr:`retention` now; returns rows dropped (0, no policy)."""
        with self._lock:
            # Snapshot under the lock: set_retention() may swap (or clear)
            # the policy from another thread at any time.
            policy = self.retention
            if policy is None:
                return 0
            return self.drop_oldest(policy.rows_to_drop(self.corpus))

    def drop_oldest(self, n: int) -> int:
        """Drop the ``n`` oldest rows from *all* per-table state coherently.

        The corpus pops whole leading segments (splitting only the boundary
        one), the base relation is rebuilt, every materialized
        ``(evaluated, labels)`` column is truncated, and the store namespace
        trims its representation chunks in step (crediting the freed bytes
        against the global budget).  Image ids stay stable: the id offset
        advances by the rows dropped, so surviving rows keep their ids (a
        repeated query never re-classifies them) and dropped ids are never
        reused.  With a write-ahead log attached the drop is journaled.
        Returns the number of rows actually dropped.
        """
        with self._lock:
            n = self._drop_rows(n)
            if n:
                self._rebuild_base_relation()
            return n

    def _drop_rows(self, n: int) -> int:
        """Apply a drop to corpus/materialized/store without the relation
        rebuild (callers batch the rebuild; WAL replay applies many drops)."""
        n = self.corpus.drop_oldest(n)
        if n == 0:
            return 0
        if self._wal is not None:
            self._wal.log_drop(n)
        self._id_offset += n
        for key, (evaluated, labels) in self._materialized.items():
            self._materialized[key] = (evaluated[n:].copy(),
                                       labels[n:].copy())
        self.store.drop_oldest_rows(n)
        return n

    def compact(self, min_rows: int | None = None) -> int:
        """Fold small corpus segments together; returns segments folded away.

        Purely an in-memory reorganization — row order, ids, materialized
        labels and the WAL are untouched (the log already holds the segment
        history; replay consolidates through the same lazy collapse).
        """
        with self._lock:
            return self.corpus.compact(min_rows)

    def replay_wal(self, records: list[dict]) -> None:
        """Re-apply journaled mutations after a checkpoint restore.

        ``records`` come from :meth:`repro.db.wal.TableWal.records` — segment
        appends, retention drops and policy changes, in log order.  Replay
        mirrors the live mutation path (same id arithmetic, same truncation)
        but batches the base-relation rebuild, so replaying a long tail is
        O(total rows), not O(records × rows).  Journaling is suspended while
        replaying — the log already holds these records.
        """
        started = time.perf_counter()
        with self._lock:
            wal, self._wal = self._wal, None
            try:
                for record in records:
                    kind = record["type"]
                    if kind == "segment":
                        segment = record["segment"]
                        self.corpus.append(segment.images, segment.metadata,
                                           segment.content)
                        self._pad_materialized(len(segment))
                    elif kind == "drop":
                        self._drop_rows(int(record["rows"]))
                    elif kind == "retention":
                        policy = record.get("policy")
                        self.retention = (RetentionPolicy.from_dict(policy)
                                          if policy is not None else None)
                    # attach/detach records are handled a level up (they
                    # create or remove whole tables); unknown types from a
                    # newer writer are ignored rather than fatal.
            finally:
                self._wal = wal
            self._rebuild_base_relation()
        self._replay_seconds.observe(time.perf_counter() - started,
                                     table=self.table or "-")

    def materialized_categories(self) -> list[str]:
        """Categories with at least one row's virtual column materialized."""
        with self._lock:
            return sorted({category for category, _ in self._materialized})

    def observed_positive_rate(self, category: str,
                               cascade_name: str | None = None) -> float | None:
        """Corpus-calibrated selectivity from materialized virtual columns.

        The fraction of already-classified rows labeled positive — by the
        named cascade, or pooled over every cascade that has classified rows
        for ``category``.  ``None`` when no rows have been classified; the
        planner then falls back to the evaluation-set estimate.
        """
        evaluated_total, positive_total = 0, 0
        with self._lock:
            materialized = list(self._materialized.items())
        for (cat, cascade), (evaluated, labels) in materialized:
            if cat != category:
                continue
            if cascade_name is not None and cascade != cascade_name:
                continue
            evaluated_total += int(evaluated.sum())
            positive_total += int(labels[evaluated].sum())
        if evaluated_total == 0:
            return None
        return positive_total / evaluated_total

    def invalidate(self, category: str | None = None) -> None:
        """Drop materialized virtual columns, keeping stored representations.

        Use when a predicate's optimizer changes and labels must be
        recomputed; the representation store stays warm because
        representations depend only on the corpus.  (Scenario or constraint
        switches need no invalidation — materialized labels are keyed by the
        cascade that produced them.)  In-flight snapshot queries from before
        the invalidation abort their merge instead of resurrecting labels.
        """
        with self._lock:
            if category is None:
                self._materialized.clear()
            else:
                for key in [key for key in self._materialized
                            if key[0] == category]:
                    del self._materialized[key]
            self._epoch += 1

    def clear_cache(self) -> None:
        """Drop materialized virtual columns and stored representations.

        The store's tier, byte budget and ingest-time registrations are
        kept — only the cached arrays are released.
        """
        with self._lock:
            self._materialized.clear()
            self.store.clear()
            self._epoch += 1

    def stats(self) -> dict:
        """Storage-engine counters for this shard (stats endpoints)."""
        with self._lock:
            return {
                "rows": len(self.corpus),
                "id_offset": self._id_offset,
                "segments": self.corpus.segment_count,
                "materialized_columns": len(self._materialized),
                "store_arrays": len(self.store),
                "wal_records": (self._wal.record_count()
                                if self._wal is not None else None),
            }

    def execute(self, plan: QueryPlan,
                cancel: "Callable[[], None] | None" = None,
                span=NO_SPAN) -> "QueryResult":
        """Run the plan: metadata filters, then cost-ordered content steps.

        Execution is snapshot-based: the shard's state is captured under the
        lock, the plan runs lock-free against the frozen view, and new labels
        / representations merge back under the lock afterwards (also on
        abort, so a cancelled query keeps the work its completed chunks
        paid for).  Concurrent ``ingest()``/``retain()`` never change what
        this query sees or returns.

        With a ``LIMIT``, candidate rows are classified in chunks (in corpus
        order) and execution stops once enough rows survive, so selective
        limited queries pay for a fraction of the candidate set.  Early stop
        is disabled under aggregates and ORDER BY
        (:attr:`~repro.db.planner.QueryPlan.allow_early_stop`), where the
        limit applies to the final groups / sorted rows instead.

        A plan carrying a boolean :attr:`~repro.db.planner.QueryPlan
        .predicate_tree` is evaluated with mask-based short-circuiting: an
        AND child only sees rows every earlier child accepted, an OR child
        only classifies rows the earlier (cheaper) children left undecided.
        For an aggregate plan the result additionally carries per-shard
        partial aggregates (:class:`~repro.db.aggregates.GroupedPartials`).

        ``cancel``, when given, is called once before execution starts and
        again before every candidate chunk; raising from it aborts the query
        between chunks (the serving layer's per-query timeout).  A
        cancellable query is always chunked — even without a ``LIMIT`` —
        so unbounded scans still hit cancellation points; chunk boundaries
        are the abort granularity, so a single in-flight chunk always runs
        to completion.

        ``span``, when given, receives ``snapshot-capture`` / ``execute`` /
        ``merge`` children (and, under ``execute``, one child per content
        predicate with rows in/out); the same timings land on the
        ``repro_query_*_seconds`` histograms either way.
        """
        table = self.table or plan.table or "-"
        started = time.perf_counter()
        with span.child("snapshot-capture", table=table):
            capture_started = time.perf_counter()
            snapshot = self._capture_snapshot()
            self._snapshot_seconds.observe(
                time.perf_counter() - capture_started, table=table)
        try:
            with span.child("execute", table=table) as execute_span:
                return self._execute_snapshot(snapshot, plan, cancel,
                                              span=execute_span)
        finally:
            with span.child("merge", table=table):
                merge_started = time.perf_counter()
                self._merge_snapshot(snapshot)
                self._merge_seconds.observe(
                    time.perf_counter() - merge_started, table=table)
            self._execute_seconds.observe(time.perf_counter() - started,
                                          table=table)

    # -- snapshot lifecycle --------------------------------------------------
    def _capture_snapshot(self) -> _Snapshot:
        """Freeze the shard's current state for lock-free execution."""
        with self._lock:
            images = self.corpus.images  # consolidates segments under the lock
            reps = {spec.name: (spec, array)
                    for spec, array in self.store.arrays_by_recency()}
            return _Snapshot(images=images, relation=self._base_relation,
                             materialized=dict(self._materialized),
                             id_offset=self._id_offset, epoch=self._epoch,
                             n=int(images.shape[0]), reps=reps)

    def _merge_snapshot(self, snap: _Snapshot) -> None:
        """Fold what a snapshot query learned back into the live shard.

        Snapshot row ``shift + j`` is current row ``j`` (``shift`` = rows
        retention dropped since capture), so results for surviving rows are
        kept and results for dropped rows fall away.  If the epoch moved
        (invalidate / clear_cache / id rebase) the merge aborts: labels from
        before the bump are no longer trustworthy.
        """
        with self._lock:
            if self._epoch != snap.epoch:
                return
            shift = self._id_offset - snap.id_offset
            if shift < 0:  # pragma: no cover - rebases bump the epoch
                return
            n_cur = len(self.corpus)
            for key in snap.dirty_materialized:
                snap_eval, snap_labels = snap.materialized[key]
                usable = min(snap_eval.shape[0] - shift, n_cur)
                if usable <= 0:
                    continue
                current = self._materialized.get(key)
                if current is None:
                    cur_eval = np.zeros(n_cur, dtype=bool)
                    cur_labels = np.zeros(n_cur, dtype=np.int64)
                elif current[0].shape[0] != n_cur:  # pragma: no cover
                    continue
                else:
                    cur_eval, cur_labels = current
                newly = snap_eval[shift:shift + usable] & ~cur_eval[:usable]
                if not newly.any():
                    continue
                merged_eval = cur_eval.copy()
                merged_labels = cur_labels.copy()
                merged_eval[:usable] |= snap_eval[shift:shift + usable]
                merged_labels[:usable] = np.where(
                    newly, snap_labels[shift:shift + usable],
                    cur_labels[:usable])
                self._materialized[key] = (merged_eval, merged_labels)
            for name in snap.dirty_reps:
                spec, array = snap.reps[name]
                usable = min(int(array.shape[0]) - shift, n_cur)
                if usable <= 0:
                    continue
                # Only write back when the snapshot array covers more rows
                # than the live entry — a concurrent materializing ingest may
                # have raced ahead of this query.
                if self.store.rows(spec) < usable:
                    self.store.add(spec, array[shift:shift + usable])
            for spec in snap.registered:
                self.store.register(spec)

    @staticmethod
    def _accumulate(node_stats: dict, node, rows_in: int, rows_out: int,
                    rows_classified: int, elapsed_s: float, **extra) -> None:
        """Fold one evaluation of a plan node into its per-query stats entry.

        A node can run many times per query (once per chunk); the entry sums
        across runs and keeps the derived actual selectivity current.
        """
        entry = node_stats.setdefault(id(node), {
            "rows_in": 0, "rows_out": 0, "rows_classified": 0,
            "elapsed_s": 0.0})
        entry["rows_in"] += int(rows_in)
        entry["rows_out"] += int(rows_out)
        entry["rows_classified"] += int(rows_classified)
        entry["elapsed_s"] += float(elapsed_s)
        for key, value in extra.items():
            entry[key] = entry.get(key, 0) + value
        entry["actual_selectivity"] = (
            entry["rows_out"] / entry["rows_in"] if entry["rows_in"]
            else None)

    def _execute_snapshot(self, snap: _Snapshot, plan: QueryPlan,
                          cancel: "Callable[[], None] | None" = None,
                          span=NO_SPAN) -> "QueryResult":
        from repro.db.aggregates import compute_partials
        from repro.query.processor import QueryResult

        if cancel is not None:
            # A query that sat in the admission queue past its deadline (or
            # waited on this shard's lock) aborts before any work happens.
            cancel()
        n = snap.n
        # Under aggregates/ORDER BY the limit caps the *final* output, not
        # the scan: every candidate row must be evaluated first.
        limit = plan.limit if plan.allow_early_stop else None

        # Metadata leaf masks are evaluated once per query (keyed by node
        # identity) and sliced per chunk — a LIMIT query over many chunks
        # must not re-evaluate full-corpus metadata predicates per chunk.
        metadata_masks: dict[int, np.ndarray] = {}
        node_stats = snap.node_stats
        table = self.table or plan.table or "-"
        if plan.predicate_tree is None:
            mask = np.ones(n, dtype=bool)
            for step in plan.metadata_steps:
                rows_in = int(mask.sum())
                step_started = time.perf_counter()
                mask &= step.predicate.evaluate(snap.relation)
                self._accumulate(node_stats, step, rows_in, int(mask.sum()),
                                 0, time.perf_counter() - step_started)
            candidates = np.where(mask)[0]
        else:
            # Top-level AND metadata children are a conjunctive prefilter:
            # apply them up front so chunking walks the surviving rows only,
            # exactly like the flat conjunctive path.
            mask = np.ones(n, dtype=bool)
            if isinstance(plan.predicate_tree, PlanAnd):
                for child in plan.predicate_tree.children:
                    if isinstance(child, MetadataStep):
                        mask &= self._metadata_mask(snap, child,
                                                    metadata_masks)
            candidates = np.where(mask)[0]

        # LIMIT 0 is unconditionally empty output — even under ORDER BY or
        # aggregates (zero rows / zero groups survive the final truncation),
        # so never pay for a scan or a single classification.
        if plan.limit == 0:
            chunks = []
        elif not plan.content_steps or (limit is None and cancel is None):
            chunks = [candidates]
        else:
            # A cancellable query chunks even without a LIMIT, so unbounded
            # scans reach cancellation points between chunks.
            size = (max(self.min_limit_chunk, 4 * limit)
                    if limit is not None else self.min_limit_chunk)
            chunks = [candidates[start:start + size]
                      for start in range(0, candidates.size, size)]

        cascades_used = {step.category: step.evaluation
                         for step in plan.content_steps}
        images_classified = {step.category: 0 for step in plan.content_steps}
        survivors: list[np.ndarray] = []
        n_selected = 0
        for chunk in chunks:
            if cancel is not None:
                cancel()
            chunk_mask = np.zeros(n, dtype=bool)
            chunk_mask[chunk] = True
            if plan.predicate_tree is None:
                for step in plan.content_steps:
                    rows_in = int(chunk_mask.sum())
                    step_started = time.perf_counter()
                    labels, n_classified = self._evaluate_content(snap, step,
                                                                  chunk_mask)
                    images_classified[step.category] += n_classified
                    chunk_mask &= labels.astype(bool)
                    self._accumulate(node_stats, step, rows_in,
                                     int(chunk_mask.sum()), n_classified,
                                     time.perf_counter() - step_started)
                    if n_classified:
                        self._rows_classified.inc(n_classified, table=table,
                                                  category=step.category)
            else:
                chunk_mask = self._evaluate_tree(snap, plan.predicate_tree,
                                                 chunk_mask,
                                                 images_classified,
                                                 metadata_masks)
            surviving = np.where(chunk_mask)[0]
            survivors.append(surviving)
            n_selected += surviving.size
            if limit is not None and n_selected >= limit:
                break

        selected = (np.concatenate(survivors) if survivors
                    else np.array([], dtype=np.int64))
        if limit is not None:
            selected = selected[:limit]
        final_mask = np.zeros(n, dtype=bool)
        final_mask[selected] = True

        # A short-circuited OR can select rows without evaluating every
        # cascade.  Any content column the SELECT / GROUP BY / ORDER BY
        # stages consume must hold real labels for every selected row, so
        # classify the gap now (bounded by the selected rows); columns only
        # exposed by SELECT * instead mark unevaluated rows with -1.
        if selected.size:
            referenced = plan.referenced_columns()
            for step in plan.content_steps:
                if step.predicate.column_name in referenced:
                    gap_started = time.perf_counter()
                    _, n_classified = self._evaluate_content(snap, step,
                                                             final_mask)
                    images_classified[step.category] += n_classified
                    if n_classified:
                        self._accumulate(
                            node_stats, step, 0, 0, n_classified,
                            time.perf_counter() - gap_started)
                        self._rows_classified.inc(n_classified, table=table,
                                                  category=step.category)

        # Content columns are rebuilt from the materialized state: real
        # labels where a cascade evaluated the row (this query or an earlier
        # one), -1 where it never did — a decided OR can select rows no
        # cascade ever saw.
        relation = snap.relation
        for step in plan.content_steps:
            key = (step.category, step.evaluation.cascade.name)
            entry = snap.materialized.get(key)
            if entry is None:
                column = np.full(n, -1, dtype=np.int64)
            else:
                evaluated, labels = entry
                column = np.where(evaluated, labels, -1)
            relation = relation.with_column(step.predicate.column_name,
                                            column)
        selected_relation = relation.filter(final_mask)
        partials = None
        if plan.is_aggregate:
            partials = compute_partials(selected_relation, plan.aggregates,
                                        plan.group_by)
        # One span per content predicate, carrying the accumulated per-node
        # measurements (rows in/out, classified, elapsed) so the trace tree
        # mirrors the plan's cascade structure.
        for step in plan.content_steps:
            stats = node_stats.get(id(step))
            if stats:
                step_span = span.child(f"cascade:{step.category}",
                                       cascade=step.evaluation.name)
                step_span.annotate(**stats)
        if plan.predicate_tree is not None:
            tree_stats = node_stats.get(id(plan.predicate_tree))
            if tree_stats and "short_circuit_rows_saved" in tree_stats:
                span.annotate(short_circuit_rows_saved=tree_stats[
                    "short_circuit_rows_saved"])
        span.annotate(rows_selected=int(selected.size),
                      images_classified=dict(images_classified))

        # Selected indices are *stable* image ids (offset + row position),
        # matching the relation's image_id column across retention passes.
        return QueryResult(relation=selected_relation,
                           selected_indices=selected + snap.id_offset,
                           cascades_used=cascades_used,
                           images_classified=images_classified,
                           partials=partials,
                           node_stats=dict(node_stats))

    def _metadata_mask(self, snap: _Snapshot, step: MetadataStep,
                       cache: dict[int, np.ndarray]) -> np.ndarray:
        # shape: -> (S,)
        # dtype: bool
        """One metadata leaf's full-corpus mask, evaluated once per query."""
        mask = cache.get(id(step))
        if mask is None:
            mask = step.predicate.evaluate(snap.relation)
            cache[id(step)] = mask
        return mask

    def _evaluate_tree(self, snap: _Snapshot, node, mask: np.ndarray,
                       images_classified: dict[str, int],
                       metadata_masks: dict[int, np.ndarray]) -> np.ndarray:
        # shape: (S,) -> (S,)
        # dtype: bool
        """Short-circuit one predicate-tree node over the rows in ``mask``.

        Returns the mask of rows in ``mask`` the node accepts.  Only rows
        still undecided reach a cascade: an AND child sees the rows every
        earlier child accepted, an OR child the rows every earlier child
        failed to decide — so in ``cheap OR cascade`` the cascade classifies
        exactly the rows the cheap side left undecided.
        """
        node_stats = snap.node_stats
        rows_in = int(mask.sum())
        started = time.perf_counter()
        if isinstance(node, MetadataStep):
            accepted = mask & self._metadata_mask(snap, node, metadata_masks)
            self._accumulate(node_stats, node, rows_in, int(accepted.sum()),
                             0, time.perf_counter() - started)
            return accepted
        if isinstance(node, ContentStep):
            if not mask.any():
                return mask
            labels, n_classified = self._evaluate_content(snap, node, mask)
            images_classified[node.category] += n_classified
            accepted = mask & labels.astype(bool)
            self._accumulate(node_stats, node, rows_in, int(accepted.sum()),
                             n_classified, time.perf_counter() - started)
            if n_classified:
                self._rows_classified.inc(
                    n_classified, table=self.table or "-",
                    category=node.category)
            return accepted
        if isinstance(node, PlanAnd):
            accepted = mask
            for child in node.children:
                accepted = self._evaluate_tree(snap, child, accepted,
                                               images_classified,
                                               metadata_masks)
                if not accepted.any():
                    break
            self._accumulate(node_stats, node, rows_in, int(accepted.sum()),
                             0, time.perf_counter() - started)
            return accepted
        if isinstance(node, PlanOr):
            decided = np.zeros_like(mask)
            undecided = mask.copy()
            # Rows an earlier (cheaper) disjunct decided are never handed to
            # a later child — the per-node stats report that saving.
            saved = 0
            for index, child in enumerate(node.children):
                if index:
                    saved += rows_in - int(undecided.sum())
                child_mask = self._evaluate_tree(snap, child, undecided,
                                                 images_classified,
                                                 metadata_masks)
                decided |= child_mask
                undecided &= ~child_mask
                if not undecided.any():
                    break
            self._accumulate(node_stats, node, rows_in, int(decided.sum()),
                             0, time.perf_counter() - started,
                             short_circuit_rows_saved=saved)
            return decided
        if isinstance(node, PlanNot):
            accepted = mask & ~self._evaluate_tree(snap, node.child, mask,
                                                   images_classified,
                                                   metadata_masks)
            self._accumulate(node_stats, node, rows_in, int(accepted.sum()),
                             0, time.perf_counter() - started)
            return accepted
        raise TypeError(f"not a plan node: {node!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"table={self.table!r}, " if self.table else ""
        return (f"QueryExecutor({label}rows={len(self.corpus)}, "
                f"materialized={self.materialized_categories()})")

    # -- internals -----------------------------------------------------------
    def _evaluate_content(self, snap: _Snapshot, step: ContentStep,
                          candidate_mask: np.ndarray) -> tuple[np.ndarray, int]:
        # shape: (S,) -> (S,)
        # dtype: int64
        """Populate the virtual column for one contains_object predicate.

        Only rows surviving the earlier predicates (and not already
        materialized by an earlier query *with the same cascade*) are
        classified.  Keying by cascade guarantees the returned labels are
        always the output of the cascade the plan reports in
        ``cascades_used``, even across scenario or constraint changes.
        Updates land in the snapshot; the merge step folds them into the
        live shard.
        """
        n = snap.n
        key = (step.category, step.evaluation.cascade.name)
        evaluated_mask, labels = snap.materialized.get(
            key, (np.zeros(n, dtype=bool), np.zeros(n, dtype=np.int64)))

        to_classify = candidate_mask & ~evaluated_mask
        n_classified = int(to_classify.sum())
        if n_classified > 0:
            new_labels = step.evaluation.cascade.classify(
                snap.images[to_classify],
                store=self._subset_store(snap, step, to_classify),
                metrics=self.metrics)
            labels = labels.copy()
            labels[to_classify] = new_labels
            evaluated_mask = evaluated_mask | to_classify
            snap.materialized[key] = (evaluated_mask, labels)
            snap.dirty_materialized.add(key)

        return labels, n_classified

    def _materialize_tail(self, spec) -> None:
        """Bring one registered representation up to corpus length at ingest.

        The hot path transforms only the new frames and appends them as a
        chunk (O(batch)); the full array is rebuilt only when the entry was
        evicted — and on that path the spec is (re-)registered.
        """
        n = len(self.corpus)
        stored = self.store.rows(spec)
        if 0 < stored <= n:
            if stored == n:
                return
            tail = spec.apply_batch(self.corpus.images_from(stored))
            try:
                self.store.append_rows(spec, tail)
                return
            except KeyError:
                pass  # evicted between the check and the append — rebuild
        self.store.add(spec, spec.apply_batch(self.corpus.images))
        self.store.register(spec)

    def _full_representation(self, snap: _Snapshot, spec, *,
                             materialize: bool):
        """The snapshot-length array for ``spec``, or None when staying lazy.

        Captured arrays shorter than the snapshot (rows ingested since they
        were built) are topped up by transforming just the missing tail.
        Missing arrays are built snapshot-wide only when ``materialize`` —
        and then registered at merge time, so ONGOING ingest keeps extending
        them for future frames.  All updates stay in the snapshot until the
        merge writes them back shift-adjusted; the shared store is never
        touched mid-query.
        """
        entry = snap.reps.get(spec.name)
        if entry is not None:
            _, array = entry
            n_stored = int(array.shape[0])
            if n_stored < snap.n:
                tail = spec.apply_batch(snap.images[n_stored:])
                array = np.concatenate([array, tail])
                snap.reps[spec.name] = (spec, array)
                snap.dirty_reps.add(spec.name)
            return array
        if materialize:
            array = spec.apply_batch(snap.images)
            snap.reps[spec.name] = (spec, array)
            snap.dirty_reps.add(spec.name)
            snap.registered.append(spec)
            return array
        return None

    def _subset_store(self, snap: _Snapshot, step: ContentStep,
                      to_classify: np.ndarray) -> RepresentationStore:
        """A store seeded with the candidate rows of each needed representation.

        The persistent store holds *full-corpus* representations (so they can
        be sliced for any future candidate set); the cascade receives a
        per-call view store holding only the rows it will classify, since
        ``Cascade.classify`` indexes representations by batch position.

        Already-captured representations are always sliced (topped up first
        if ingest left them short).  Missing ones are materialized
        snapshot-wide only when the candidate set is large enough
        (``full_materialize_fraction``); otherwise they are left out and the
        cascade transforms just the candidate rows, lazily, for the levels it
        actually reaches.
        """
        n_candidates = int(to_classify.sum())
        materialize = (n_candidates
                       >= self.full_materialize_fraction * snap.n)
        scratch = RepresentationStore(tier=self.store.tier)
        for model in step.evaluation.cascade.models:
            spec = model.transform
            full = self._full_representation(snap, spec,
                                             materialize=materialize)
            if full is not None:
                scratch.add(spec, full[to_classify])
        return scratch
