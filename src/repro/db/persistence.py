"""Whole-database persistence: checkpoints, WAL replay, and plain saves.

Built on :mod:`repro.core.persistence` (the per-predicate model repository),
plus a database-level manifest carrying the deployment scenario, device
profile and the table catalog.  Layout (format version 4)::

    <root>/
      database.json            # manifest: scenario, device, predicates,
                               # store budget, per-table entries, WAL state
      predicates/<name>/       # one model repository per predicate
        repository.json
        weights/*.npz
      tables/<table>/ckpt-<k>/ # table image version k (manifest-referenced)
        corpus.npz             # images + metadata + content (optional)
        materialized.npz       # materialized virtual columns (optional)
        store.npz              # representation arrays (optional, size-capped)
      wal/<table>/             # write-ahead log (WAL-enabled databases only)
        log-<g>.jsonl          # generation g of the table's journal
        seg-<g>-<n>.npz        # segment payloads referenced by the log

A trained database therefore round-trips without retraining: all optimizers,
the active scenario, every table's corpus (including rows added by
``db.ingest``), the store's byte budget, ingest-time registrations and
materialized virtual columns come back — a reloaded database answers the
same queries with identical results and without re-classifying rows
classified before the save.  Representation arrays are persisted per table
(hottest first, up to a byte cap), so a reload *warm-starts*: queries load
representation bytes instead of re-transforming the corpus.  Arrays that
were evicted or fell over the cap are simply recomputed on demand — results
are unaffected.

Format 4 is the durability format: :func:`save_database` captures each
table under its shard lock (a save taken under live server traffic is
internally consistent), and a save into a WAL-enabled database's own root is
a **checkpoint** — each table's journal is rotated to a fresh generation
*before* any file is written, the manifest records the new generation, and
only then are the absorbed generations pruned.  :func:`load_database` of a
WAL-enabled save restores the checkpoint image and **replays** each table's
log tail (segments ingested, retention drops, policy changes, tables
attached or detached since the checkpoint), then re-arms journaling — so a
process killed at an arbitrary WAL record boundary recovers to exactly the
state the log had made durable, with stable ids and materialized labels
intact.  Checkpoints never overwrite the previous image: each save writes
its table files into a fresh ``tables/<table>/ckpt-<k>/`` directory (for a
checkpoint, fsynced before the manifest moves), the manifest — itself
written atomically (temp file + ``os.replace``) — references that version,
and only once the new manifest is durably in place are the superseded image
directories and absorbed WAL generations deleted.  A crash at any point
mid-checkpoint therefore leaves the previous manifest pointing at its own
intact image files and at a generation floor whose logs are still on disk.

Format 3 (no WAL; retention + stable-id offsets per table), format 2
(predates retention) and format-1 single-corpus saves all still load.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from repro.core.persistence import load_optimizer, save_optimizer
from repro.core.selector import UserConstraints
from repro.costs.device import DeviceProfile
from repro.costs.scenario import Scenario
from repro.data.corpus import ImageCorpus
from repro.db.catalog import DEFAULT_TABLE
from repro.db.database import VisualDatabase
from repro.db.retention import RetentionPolicy
from repro.storage.tiers import StorageTier
from repro.transforms.spec import TransformSpec

__all__ = ["save_database", "load_database", "DEFAULT_STORE_BYTES_CAP"]

_FORMAT_VERSION = 4
_LOADABLE_VERSIONS = (2, 3, 4)

_MANIFEST_FILE = "database.json"
_PREDICATES_DIR = "predicates"
_TABLES_DIR = "tables"
_CORPUS_FILE = "corpus.npz"
_MATERIALIZED_FILE = "materialized.npz"
_STORE_FILE = "store.npz"
_IMAGE_DIR_RE = re.compile(r"^ckpt-(\d+)$")

#: Default on-disk byte cap for persisted representation arrays, shared by
#: the whole catalog.  Arrays beyond the cap (coldest first) are skipped and
#: recomputed lazily after a load.
DEFAULT_STORE_BYTES_CAP = 256 * 2 ** 20


# -- component (de)serialization ------------------------------------------------
def _tier_to_dict(tier: StorageTier) -> dict:
    return {"name": tier.name,
            "bandwidth_bytes_per_s": tier.bandwidth_bytes_per_s,
            "latency_s": tier.latency_s}


def _scenario_to_dict(scenario: Scenario) -> dict:
    return {"name": scenario.name,
            "include_load": scenario.include_load,
            "include_transform": scenario.include_transform,
            "load_full_image": scenario.load_full_image,
            "load_tier": _tier_to_dict(scenario.load_tier),
            "compressed": scenario.compressed,
            "description": scenario.description}


def _scenario_from_dict(data: dict) -> Scenario:
    data = dict(data)
    data["load_tier"] = StorageTier(**data["load_tier"])
    return Scenario(**data)


def _device_to_dict(device: DeviceProfile) -> dict:
    return {"name": device.name,
            "flops_per_second": device.flops_per_second,
            "transform_seconds_per_value": device.transform_seconds_per_value,
            "inference_overhead_s": device.inference_overhead_s}


def _constraints_to_dict(constraints: UserConstraints) -> dict:
    return {"max_accuracy_loss": constraints.max_accuracy_loss,
            "min_throughput": constraints.min_throughput}


def _spec_to_dict(spec: TransformSpec) -> dict:
    return {"resolution": spec.resolution, "color_mode": spec.color_mode,
            "resize_mode": spec.resize_mode}


def _save_corpus_arrays(images: np.ndarray, metadata: dict, content: dict,
                        path: Path) -> None:
    arrays = {"images": images}
    for name, values in metadata.items():
        arrays[f"metadata/{name}"] = np.asarray(values)
    for name, values in content.items():
        arrays[f"content/{name}"] = np.asarray(values)
    np.savez_compressed(path, **arrays)


def _save_corpus(corpus: ImageCorpus, path: Path) -> None:
    _save_corpus_arrays(corpus.images, corpus.metadata, corpus.content, path)


def _load_corpus(path: Path) -> ImageCorpus:
    with np.load(path, allow_pickle=False) as archive:
        metadata, content = {}, {}
        for key in archive.files:
            if key.startswith("metadata/"):
                metadata[key.split("/", 1)[1]] = archive[key]
            elif key.startswith("content/"):
                content[key.split("/", 1)[1]] = archive[key]
        return ImageCorpus(images=archive["images"], metadata=metadata,
                           content=content)


# -- per-table state -------------------------------------------------------------
def _save_materialized(materialized: dict, table_dir: Path) -> list[dict]:
    """Persist one table's materialized virtual columns.

    ``materialized`` is the executor's ``(category, cascade) -> (mask,
    labels)`` mapping, captured under the shard lock.  Returns the manifest
    entries ([{category, cascade}] in array order) — the labels a query
    materialized before the save are served unchanged after a reload, so
    ingested-then-queried rows are never re-classified.
    """
    entries, arrays = [], {}
    for index, ((category, cascade), (mask, labels)) in \
            enumerate(sorted(materialized.items())):
        entries.append({"category": category, "cascade": cascade})
        arrays[f"mask_{index}"] = mask
        arrays[f"labels_{index}"] = labels
    if arrays:
        np.savez_compressed(table_dir / _MATERIALIZED_FILE, **arrays)
    return entries


def _load_materialized(executor, table_dir: Path, entries: list[dict]) -> None:
    path = table_dir / _MATERIALIZED_FILE
    if not entries or not path.exists():
        return
    n = len(executor.corpus)
    with np.load(path, allow_pickle=False) as archive:
        for index, entry in enumerate(entries):
            mask = archive[f"mask_{index}"].astype(bool)
            labels = archive[f"labels_{index}"].astype(np.int64)
            if mask.shape[0] != n or labels.shape[0] != n:
                continue  # saved against a different corpus; recompute lazily
            key = (entry["category"], entry["cascade"])
            executor._materialized[key] = (mask, labels)


def _select_store_arrays(db: VisualDatabase,
                         cap: int | None) -> dict[str, list]:
    """Pick the representation arrays to persist, globally hottest first.

    The byte cap is spent across the whole catalog by shared-store recency
    (not per table in attachment order), so a reload warm-starts the arrays
    queries touched most recently.  Arrays over the cap are skipped — the
    executor recomputes them on demand after a load, so the cap trades disk
    for warm-start coverage, never correctness.
    """
    candidates = []
    for table in db.tables():
        store = db.executor_for(table).store
        for spec, array in store.arrays_by_recency():
            candidates.append((store.recency_rank(spec) or 0,
                               table, spec, array))
    candidates.sort(key=lambda item: item[0], reverse=True)

    selected: dict[str, list] = {table: [] for table in db.tables()}
    used = 0
    for _, table, spec, array in candidates:
        if cap is not None and used + array.nbytes > cap:
            continue
        selected[table].append((spec, array))
        used += array.nbytes
    return selected


def _save_store_arrays(selected: list, table_dir: Path) -> list[dict]:
    """Persist one table's selected (spec, array) pairs, returning entries."""
    entries, arrays = [], {}
    for spec, array in selected:
        arrays[f"rep_{len(entries)}"] = array
        entries.append({"spec": _spec_to_dict(spec)})
    if arrays:
        np.savez_compressed(table_dir / _STORE_FILE, **arrays)
    return entries


def _load_store_arrays(executor, table_dir: Path, entries: list[dict]) -> None:
    path = table_dir / _STORE_FILE
    if not entries or not path.exists():
        return
    n = len(executor.corpus)
    with np.load(path, allow_pickle=False) as archive:
        # Coldest first, so recency (and byte-budget eviction order) after
        # the load mirrors the order before the save.
        for index in reversed(range(len(entries))):
            spec = TransformSpec(**entries[index]["spec"])
            array = archive[f"rep_{index}"]
            if array.shape[0] > n:
                continue  # saved against a different corpus; recompute lazily
            executor.store.add(spec, array)


def _upgrade_v1_manifest(manifest: dict) -> dict:
    """Map a format-1 manifest (single anonymous corpus, files at the save
    root) onto the v2 table layout, as the default ``images`` table.

    Databases saved before the catalog redesign stay loadable: the corpus,
    materialized labels, store policy and budget all come back; v1 never
    persisted representation arrays, so those start cold as they always did.
    """
    store = manifest.get("store") or {}
    upgraded = dict(manifest)
    upgraded["format_version"] = _FORMAT_VERSION
    upgraded["store"] = {"byte_budget": store.get("byte_budget")}
    upgraded["tables"] = [{
        "name": DEFAULT_TABLE,
        "corpus_file": manifest.get("corpus_file"),
        "materialized": manifest.get("materialized", []),
        "store_arrays": [],
        "registered_specs": store.get("registered_specs", []),
        "table_dir": ".",  # v1 kept materialized.npz at the save root
    }]
    return upgraded


# -- versioned table images ------------------------------------------------------
def _next_image_version(root: Path) -> int:
    """First unused ``ckpt-<k>`` version number across every table dir.

    Table files are never overwritten in place: each save writes a *new*
    ``tables/<table>/ckpt-<k>/`` directory and the still-live previous
    manifest keeps pointing at its own, untouched files until the new
    manifest is durably in place.  One shared counter for the whole catalog
    keeps a save's image directories aligned across tables.
    """
    version = 0
    tables_dir = root / _TABLES_DIR
    if tables_dir.is_dir():
        for table_dir in tables_dir.iterdir():
            if not table_dir.is_dir():
                continue
            for child in table_dir.iterdir():
                match = _IMAGE_DIR_RE.match(child.name)
                if match:
                    version = max(version, int(match.group(1)) + 1)
    return version


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_image_dir(directory: Path) -> None:
    """Make one table's freshly written image files durable (checkpoints
    only): a checkpoint manifest must never reference files the page cache
    could still lose."""
    from repro.db.wal import fsync_dir

    for child in directory.iterdir():
        if child.is_file():
            _fsync_file(child)
    fsync_dir(directory)
    fsync_dir(directory.parent)


def _prune_stale_images(root: Path, tables: list[dict]) -> None:
    """Delete table images the just-written manifest no longer references.

    Called only *after* the new manifest is durably in place: superseded
    ``ckpt-<k>`` directories, pre-versioning loose table files, and the
    directories of tables absent from the manifest (detached) all go.
    """
    referenced = {entry["name"]: Path(entry["table_dir"]).name
                  for entry in tables if entry.get("table_dir")}
    tables_dir = root / _TABLES_DIR
    if not tables_dir.is_dir():
        return
    for table_dir in tables_dir.iterdir():
        if not table_dir.is_dir():
            continue
        keep = referenced.get(table_dir.name)
        if keep is None:
            shutil.rmtree(table_dir, ignore_errors=True)
            continue
        for child in table_dir.iterdir():
            if child.is_dir() and _IMAGE_DIR_RE.match(child.name):
                if child.name != keep:
                    shutil.rmtree(child, ignore_errors=True)
            elif child.name in (_CORPUS_FILE, _MATERIALIZED_FILE,
                                _STORE_FILE):
                child.unlink()  # loose files from a pre-versioning save


# -- database save / load --------------------------------------------------------
def save_database(db: VisualDatabase, root: str | Path,
                  include_corpus: bool = True,
                  store_bytes_cap: int | None = None) -> Path:
    """Persist ``db`` under ``root`` (created if needed).

    Each table's state (corpus, materialized labels, retention window, id
    offset) is captured under that shard's lock, so a save taken while
    ``ingest()``/``retain()`` run on other threads is internally consistent;
    serialization itself happens outside the locks.

    When ``db`` has a write-ahead log and ``root`` *is* its WAL root, the
    save is a **checkpoint**: each table's journal rotates to a fresh
    generation at capture time (mutations racing the save land in the new
    generation), the manifest records the generation floor, and the absorbed
    generations are pruned once the manifest is durably in place.  Table
    files always land in a fresh ``ckpt-<k>`` image directory (fsynced, for
    a checkpoint, before the manifest is replaced), never over the previous
    save's files — a crash at any point leaves the old manifest's image and
    logs untouched, so the database stays recoverable.

    ``store_bytes_cap`` bounds the on-disk bytes spent on representation
    arrays across all tables (``None`` uses :data:`DEFAULT_STORE_BYTES_CAP`);
    materialized labels and corpora are always saved in full.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if store_bytes_cap is None:
        store_bytes_cap = DEFAULT_STORE_BYTES_CAP

    wal_root = getattr(db, "_wal_root", None)
    checkpointing = (include_corpus and wal_root is not None
                     and Path(wal_root).resolve() == root.resolve())

    names = db.predicates()
    db._ensure_trained(names)  # lazy predicates are trained before saving
    for name in names:
        save_optimizer(db._optimizers[name], root / _PREDICATES_DIR / name,
                       reference_params=db._reference_params.get(name) or {})

    tables = []
    selected_arrays = (_select_store_arrays(db, store_bytes_cap)
                       if include_corpus else {})
    image_version = _next_image_version(root)
    pruned_generations: dict[str, int] = {}
    for table in db.tables():
        executor = db.executor_for(table)
        # Capture a consistent image under the shard lock (fixing the save
        # vs. concurrent ingest/retain race); the arrays are immutable by
        # convention, so serialization below happens lock-free.
        with executor._lock:
            images = executor.corpus.images
            metadata = dict(executor.corpus.metadata)
            content = dict(executor.corpus.content)
            materialized = dict(executor._materialized)
            retention = executor.retention
            id_offset = executor.id_offset
            wal_generation = None
            if checkpointing and executor.wal is not None:
                # Rotate *inside* the capture: everything before this instant
                # is in the image, everything after is in the new generation.
                wal_generation = executor.wal.rotate()
                pruned_generations[table] = wal_generation
        entry = {
            "name": table,
            "corpus_file": None,
            "materialized": [],
            "store_arrays": [],
            "registered_specs": [_spec_to_dict(spec) for spec
                                 in executor.store.registered_specs()],
            # Format 3+: the retention window and the stable-id offset (rows
            # ever dropped), so a reloaded sliding window keeps its ids.
            "retention": (retention.to_dict()
                          if retention is not None else None),
            "id_offset": id_offset,
        }
        if wal_generation is not None:
            # Format 4: recovery replays this table's generations >= this.
            entry["wal_generation"] = wal_generation
        if include_corpus:
            # A fresh image directory per save: the previous manifest's
            # files stay intact until the new manifest supersedes them.
            relative_dir = f"{_TABLES_DIR}/{table}/ckpt-{image_version}"
            table_dir = root / relative_dir
            table_dir.mkdir(parents=True, exist_ok=True)
            _save_corpus_arrays(images, metadata, content,
                                table_dir / _CORPUS_FILE)
            entry["table_dir"] = relative_dir
            entry["corpus_file"] = f"{relative_dir}/{_CORPUS_FILE}"
            entry["materialized"] = _save_materialized(materialized,
                                                       table_dir)
            entry["store_arrays"] = _save_store_arrays(
                selected_arrays.get(table, []), table_dir)
            if checkpointing:
                _fsync_image_dir(table_dir)
        tables.append(entry)

    manifest = {
        "format_version": _FORMAT_VERSION,
        "scenario": _scenario_to_dict(db.scenario),
        "device": _device_to_dict(db.device),
        "device_calibrated": db._device_calibrated,
        "cost_resolution": db.cost_resolution,
        "source_resolution": db._source_resolution,
        "calibrate_target_fps": db.calibrate_target_fps,
        "default_constraints": _constraints_to_dict(db.default_constraints),
        "predicates": [{"name": name,
                        "reference_params": db._reference_params.get(name) or {}}
                       for name in names],
        "store": {"byte_budget": db.store_budget},
        "tables": tables,
        "wal": {"enabled": checkpointing},
    }
    # Atomic manifest: a crash mid-checkpoint leaves the previous manifest
    # (whose image files and generation-floor logs are still on disk)
    # intact.  For a checkpoint the manifest is fsynced through the rename,
    # so nothing below runs before the new image is actually durable.
    tmp_manifest = root / f".{_MANIFEST_FILE}.tmp"
    tmp_manifest.write_text(json.dumps(manifest))
    if checkpointing:
        _fsync_file(tmp_manifest)
    os.replace(tmp_manifest, root / _MANIFEST_FILE)
    if checkpointing:
        from repro.db.wal import fsync_dir

        fsync_dir(root)

    # Only after the manifest is in place: drop whatever it superseded —
    # previous image versions, absorbed WAL generations, and the files of
    # tables since detached.
    if include_corpus:
        _prune_stale_images(root, tables)
    if checkpointing:
        db._checkpoints = getattr(db, "_checkpoints", 0) + 1
        for table, generation in pruned_generations.items():
            wal = db.executor_for(table).wal
            if wal is not None:
                wal.prune(generation)
        from repro.db.wal import wal_dir, wal_tables

        live = set(db.tables())
        for name in wal_tables(root):
            if name not in live:
                shutil.rmtree(wal_dir(root, name), ignore_errors=True)
    return root


def load_database(root: str | Path,
                  corpus: ImageCorpus | None = None) -> VisualDatabase:
    """Restore a database saved with :func:`save_database` (no retraining).

    For a WAL-enabled save (a checkpoint), the checkpoint image is restored
    first and each table's journal tail is then replayed — segments ingested
    after the checkpoint, retention drops and policy changes, and tables
    attached/detached since — after which journaling is re-armed, so the
    loaded database keeps appending to the same logs.

    ``corpus`` replaces the stored corpus of a *single-table* save (e.g. one
    made with ``include_corpus=False``); materialized labels, stored
    representations and the WAL tail are only restored when the corpus comes
    from the save itself, never onto a caller-supplied replacement (which
    may coincide in length).
    """
    root = Path(root)
    manifest_path = root / _MANIFEST_FILE
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {_MANIFEST_FILE} under {root}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") == 1:
        manifest = _upgrade_v1_manifest(manifest)
    elif manifest.get("format_version") not in _LOADABLE_VERSIONS:
        raise ValueError(f"unsupported database format "
                         f"{manifest.get('format_version')!r}")

    table_entries = manifest.get("tables", [])
    if corpus is not None and len(table_entries) > 1:
        raise ValueError(
            f"a replacement corpus fits a single-table save; this one has "
            f"tables {[entry['name'] for entry in table_entries]}")

    store = manifest.get("store") or {}
    db = VisualDatabase(
        device=DeviceProfile(**manifest["device"]),
        scenario=_scenario_from_dict(manifest["scenario"]),
        cost_resolution=manifest["cost_resolution"],
        source_resolution=manifest["source_resolution"],
        calibrate_target_fps=manifest["calibrate_target_fps"],
        default_constraints=UserConstraints(**manifest["default_constraints"]),
        store_budget=store.get("byte_budget"))
    # The stored device already carries any calibration that happened before
    # the save; don't re-anchor it against reloaded reference models.
    db._device_calibrated = bool(manifest["device_calibrated"])

    for entry in manifest["predicates"]:
        name = entry["name"]
        optimizer = load_optimizer(root / _PREDICATES_DIR / name)
        db._optimizers[name] = optimizer
        db._reference_params[name] = dict(entry["reference_params"])

    if not table_entries and corpus is not None:
        db.attach(DEFAULT_TABLE, corpus)
        return db

    for entry in table_entries:
        table = entry["name"]
        corpus_is_saved = corpus is None and entry["corpus_file"] is not None
        table_corpus = (_load_corpus(root / entry["corpus_file"])
                        if corpus_is_saved else corpus)
        if table_corpus is None:
            continue  # saved without corpus and none supplied: stays detached
        db.attach(table, table_corpus)
        executor = db.executor_for(table)
        # Format-2 saves carry neither field: unbounded table, offset 0.
        retention = entry.get("retention")
        if retention is not None:
            # Through the setter so the shard lock is held; the WAL is not
            # armed yet, so nothing is journaled.
            executor.set_retention(RetentionPolicy.from_dict(retention))
        executor.id_offset = int(entry.get("id_offset", 0))
        for spec_entry in entry.get("registered_specs", []):
            executor.store.register(TransformSpec(**spec_entry))
        if corpus_is_saved:
            table_dir = root / entry.get("table_dir",
                                         f"{_TABLES_DIR}/{table}")
            _load_materialized(executor, table_dir,
                               entry.get("materialized", []))
            _load_store_arrays(executor, table_dir,
                               entry.get("store_arrays", []))

    if corpus is None and (manifest.get("wal") or {}).get("enabled"):
        _recover_wal(db, root, manifest)
    return db


# -- WAL recovery ----------------------------------------------------------------
def _recover_wal(db: VisualDatabase, root: Path, manifest: dict) -> None:
    """Replay every table's journal tail over the checkpoint image.

    Each table replays independently (journals are per shard, and a shard's
    log is self-contained), from its manifest generation floor onward.
    Tables attached after the checkpoint exist only in the WAL (an
    ``attach`` record carries their baseline corpus); tables detached after
    it are removed again by their ``detach`` tombstone.  Journaling is
    armed only after replay, so replay itself never re-journals.
    """
    from repro.db.wal import TableWal, wal_tables

    generation_floor = {entry["name"]: int(entry.get("wal_generation", 0))
                        for entry in manifest.get("tables", [])}
    for table in wal_tables(root):
        wal = TableWal(root, table)  # truncates any torn tail
        floor = generation_floor.get(table, 0)
        _replay_table(db, table, wal.records(from_generation=floor))
        if table in db.catalog:
            wal.prune(floor)
            db.executor_for(table).set_wal(wal)
        else:
            wal.close()
    db._wal_root = root


def _replay_table(db: VisualDatabase, table: str,
                  records: Iterable[dict]) -> None:
    """Apply one table's journal records, in log order.

    ``records`` may be (and during recovery is) a lazy stream — payloads
    load one record at a time, so replay memory tracks the batch size, not
    the whole log tail.
    """
    batch: list[dict] = []

    def flush() -> None:
        if batch and table in db.catalog:
            db.executor_for(table).replay_wal(list(batch))
        batch.clear()

    for record in records:
        kind = record["type"]
        if kind == "attach":
            flush()
            segment = record["segment"]
            baseline = ImageCorpus(images=segment.images,
                                   metadata=segment.metadata,
                                   content=segment.content)
            if table in db.catalog:
                db.register_corpus(baseline, name=table)  # a replace()
            else:
                db.attach(table, baseline)
            db.executor_for(table).id_offset = int(record.get("id_offset", 0))
        elif kind == "detach":
            batch.clear()  # anything journaled before the tombstone is moot
            if table in db.catalog:
                db.detach(table)
        else:
            batch.append(record)
    flush()
