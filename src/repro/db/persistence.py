"""Whole-database persistence: save and restore a :class:`VisualDatabase`.

Built on :mod:`repro.core.persistence` (the per-predicate model repository),
plus a database-level manifest carrying the deployment scenario, device
profile and the table catalog.  Layout (format version 3)::

    <root>/
      database.json            # manifest: scenario, device, predicates,
                               # store budget, per-table entries
      predicates/<name>/       # one model repository per predicate
        repository.json
        weights/*.npz
      tables/<table>/          # one subdirectory per catalog table
        corpus.npz             # images + metadata + content (optional)
        materialized.npz       # materialized virtual columns (optional)
        store.npz              # representation arrays (optional, size-capped)

A trained database therefore round-trips without retraining: all optimizers,
the active scenario, every table's corpus (including rows added by
``db.ingest``), the store's byte budget, ingest-time registrations and
materialized virtual columns come back — a reloaded database answers the
same queries with identical results and without re-classifying rows
classified before the save.  Representation arrays are persisted per table
(hottest first, up to a byte cap), so a reload *warm-starts*: queries load
representation bytes instead of re-transforming the corpus.  Arrays that
were evicted or fell over the cap are simply recomputed on demand — results
are unaffected.

Format 3 adds two per-table fields: the retention policy (a table that is a
sliding window over its feed stays one after a reload) and the stable-id
offset (rows ever dropped by retention), so reloaded image ids keep naming
the same frames.  Format-2 saves, which predate retention, still load —
tables come back unbounded with offset 0 — and format-1 single-corpus saves
load through the v1 shim as before.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.persistence import load_optimizer, save_optimizer
from repro.core.selector import UserConstraints
from repro.costs.device import DeviceProfile
from repro.costs.scenario import Scenario
from repro.data.corpus import ImageCorpus
from repro.db.catalog import DEFAULT_TABLE
from repro.db.database import VisualDatabase
from repro.db.retention import RetentionPolicy
from repro.storage.tiers import StorageTier
from repro.transforms.spec import TransformSpec

__all__ = ["save_database", "load_database", "DEFAULT_STORE_BYTES_CAP"]

_FORMAT_VERSION = 3

_MANIFEST_FILE = "database.json"
_PREDICATES_DIR = "predicates"
_TABLES_DIR = "tables"
_CORPUS_FILE = "corpus.npz"
_MATERIALIZED_FILE = "materialized.npz"
_STORE_FILE = "store.npz"

#: Default on-disk byte cap for persisted representation arrays, shared by
#: the whole catalog.  Arrays beyond the cap (coldest first) are skipped and
#: recomputed lazily after a load.
DEFAULT_STORE_BYTES_CAP = 256 * 2 ** 20


# -- component (de)serialization ------------------------------------------------
def _tier_to_dict(tier: StorageTier) -> dict:
    return {"name": tier.name,
            "bandwidth_bytes_per_s": tier.bandwidth_bytes_per_s,
            "latency_s": tier.latency_s}


def _scenario_to_dict(scenario: Scenario) -> dict:
    return {"name": scenario.name,
            "include_load": scenario.include_load,
            "include_transform": scenario.include_transform,
            "load_full_image": scenario.load_full_image,
            "load_tier": _tier_to_dict(scenario.load_tier),
            "compressed": scenario.compressed,
            "description": scenario.description}


def _scenario_from_dict(data: dict) -> Scenario:
    data = dict(data)
    data["load_tier"] = StorageTier(**data["load_tier"])
    return Scenario(**data)


def _device_to_dict(device: DeviceProfile) -> dict:
    return {"name": device.name,
            "flops_per_second": device.flops_per_second,
            "transform_seconds_per_value": device.transform_seconds_per_value,
            "inference_overhead_s": device.inference_overhead_s}


def _constraints_to_dict(constraints: UserConstraints) -> dict:
    return {"max_accuracy_loss": constraints.max_accuracy_loss,
            "min_throughput": constraints.min_throughput}


def _spec_to_dict(spec: TransformSpec) -> dict:
    return {"resolution": spec.resolution, "color_mode": spec.color_mode,
            "resize_mode": spec.resize_mode}


def _save_corpus(corpus: ImageCorpus, path: Path) -> None:
    arrays = {"images": corpus.images}
    for name, values in corpus.metadata.items():
        arrays[f"metadata/{name}"] = np.asarray(values)
    for name, values in corpus.content.items():
        arrays[f"content/{name}"] = np.asarray(values)
    np.savez_compressed(path, **arrays)


def _load_corpus(path: Path) -> ImageCorpus:
    with np.load(path, allow_pickle=False) as archive:
        metadata, content = {}, {}
        for key in archive.files:
            if key.startswith("metadata/"):
                metadata[key.split("/", 1)[1]] = archive[key]
            elif key.startswith("content/"):
                content[key.split("/", 1)[1]] = archive[key]
        return ImageCorpus(images=archive["images"], metadata=metadata,
                           content=content)


# -- per-table state -------------------------------------------------------------
def _save_materialized(executor, table_dir: Path) -> list[dict]:
    """Persist one executor's materialized virtual columns.

    Returns the manifest entries ([{category, cascade}] in array order) —
    the labels a query materialized before the save are served unchanged
    after a reload, so ingested-then-queried rows are never re-classified.
    """
    entries, arrays = [], {}
    for index, ((category, cascade), (mask, labels)) in \
            enumerate(sorted(executor._materialized.items())):
        entries.append({"category": category, "cascade": cascade})
        arrays[f"mask_{index}"] = mask
        arrays[f"labels_{index}"] = labels
    if arrays:
        np.savez_compressed(table_dir / _MATERIALIZED_FILE, **arrays)
    return entries


def _load_materialized(executor, table_dir: Path, entries: list[dict]) -> None:
    path = table_dir / _MATERIALIZED_FILE
    if not entries or not path.exists():
        return
    n = len(executor.corpus)
    with np.load(path, allow_pickle=False) as archive:
        for index, entry in enumerate(entries):
            mask = archive[f"mask_{index}"].astype(bool)
            labels = archive[f"labels_{index}"].astype(np.int64)
            if mask.shape[0] != n or labels.shape[0] != n:
                continue  # saved against a different corpus; recompute lazily
            key = (entry["category"], entry["cascade"])
            executor._materialized[key] = (mask, labels)


def _select_store_arrays(db: VisualDatabase,
                         cap: int | None) -> dict[str, list]:
    """Pick the representation arrays to persist, globally hottest first.

    The byte cap is spent across the whole catalog by shared-store recency
    (not per table in attachment order), so a reload warm-starts the arrays
    queries touched most recently.  Arrays over the cap are skipped — the
    executor recomputes them on demand after a load, so the cap trades disk
    for warm-start coverage, never correctness.
    """
    candidates = []
    for table in db.tables():
        store = db.executor_for(table).store
        for spec, array in store.arrays_by_recency():
            candidates.append((store.recency_rank(spec) or 0,
                               table, spec, array))
    candidates.sort(key=lambda item: item[0], reverse=True)

    selected: dict[str, list] = {table: [] for table in db.tables()}
    used = 0
    for _, table, spec, array in candidates:
        if cap is not None and used + array.nbytes > cap:
            continue
        selected[table].append((spec, array))
        used += array.nbytes
    return selected


def _save_store_arrays(selected: list, table_dir: Path) -> list[dict]:
    """Persist one table's selected (spec, array) pairs, returning entries."""
    entries, arrays = [], {}
    for spec, array in selected:
        arrays[f"rep_{len(entries)}"] = array
        entries.append({"spec": _spec_to_dict(spec)})
    if arrays:
        np.savez_compressed(table_dir / _STORE_FILE, **arrays)
    return entries


def _load_store_arrays(executor, table_dir: Path, entries: list[dict]) -> None:
    path = table_dir / _STORE_FILE
    if not entries or not path.exists():
        return
    n = len(executor.corpus)
    with np.load(path, allow_pickle=False) as archive:
        # Coldest first, so recency (and byte-budget eviction order) after
        # the load mirrors the order before the save.
        for index in reversed(range(len(entries))):
            spec = TransformSpec(**entries[index]["spec"])
            array = archive[f"rep_{index}"]
            if array.shape[0] > n:
                continue  # saved against a different corpus; recompute lazily
            executor.store.add(spec, array)


def _upgrade_v1_manifest(manifest: dict) -> dict:
    """Map a format-1 manifest (single anonymous corpus, files at the save
    root) onto the v2 table layout, as the default ``images`` table.

    Databases saved before the catalog redesign stay loadable: the corpus,
    materialized labels, store policy and budget all come back; v1 never
    persisted representation arrays, so those start cold as they always did.
    """
    store = manifest.get("store") or {}
    upgraded = dict(manifest)
    upgraded["format_version"] = _FORMAT_VERSION
    upgraded["store"] = {"byte_budget": store.get("byte_budget")}
    upgraded["tables"] = [{
        "name": DEFAULT_TABLE,
        "corpus_file": manifest.get("corpus_file"),
        "materialized": manifest.get("materialized", []),
        "store_arrays": [],
        "registered_specs": store.get("registered_specs", []),
        "table_dir": ".",  # v1 kept materialized.npz at the save root
    }]
    return upgraded


# -- database save / load --------------------------------------------------------
def save_database(db: VisualDatabase, root: str | Path,
                  include_corpus: bool = True,
                  store_bytes_cap: int | None = None) -> Path:
    """Persist ``db`` under ``root`` (created if needed).

    ``store_bytes_cap`` bounds the on-disk bytes spent on representation
    arrays across all tables (``None`` uses :data:`DEFAULT_STORE_BYTES_CAP`);
    materialized labels and corpora are always saved in full.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if store_bytes_cap is None:
        store_bytes_cap = DEFAULT_STORE_BYTES_CAP

    names = db.predicates()
    db._ensure_trained(names)  # lazy predicates are trained before saving
    for name in names:
        save_optimizer(db._optimizers[name], root / _PREDICATES_DIR / name,
                       reference_params=db._reference_params.get(name) or {})

    tables = []
    selected_arrays = (_select_store_arrays(db, store_bytes_cap)
                       if include_corpus else {})
    for table in db.tables():
        executor = db.executor_for(table)
        table_dir = root / _TABLES_DIR / table
        table_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "name": table,
            "corpus_file": None,
            "materialized": [],
            "store_arrays": [],
            "registered_specs": [_spec_to_dict(spec) for spec
                                 in executor.store.registered_specs()],
            # Format 3: the retention window and the stable-id offset (rows
            # ever dropped), so a reloaded sliding window keeps its ids.
            "retention": (executor.retention.to_dict()
                          if executor.retention is not None else None),
            "id_offset": executor.id_offset,
        }
        if include_corpus:
            _save_corpus(executor.corpus, table_dir / _CORPUS_FILE)
            entry["corpus_file"] = f"{_TABLES_DIR}/{table}/{_CORPUS_FILE}"
            entry["materialized"] = _save_materialized(executor, table_dir)
            entry["store_arrays"] = _save_store_arrays(
                selected_arrays.get(table, []), table_dir)
        tables.append(entry)

    manifest = {
        "format_version": _FORMAT_VERSION,
        "scenario": _scenario_to_dict(db.scenario),
        "device": _device_to_dict(db.device),
        "device_calibrated": db._device_calibrated,
        "cost_resolution": db.cost_resolution,
        "source_resolution": db._source_resolution,
        "calibrate_target_fps": db.calibrate_target_fps,
        "default_constraints": _constraints_to_dict(db.default_constraints),
        "predicates": [{"name": name,
                        "reference_params": db._reference_params.get(name) or {}}
                       for name in names],
        "store": {"byte_budget": db.store_budget},
        "tables": tables,
    }
    (root / _MANIFEST_FILE).write_text(json.dumps(manifest))
    return root


def load_database(root: str | Path,
                  corpus: ImageCorpus | None = None) -> VisualDatabase:
    """Restore a database saved with :func:`save_database` (no retraining).

    ``corpus`` replaces the stored corpus of a *single-table* save (e.g. one
    made with ``include_corpus=False``); materialized labels and stored
    representations are only restored when the corpus comes from the save
    itself, never onto a caller-supplied replacement (which may coincide in
    length).
    """
    root = Path(root)
    manifest_path = root / _MANIFEST_FILE
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {_MANIFEST_FILE} under {root}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") == 1:
        manifest = _upgrade_v1_manifest(manifest)
    elif manifest.get("format_version") not in (2, _FORMAT_VERSION):
        raise ValueError(f"unsupported database format "
                         f"{manifest.get('format_version')!r}")

    table_entries = manifest.get("tables", [])
    if corpus is not None and len(table_entries) > 1:
        raise ValueError(
            f"a replacement corpus fits a single-table save; this one has "
            f"tables {[entry['name'] for entry in table_entries]}")

    store = manifest.get("store") or {}
    db = VisualDatabase(
        device=DeviceProfile(**manifest["device"]),
        scenario=_scenario_from_dict(manifest["scenario"]),
        cost_resolution=manifest["cost_resolution"],
        source_resolution=manifest["source_resolution"],
        calibrate_target_fps=manifest["calibrate_target_fps"],
        default_constraints=UserConstraints(**manifest["default_constraints"]),
        store_budget=store.get("byte_budget"))
    # The stored device already carries any calibration that happened before
    # the save; don't re-anchor it against reloaded reference models.
    db._device_calibrated = bool(manifest["device_calibrated"])

    for entry in manifest["predicates"]:
        name = entry["name"]
        optimizer = load_optimizer(root / _PREDICATES_DIR / name)
        db._optimizers[name] = optimizer
        db._reference_params[name] = dict(entry["reference_params"])

    if not table_entries and corpus is not None:
        db.attach(DEFAULT_TABLE, corpus)
        return db

    for entry in table_entries:
        table = entry["name"]
        corpus_is_saved = corpus is None and entry["corpus_file"] is not None
        table_corpus = (_load_corpus(root / entry["corpus_file"])
                        if corpus_is_saved else corpus)
        if table_corpus is None:
            continue  # saved without corpus and none supplied: stays detached
        db.attach(table, table_corpus)
        executor = db.executor_for(table)
        # Format-2 saves carry neither field: unbounded table, offset 0.
        retention = entry.get("retention")
        if retention is not None:
            executor.retention = RetentionPolicy.from_dict(retention)
        executor.id_offset = int(entry.get("id_offset", 0))
        for spec_entry in entry.get("registered_specs", []):
            executor.store.register(TransformSpec(**spec_entry))
        if corpus_is_saved:
            table_dir = root / entry.get("table_dir",
                                         f"{_TABLES_DIR}/{table}")
            _load_materialized(executor, table_dir,
                               entry.get("materialized", []))
            _load_store_arrays(executor, table_dir,
                               entry.get("store_arrays", []))
    return db
