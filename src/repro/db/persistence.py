"""Whole-database persistence: save and restore a :class:`VisualDatabase`.

Built on :mod:`repro.core.persistence` (the per-predicate model repository),
plus a database-level manifest carrying the deployment scenario, device
profile and corpus.  Layout::

    <root>/
      database.json            # manifest: scenario, device, predicates, store
      corpus.npz               # images + metadata + content (optional)
      materialized.npz         # materialized virtual columns (optional)
      predicates/<name>/       # one model repository per predicate
        repository.json
        weights/*.npz

A trained database therefore round-trips without retraining: all optimizers,
the active scenario, the corpus (including rows added by ``db.ingest``), the
store's byte budget and ingest-time registrations, and every materialized
virtual column come back — a reloaded database answers the same queries with
identical results and without re-classifying rows classified before the
save.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.persistence import load_optimizer, save_optimizer
from repro.core.selector import UserConstraints
from repro.costs.device import DeviceProfile
from repro.costs.scenario import Scenario
from repro.data.corpus import ImageCorpus
from repro.db.database import VisualDatabase
from repro.storage.tiers import StorageTier
from repro.transforms.spec import TransformSpec

__all__ = ["save_database", "load_database"]

_FORMAT_VERSION = 1

_CORPUS_FILE = "corpus.npz"
_MANIFEST_FILE = "database.json"
_MATERIALIZED_FILE = "materialized.npz"
_PREDICATES_DIR = "predicates"


# -- component (de)serialization ------------------------------------------------
def _tier_to_dict(tier: StorageTier) -> dict:
    return {"name": tier.name,
            "bandwidth_bytes_per_s": tier.bandwidth_bytes_per_s,
            "latency_s": tier.latency_s}


def _scenario_to_dict(scenario: Scenario) -> dict:
    return {"name": scenario.name,
            "include_load": scenario.include_load,
            "include_transform": scenario.include_transform,
            "load_full_image": scenario.load_full_image,
            "load_tier": _tier_to_dict(scenario.load_tier),
            "compressed": scenario.compressed,
            "description": scenario.description}


def _scenario_from_dict(data: dict) -> Scenario:
    data = dict(data)
    data["load_tier"] = StorageTier(**data["load_tier"])
    return Scenario(**data)


def _device_to_dict(device: DeviceProfile) -> dict:
    return {"name": device.name,
            "flops_per_second": device.flops_per_second,
            "transform_seconds_per_value": device.transform_seconds_per_value,
            "inference_overhead_s": device.inference_overhead_s}


def _constraints_to_dict(constraints: UserConstraints) -> dict:
    return {"max_accuracy_loss": constraints.max_accuracy_loss,
            "min_throughput": constraints.min_throughput}


def _save_corpus(corpus: ImageCorpus, path: Path) -> None:
    arrays = {"images": corpus.images}
    for name, values in corpus.metadata.items():
        arrays[f"metadata/{name}"] = np.asarray(values)
    for name, values in corpus.content.items():
        arrays[f"content/{name}"] = np.asarray(values)
    np.savez_compressed(path, **arrays)


def _spec_to_dict(spec: TransformSpec) -> dict:
    return {"resolution": spec.resolution, "color_mode": spec.color_mode,
            "resize_mode": spec.resize_mode}


def _save_materialized(db: VisualDatabase, root: Path) -> list[dict]:
    """Persist the executor's materialized virtual columns.

    Returns the manifest entries ([{category, cascade}] in array order) —
    the labels a query materialized before the save are served unchanged
    after a reload, so ingested-then-queried rows are never re-classified.
    """
    materialized = db.executor._materialized
    entries, arrays = [], {}
    for index, ((category, cascade), (mask, labels)) in \
            enumerate(sorted(materialized.items())):
        entries.append({"category": category, "cascade": cascade})
        arrays[f"mask_{index}"] = mask
        arrays[f"labels_{index}"] = labels
    if arrays:
        np.savez_compressed(root / _MATERIALIZED_FILE, **arrays)
    return entries


def _load_materialized(db: VisualDatabase, root: Path,
                       entries: list[dict]) -> None:
    path = root / _MATERIALIZED_FILE
    if not entries or not path.exists() or db._executor is None:
        return
    n = len(db.corpus)
    with np.load(path, allow_pickle=False) as archive:
        for index, entry in enumerate(entries):
            mask = archive[f"mask_{index}"].astype(bool)
            labels = archive[f"labels_{index}"].astype(np.int64)
            if mask.shape[0] != n or labels.shape[0] != n:
                continue  # saved against a different corpus; recompute lazily
            key = (entry["category"], entry["cascade"])
            db.executor._materialized[key] = (mask, labels)


def _load_corpus(path: Path) -> ImageCorpus:
    with np.load(path, allow_pickle=False) as archive:
        metadata, content = {}, {}
        for key in archive.files:
            if key.startswith("metadata/"):
                metadata[key.split("/", 1)[1]] = archive[key]
            elif key.startswith("content/"):
                content[key.split("/", 1)[1]] = archive[key]
        return ImageCorpus(images=archive["images"], metadata=metadata,
                           content=content)


# -- database save / load --------------------------------------------------------
def save_database(db: VisualDatabase, root: str | Path,
                  include_corpus: bool = True) -> Path:
    """Persist ``db`` under ``root`` (created if needed)."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)

    names = db.predicates()
    db._ensure_trained(names)  # lazy predicates are trained before saving
    for name in names:
        save_optimizer(db._optimizers[name], root / _PREDICATES_DIR / name,
                       reference_params=db._reference_params.get(name) or {})

    has_corpus = include_corpus and db._executor is not None
    materialized_entries: list[dict] = []
    registered_specs: list[dict] = []
    if has_corpus:
        _save_corpus(db.corpus, root / _CORPUS_FILE)
        materialized_entries = _save_materialized(db, root)
        registered_specs = [_spec_to_dict(spec)
                            for spec in db.executor.store.registered_specs()]

    manifest = {
        "format_version": _FORMAT_VERSION,
        "scenario": _scenario_to_dict(db.scenario),
        "device": _device_to_dict(db.device),
        "device_calibrated": db._device_calibrated,
        "cost_resolution": db.cost_resolution,
        "source_resolution": db._source_resolution,
        "calibrate_target_fps": db.calibrate_target_fps,
        "default_constraints": _constraints_to_dict(db.default_constraints),
        "predicates": [{"name": name,
                        "reference_params": db._reference_params.get(name) or {}}
                       for name in names],
        "corpus_file": _CORPUS_FILE if has_corpus else None,
        "store": {"byte_budget": db.store_budget,
                  "registered_specs": registered_specs},
        "materialized": materialized_entries,
    }
    (root / _MANIFEST_FILE).write_text(json.dumps(manifest))
    return root


def load_database(root: str | Path,
                  corpus: ImageCorpus | None = None) -> VisualDatabase:
    """Restore a database saved with :func:`save_database` (no retraining)."""
    root = Path(root)
    manifest_path = root / _MANIFEST_FILE
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {_MANIFEST_FILE} under {root}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported database format "
                         f"{manifest.get('format_version')!r}")

    # Materialized labels are only valid for the corpus they were computed
    # over: restore them only when the corpus comes from the save itself,
    # never onto a caller-supplied replacement (which may coincide in length).
    corpus_is_saved = corpus is None and manifest["corpus_file"] is not None
    if corpus_is_saved:
        corpus = _load_corpus(root / manifest["corpus_file"])

    store = manifest.get("store") or {}
    db = VisualDatabase(
        corpus,
        device=DeviceProfile(**manifest["device"]),
        scenario=_scenario_from_dict(manifest["scenario"]),
        cost_resolution=manifest["cost_resolution"],
        source_resolution=manifest["source_resolution"],
        calibrate_target_fps=manifest["calibrate_target_fps"],
        default_constraints=UserConstraints(**manifest["default_constraints"]),
        store_budget=store.get("byte_budget"))
    if db._executor is not None:
        for entry in store.get("registered_specs", []):
            db.executor.store.register(TransformSpec(**entry))
    # The stored device already carries any calibration that happened before
    # the save; don't re-anchor it against reloaded reference models.
    db._device_calibrated = bool(manifest["device_calibrated"])

    for entry in manifest["predicates"]:
        name = entry["name"]
        optimizer = load_optimizer(root / _PREDICATES_DIR / name)
        db._optimizers[name] = optimizer
        db._reference_params[name] = dict(entry["reference_params"])

    if corpus_is_saved:
        _load_materialized(db, root, manifest.get("materialized", []))
    return db
