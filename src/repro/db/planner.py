"""Query planning: a logical query becomes a cost-ordered physical plan.

The planner performs the query-time half of the paper's predicate
optimization.  For each ``contains_object`` predicate it asks the predicate's
:class:`~repro.core.optimizer.TahomaOptimizer` to select a cascade under the
current deployment scenario and the user's constraints, estimates the
predicate's selectivity from the optimizer's cached evaluation-set
predictions, and orders the content predicates by estimated selectivity x
selected-cascade cost so that cheap, selective predicates shrink the
candidate set before expensive ones run.  Metadata predicates always run
first — they cost microseconds and touch no pixels.

The resulting :class:`QueryPlan` is a pure description: executing it is the
job of :class:`~repro.db.executor.QueryExecutor`, and ``db.explain(sql)``
returns it directly for inspection.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.evaluator import CascadeEvaluation
from repro.core.optimizer import TahomaOptimizer
from repro.costs.profiler import CostProfiler
from repro.query.predicates import ContainsObject, MetadataPredicate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.query.processor import Query

__all__ = ["MetadataStep", "ContentStep", "QueryPlan", "QueryPlanner",
           "estimate_selectivity", "DEFAULT_SELECTIVITY"]

#: Selectivity assumed when an evaluation carries no positive rate (e.g. an
#: externally built evaluation installed via ``register_optimizer``).
DEFAULT_SELECTIVITY = 0.5


def estimate_selectivity(evaluation: CascadeEvaluation) -> float:
    """Fraction of images the selected cascade is expected to label positive.

    :func:`~repro.core.evaluator.evaluate_cascade` records the cascade's
    positive rate while replaying its decision logic over the cached
    evaluation-set probabilities, so the estimate is free at plan time.
    Evaluations without a recorded positive rate (NaN — possible for
    externally built evaluations) fall back to :data:`DEFAULT_SELECTIVITY`
    with a warning, so planning and ``db.explain()`` keep working.

    Caveat: the evaluation split is typically class-balanced, so this is the
    cascade's positive rate *at a ~50% base rate*, not the predicate's
    frequency in the corpus.  The planner therefore prefers corpus-calibrated
    selectivity observed from materialized labels when a ``selectivity_hook``
    provides one.
    """
    rate = evaluation.positive_rate
    if np.isnan(rate):
        warnings.warn(
            f"evaluation {evaluation.name!r} carries no positive_rate; "
            f"assuming selectivity {DEFAULT_SELECTIVITY}",
            stacklevel=2)
        return DEFAULT_SELECTIVITY
    return float(rate)


@dataclass(frozen=True)
class MetadataStep:
    """One cheap metadata filter in the physical plan."""

    predicate: MetadataPredicate

    def describe(self) -> str:
        return f"filter   {self.predicate}"


@dataclass(frozen=True)
class ContentStep:
    """One content predicate with its selected cascade and cost estimates."""

    predicate: ContainsObject
    evaluation: CascadeEvaluation
    selectivity: float
    cost_per_image_s: float

    @property
    def category(self) -> str:
        return self.predicate.category

    @property
    def rank(self) -> float:
        """Ordering key: estimated selectivity x selected-cascade cost."""
        return self.selectivity * self.cost_per_image_s

    def describe(self) -> str:
        lines = [f"cascade  {self.predicate}",
                 f"    cascade     : {self.evaluation.name}",
                 f"    selectivity : {self.selectivity:.2f} (estimated)",
                 f"    cost/image  : {self.cost_per_image_s * 1e3:.3f} ms "
                 f"({self.evaluation.throughput:,.0f} fps)",
                 f"    exp accuracy: {self.evaluation.accuracy:.3f}"]
        return "\n".join(lines)


@dataclass(frozen=True)
class QueryPlan:
    """The physical plan for one query: ordered steps plus cost estimates.

    ``content_steps`` are already in execution order (ascending
    selectivity x cost); ``db.explain(sql)`` returns this object and
    ``str(plan)`` renders the human-readable form.
    """

    metadata_steps: tuple[MetadataStep, ...]
    content_steps: tuple[ContentStep, ...]
    limit: int | None = None
    scenario_name: str = ""
    table: str = ""

    @property
    def categories(self) -> tuple[str, ...]:
        """The content-predicate categories, in execution order."""
        return tuple(step.category for step in self.content_steps)

    def expected_cost_per_candidate_s(self) -> float:
        """Expected content cost per candidate image surviving metadata.

        Each content step's per-image cost is weighted by the product of the
        selectivities of the steps before it, mirroring how earlier
        predicates shrink the set later cascades must classify.
        """
        total, surviving = 0.0, 1.0
        for step in self.content_steps:
            total += surviving * step.cost_per_image_s
            surviving *= step.selectivity
        return total

    def describe(self) -> str:
        target = f", table={self.table!r}" if self.table else ""
        header = f"QueryPlan (scenario={self.scenario_name or 'unknown'}{target})"
        lines = [header]
        number = 1
        for step in self.metadata_steps:
            body = step.describe().replace("\n", "\n   ")
            lines.append(f"  {number}. {body}")
            number += 1
        for step in self.content_steps:
            body = step.describe().replace("\n", "\n   ")
            lines.append(f"  {number}. {body}")
            number += 1
        if self.limit is not None:
            lines.append(f"  {number}. limit    {self.limit}")
        if self.content_steps:
            lines.append(f"  expected content cost per candidate: "
                         f"{self.expected_cost_per_candidate_s() * 1e3:.3f} ms")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class QueryPlanner:
    """Turns logical queries into physical plans.

    Parameters
    ----------
    optimizers:
        Mapping from category name to an initialized
        :class:`~repro.core.optimizer.TahomaOptimizer`.
    profiler:
        The cost profiler of the active deployment scenario.  Both attributes
        are plain and mutable, so a long-lived planner can follow scenario
        switches (``db.use_scenario``).
    selectivity_hook:
        Optional ``(category, cascade_name) -> float | None`` callable
        supplying corpus-calibrated selectivity — typically the positive
        rate observed over already-materialized virtual columns
        (:meth:`~repro.db.executor.QueryExecutor.observed_positive_rate`).
        ``None`` (or a ``None`` return) falls back to the evaluation-set
        estimate.
    """

    def __init__(self, optimizers: dict[str, TahomaOptimizer],
                 profiler: CostProfiler,
                 selectivity_hook: Callable[[str, str], float | None]
                 | None = None) -> None:
        self.optimizers = dict(optimizers)
        self.profiler = profiler
        self.selectivity_hook = selectivity_hook

    def _optimizer_for(self, category: str) -> TahomaOptimizer:
        try:
            return self.optimizers[category]
        except KeyError:
            raise KeyError(f"no optimizer installed for category {category!r}; "
                           f"available: {sorted(self.optimizers)}") from None

    def plan(self, query: "Query", table: str | None = None) -> QueryPlan:
        """Select cascades, estimate selectivities and order the predicates.

        ``table`` overrides the plan's table provenance — a fan-out query
        plans once per shard, and each shard's plan names the shard it was
        priced for (its ``selectivity_hook`` observes that shard's labels),
        not the virtual fan-out table.
        """
        metadata_steps = tuple(MetadataStep(predicate)
                               for predicate in query.metadata_predicates)

        content_steps = []
        for predicate in query.content_predicates:
            optimizer = self._optimizer_for(predicate.category)
            evaluation = optimizer.select(self.profiler, query.constraints)
            selectivity = None
            if self.selectivity_hook is not None:
                selectivity = self.selectivity_hook(predicate.category,
                                                    evaluation.cascade.name)
            if selectivity is None:
                selectivity = estimate_selectivity(evaluation)
            content_steps.append(ContentStep(
                predicate=predicate, evaluation=evaluation,
                selectivity=selectivity,
                cost_per_image_s=evaluation.cost.total_s))
        content_steps.sort(key=lambda step: step.rank)

        return QueryPlan(metadata_steps=metadata_steps,
                         content_steps=tuple(content_steps),
                         limit=query.limit,
                         scenario_name=self.profiler.scenario.name,
                         table=table if table is not None else query.table)
