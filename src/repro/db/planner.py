"""Query planning: a logical query becomes a cost-ordered physical plan.

The planner performs the query-time half of the paper's predicate
optimization.  For each ``contains_object`` predicate it asks the predicate's
:class:`~repro.core.optimizer.TahomaOptimizer` to select a cascade under the
current deployment scenario and the user's constraints, estimates the
predicate's selectivity from the optimizer's cached evaluation-set
predictions, and orders the content predicates by estimated selectivity x
selected-cascade cost so that cheap, selective predicates shrink the
candidate set before expensive ones run.  Metadata predicates always run
first — they cost microseconds and touch no pixels.

The resulting :class:`QueryPlan` is a pure description: executing it is the
job of :class:`~repro.db.executor.QueryExecutor`, and ``db.explain(sql)``
returns it directly for inspection.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.evaluator import CascadeEvaluation
from repro.core.optimizer import TahomaOptimizer
from repro.costs.profiler import CostProfiler
from repro.query.ast import (Aggregate, AndExpr, BooleanExpr, NotExpr,
                             OrderItem, OrExpr, PredicateExpr, SelectItem,
                             conjunctive_predicates, select_label)
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.query.processor import Query

__all__ = ["MetadataStep", "ContentStep", "QueryPlan", "QueryPlanner",
           "PlanAnd", "PlanOr", "PlanNot",
           "estimate_selectivity", "annotate_plan_dict",
           "DEFAULT_SELECTIVITY"]

#: Selectivity assumed when an evaluation carries no positive rate (e.g. an
#: externally built evaluation installed via ``register_optimizer``).
DEFAULT_SELECTIVITY = 0.5


def estimate_selectivity(evaluation: CascadeEvaluation) -> float:
    """Fraction of images the selected cascade is expected to label positive.

    :func:`~repro.core.evaluator.evaluate_cascade` records the cascade's
    positive rate while replaying its decision logic over the cached
    evaluation-set probabilities, so the estimate is free at plan time.
    Evaluations without a recorded positive rate (NaN — possible for
    externally built evaluations) fall back to :data:`DEFAULT_SELECTIVITY`
    with a warning, so planning and ``db.explain()`` keep working.

    Caveat: the evaluation split is typically class-balanced, so this is the
    cascade's positive rate *at a ~50% base rate*, not the predicate's
    frequency in the corpus.  The planner therefore prefers corpus-calibrated
    selectivity observed from materialized labels when a ``selectivity_hook``
    provides one.
    """
    rate = evaluation.positive_rate
    if np.isnan(rate):
        warnings.warn(
            f"evaluation {evaluation.name!r} carries no positive_rate; "
            f"assuming selectivity {DEFAULT_SELECTIVITY}",
            stacklevel=2)
        return DEFAULT_SELECTIVITY
    return float(rate)


@dataclass(frozen=True)
class MetadataStep:
    """One cheap metadata filter in the physical plan."""

    predicate: MetadataPredicate

    def describe(self) -> str:
        return f"filter   {self.predicate}"


@dataclass(frozen=True)
class ContentStep:
    """One content predicate with its selected cascade and cost estimates."""

    predicate: ContainsObject
    evaluation: CascadeEvaluation
    selectivity: float
    cost_per_image_s: float

    @property
    def category(self) -> str:
        return self.predicate.category

    @property
    def rank(self) -> float:
        """Ordering key: estimated selectivity x selected-cascade cost."""
        return self.selectivity * self.cost_per_image_s

    def describe(self) -> str:
        lines = [f"cascade  {self.predicate}",
                 f"    cascade     : {self.evaluation.name}",
                 f"    selectivity : {self.selectivity:.2f} (estimated)",
                 f"    cost/image  : {self.cost_per_image_s * 1e3:.3f} ms "
                 f"({self.evaluation.throughput:,.0f} fps)",
                 f"    exp accuracy: {self.evaluation.accuracy:.3f}"]
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanNot:
    """Negation node of a physical predicate tree."""

    child: "PlanExpr"


@dataclass(frozen=True)
class PlanAnd:
    """Conjunction node; children are in execution order (cheap/selective
    first), and each child only sees rows every earlier child accepted."""

    children: tuple["PlanExpr", ...]


@dataclass(frozen=True)
class PlanOr:
    """Disjunction node; children are in execution order (cheap first), and
    each child only evaluates rows every earlier child left undecided."""

    children: tuple["PlanExpr", ...]


#: A physical predicate-tree node: steps at the leaves, boolean combinators
#: above them.
PlanExpr = "MetadataStep | ContentStep | PlanAnd | PlanOr | PlanNot"


def _node_stats(node) -> tuple[float, float]:
    """(estimated selectivity, expected cost per candidate) of one node.

    Metadata filters cost ~0 and, lacking statistics, are assumed to pass
    half their input; content steps carry the planner's estimates.  For AND
    the children run in order on a shrinking candidate set; for OR on a
    shrinking *undecided* set.
    """
    if isinstance(node, MetadataStep):
        return 0.5, 0.0
    if isinstance(node, ContentStep):
        return node.selectivity, node.cost_per_image_s
    if isinstance(node, PlanNot):
        selectivity, cost = _node_stats(node.child)
        return 1.0 - selectivity, cost
    if isinstance(node, PlanAnd):
        surviving, cost = 1.0, 0.0
        for child in node.children:
            child_selectivity, child_cost = _node_stats(child)
            cost += surviving * child_cost
            surviving *= child_selectivity
        return surviving, cost
    if isinstance(node, PlanOr):
        undecided, cost = 1.0, 0.0
        for child in node.children:
            child_selectivity, child_cost = _node_stats(child)
            cost += undecided * child_cost
            undecided *= 1.0 - child_selectivity
        return 1.0 - undecided, cost
    raise TypeError(f"not a plan node: {node!r}")


def _and_rank(node) -> float:
    """AND-child ordering key: selectivity x cost (cheap, selective first)."""
    selectivity, cost = _node_stats(node)
    return selectivity * cost


def _or_rank(node) -> float:
    """OR-child ordering key: (1 - selectivity) x cost — a likely-true cheap
    disjunct decides the most rows before any expensive child runs."""
    selectivity, cost = _node_stats(node)
    return (1.0 - selectivity) * cost


def _json_value(value):
    """A JSON-safe copy of one predicate literal (tuples become lists)."""
    if isinstance(value, tuple):
        return [_json_value(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


def _node_dict(node) -> dict:
    """Serialize one predicate-tree node for :meth:`QueryPlan.to_dict`."""
    if isinstance(node, MetadataStep):
        return {"op": "filter",
                "column": node.predicate.column,
                "operator": node.predicate.operator,
                "value": _json_value(node.predicate.value)}
    if isinstance(node, ContentStep):
        return {"op": "cascade", **_content_step_dict(node)}
    if isinstance(node, PlanNot):
        return {"op": "not", "child": _node_dict(node.child)}
    label = "and" if isinstance(node, PlanAnd) else "or"
    return {"op": label,
            "children": [_node_dict(child) for child in node.children]}


def _content_step_dict(step: ContentStep) -> dict:
    return {"category": step.category,
            "cascade": step.evaluation.name,
            "depth": step.evaluation.depth,
            "selectivity": float(step.selectivity),
            "cost_per_image_s": float(step.cost_per_image_s),
            "expected_accuracy": float(step.evaluation.accuracy),
            "throughput_fps": float(step.evaluation.throughput)}


def _annotated_node(node, node_stats: dict) -> dict:
    """Serialize one plan node with estimated *and* actual execution stats.

    ``node_stats`` maps ``id(plan node)`` to the executor's measurements for
    that node (rows in/out, actual selectivity, rows classified, elapsed
    seconds).  Nodes execution never reached — e.g. an OR disjunct decided
    away by short-circuiting — carry no ``"actual"`` key, which is itself
    informative.
    """
    if isinstance(node, PlanNot):
        rendered = {"op": "not",
                    "child": _annotated_node(node.child, node_stats)}
    elif isinstance(node, (PlanAnd, PlanOr)):
        rendered = {"op": "and" if isinstance(node, PlanAnd) else "or",
                    "children": [_annotated_node(child, node_stats)
                                 for child in node.children]}
    else:
        rendered = _node_dict(node)
    estimated, _ = _node_stats(node)
    rendered.setdefault("estimated_selectivity", float(estimated))
    actual = node_stats.get(id(node))
    if actual is not None:
        rendered["actual"] = dict(actual)
    return rendered


def annotate_plan_dict(plan: "QueryPlan", node_stats: dict) -> dict:
    """:meth:`QueryPlan.to_dict` with per-node ``"actual"`` blocks attached.

    The ``EXPLAIN ANALYZE`` serialization: every predicate node carries its
    planner estimate (``estimated_selectivity``) next to the executor's
    measurements (``actual``: rows in/out, actual selectivity, rows
    classified, elapsed seconds), keyed off ``node_stats`` as recorded by
    :class:`~repro.db.executor.QueryExecutor` during the run.
    """
    rendered = plan.to_dict()
    rendered["metadata_steps"] = [_annotated_node(step, node_stats)
                                  for step in plan.metadata_steps]
    rendered["content_steps"] = [_annotated_node(step, node_stats)
                                 for step in plan.content_steps]
    if plan.predicate_tree is not None:
        rendered["predicate_tree"] = _annotated_node(plan.predicate_tree,
                                                     node_stats)
    return rendered


def _describe_node(node, indent: str = "") -> str:
    """Render one predicate-tree node for ``QueryPlan.describe()``."""
    if isinstance(node, MetadataStep):
        return f"{indent}filter   {node.predicate}"
    if isinstance(node, ContentStep):
        return (f"{indent}cascade  {node.predicate} "
                f"[{node.evaluation.name}, sel {node.selectivity:.2f}, "
                f"{node.cost_per_image_s * 1e3:.3f} ms/image]")
    if isinstance(node, PlanNot):
        return f"{indent}NOT\n{_describe_node(node.child, indent + '  ')}"
    label = "AND" if isinstance(node, PlanAnd) else "OR"
    lines = [f"{indent}{label}"]
    lines.extend(_describe_node(child, indent + "  ")
                 for child in node.children)
    return "\n".join(lines)


@dataclass(frozen=True)
class QueryPlan:
    """The physical plan for one query, lowered from the logical pipeline
    Scan -> Filter -> Aggregate -> OrderBy -> Project -> Limit.

    For a conjunctive query (the paper's shape) the filter is the flat
    ``metadata_steps`` + ``content_steps`` (already in execution order,
    ascending selectivity x cost) and ``predicate_tree`` is ``None`` — the
    executor runs the seed's chunked path unchanged.  A query with OR/NOT
    carries the ordered boolean tree in ``predicate_tree``;
    ``content_steps`` then still lists every cascade leaf (for provenance),
    but execution follows the tree with mask-based short-circuiting.

    ``select``/``group_by``/``order_by`` carry the projection, grouping and
    sort stages; ``db.explain(sql)`` returns this object and ``str(plan)``
    renders the human-readable form.
    """

    metadata_steps: tuple[MetadataStep, ...]
    content_steps: tuple[ContentStep, ...]
    limit: int | None = None
    scenario_name: str = ""
    table: str = ""
    predicate_tree: "PlanExpr | None" = None
    select: tuple[SelectItem, ...] | None = None
    group_by: tuple[str, ...] = ()
    order_by: tuple[OrderItem, ...] = ()

    @property
    def aggregates(self) -> tuple[Aggregate, ...]:
        """The aggregate items of the SELECT list, in SELECT order."""
        return tuple(item for item in (self.select or ())
                     if isinstance(item, Aggregate))

    @property
    def is_aggregate(self) -> bool:
        """Whether the plan produces groups (aggregates / GROUP BY)."""
        return bool(self.aggregates) or bool(self.group_by)

    def referenced_columns(self) -> frozenset:
        """Columns the post-filter stages read: SELECT list (including
        aggregate arguments), GROUP BY and ORDER BY keys.

        The executor uses this to force classification of selected rows for
        any content-derived ``contains_*`` column these stages consume — a
        short-circuited OR may select rows without evaluating every cascade,
        and aggregating a placeholder label would corrupt the answer.
        """
        names = set(self.group_by)
        for item in (self.select or ()) + tuple(entry.key
                                                for entry in self.order_by):
            if isinstance(item, Aggregate):
                if item.argument is not None:
                    names.add(item.argument)
            else:
                names.add(item)
        return frozenset(names)

    @property
    def allow_early_stop(self) -> bool:
        """Whether ``LIMIT`` may stop execution early.

        Under aggregates or ORDER BY the limit applies to the *final* groups
        or sorted rows, so the executor must evaluate every candidate first;
        stopping early there would silently drop rows from the answer.
        """
        return not self.is_aggregate and not self.order_by

    @property
    def categories(self) -> tuple[str, ...]:
        """The content-predicate categories, in execution order."""
        return tuple(step.category for step in self.content_steps)

    def expected_cost_per_candidate_s(self) -> float:
        """Expected content cost per candidate image surviving metadata.

        Each content step's per-image cost is weighted by the product of the
        selectivities of the steps before it, mirroring how earlier
        predicates shrink the set later cascades must classify.
        """
        total, surviving = 0.0, 1.0
        for step in self.content_steps:
            total += surviving * step.cost_per_image_s
            surviving *= step.selectivity
        return total

    def describe(self) -> str:
        target = f", table={self.table!r}" if self.table else ""
        header = f"QueryPlan (scenario={self.scenario_name or 'unknown'}{target})"
        lines = [header]
        number = 1
        if self.predicate_tree is not None:
            body = _describe_node(self.predicate_tree).replace("\n", "\n   ")
            lines.append(f"  {number}. {body}")
            number += 1
        else:
            for step in self.metadata_steps:
                body = step.describe().replace("\n", "\n   ")
                lines.append(f"  {number}. {body}")
                number += 1
            for step in self.content_steps:
                body = step.describe().replace("\n", "\n   ")
                lines.append(f"  {number}. {body}")
                number += 1
        if self.is_aggregate:
            spec = ", ".join(aggregate.label for aggregate in self.aggregates)
            if self.group_by:
                spec += f"{' ' if spec else ''}group by " + \
                        ", ".join(self.group_by)
            lines.append(f"  {number}. aggregate {spec}")
            number += 1
        if self.order_by:
            keys = ", ".join(str(item) for item in self.order_by)
            lines.append(f"  {number}. order by {keys}")
            number += 1
        if self.select is not None and not self.is_aggregate:
            columns = ", ".join(select_label(item) for item in self.select)
            lines.append(f"  {number}. project  {columns}")
            number += 1
        if self.limit is not None:
            lines.append(f"  {number}. limit    {self.limit}")
        if self.content_steps:
            lines.append(f"  expected content cost per candidate: "
                         f"{self.expected_cost_per_candidate_s() * 1e3:.3f} ms")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-serializable form of the plan (``EXPLAIN`` over the wire).

        Carries the same information as :meth:`describe` — predicate tree
        (or the flat conjunctive steps), selected cascades with estimated
        selectivity/cost, projection, grouping, sort and limit stages, and
        the expected content cost per candidate — as plain dicts and lists,
        so clients can inspect plans without the repro package installed.
        """
        return {
            "scenario": self.scenario_name,
            "table": self.table,
            "limit": self.limit,
            "select": (None if self.select is None
                       else [select_label(item) for item in self.select]),
            "group_by": list(self.group_by),
            "order_by": [{"key": item.label, "ascending": item.ascending}
                         for item in self.order_by],
            "is_aggregate": self.is_aggregate,
            "metadata_steps": [_node_dict(step)
                               for step in self.metadata_steps],
            "content_steps": [_content_step_dict(step)
                              for step in self.content_steps],
            "predicate_tree": (None if self.predicate_tree is None
                               else _node_dict(self.predicate_tree)),
            "expected_cost_per_candidate_s":
                self.expected_cost_per_candidate_s(),
        }

    def __str__(self) -> str:
        return self.describe()


class QueryPlanner:
    """Turns logical queries into physical plans.

    Parameters
    ----------
    optimizers:
        Mapping from category name to an initialized
        :class:`~repro.core.optimizer.TahomaOptimizer`.
    profiler:
        The cost profiler of the active deployment scenario.  Both attributes
        are plain and mutable, so a long-lived planner can follow scenario
        switches (``db.use_scenario``).
    selectivity_hook:
        Optional ``(category, cascade_name) -> float | None`` callable
        supplying corpus-calibrated selectivity — typically the positive
        rate observed over already-materialized virtual columns
        (:meth:`~repro.db.executor.QueryExecutor.observed_positive_rate`).
        ``None`` (or a ``None`` return) falls back to the evaluation-set
        estimate.
    metrics:
        The registry planning time is recorded on
        (``repro_query_plan_seconds`` by table); a private registry is
        created when omitted.
    """

    def __init__(self, optimizers: dict[str, TahomaOptimizer],
                 profiler: CostProfiler,
                 selectivity_hook: Callable[[str, str], float | None]
                 | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.optimizers = dict(optimizers)
        self.profiler = profiler
        self.selectivity_hook = selectivity_hook
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._plan_seconds = self.metrics.histogram(
            "repro_query_plan_seconds")

    def _optimizer_for(self, category: str) -> TahomaOptimizer:
        try:
            return self.optimizers[category]
        except KeyError:
            raise KeyError(f"no optimizer installed for category {category!r}; "
                           f"available: {sorted(self.optimizers)}") from None

    def _content_step(self, predicate: ContainsObject,
                      constraints, cache: dict) -> ContentStep:
        """Select a cascade for one category (once per query, cached)."""
        if predicate.category in cache:
            return cache[predicate.category]
        optimizer = self._optimizer_for(predicate.category)
        evaluation = optimizer.select(self.profiler, constraints)
        selectivity = None
        if self.selectivity_hook is not None:
            selectivity = self.selectivity_hook(predicate.category,
                                                evaluation.cascade.name)
        if selectivity is None:
            selectivity = estimate_selectivity(evaluation)
        step = ContentStep(predicate=predicate, evaluation=evaluation,
                           selectivity=selectivity,
                           cost_per_image_s=evaluation.cost.total_s)
        cache[predicate.category] = step
        return step

    def _lower(self, expr: BooleanExpr, constraints, cache: dict):
        """Lower one AST node into an ordered physical plan node.

        Children of AND are ordered by estimated selectivity x cost (the
        paper's rule, generalized to subtrees); children of OR by
        (1 - selectivity) x cost — a likely-true cheap disjunct decides the
        most rows per unit cost, and every later child only evaluates rows
        the earlier children left undecided.  Metadata filters cost nothing
        and therefore always run before any cascade at the same level.
        """
        if isinstance(expr, PredicateExpr):
            if isinstance(expr.predicate, ContainsObject):
                return self._content_step(expr.predicate, constraints, cache)
            return MetadataStep(expr.predicate)
        if isinstance(expr, NotExpr):
            return PlanNot(self._lower(expr.child, constraints, cache))
        children = [self._lower(child, constraints, cache)
                    for child in expr.children]
        if isinstance(expr, AndExpr):
            children.sort(key=_and_rank)
            return PlanAnd(tuple(children))
        if isinstance(expr, OrExpr):
            children.sort(key=_or_rank)
            return PlanOr(tuple(children))
        raise TypeError(f"not a BooleanExpr node: {expr!r}")

    def plan(self, query: "Query", table: str | None = None,
             selections: "dict[str, ContentStep] | None" = None) -> QueryPlan:
        """Select cascades, estimate selectivities and order the predicates.

        A conjunctive query (the original dialect) lowers to the seed's flat
        plan: metadata steps first, then content steps ordered by estimated
        selectivity x selected-cascade cost.  A query whose WHERE tree has
        OR/NOT lowers to an ordered :data:`PlanExpr` tree instead, with
        cascades selected once per category.

        ``table`` overrides the plan's table provenance — a fan-out query
        plans once per shard, and each shard's plan names the shard it was
        priced for (its ``selectivity_hook`` observes that shard's labels),
        not the virtual fan-out table.

        ``selections`` seeds the per-query cascade cache with already-made
        :class:`ContentStep` choices, keyed by category.  A plan cache uses
        this to *rebind* a cached plan to new literals: cascade selection
        (the expensive Pareto analysis) is skipped for seeded categories,
        while parsing-cheap structure (ordering, projection, limit) is
        rebuilt from the fresh query.
        """
        started = time.perf_counter()
        cache: dict[str, ContentStep] = dict(selections) if selections else {}
        wanted = {predicate.category
                  for predicate in query.content_predicates}
        conjuncts = conjunctive_predicates(query.where)
        predicate_tree = None
        if conjuncts is not None:
            metadata_steps = tuple(MetadataStep(predicate)
                                   for predicate in query.metadata_predicates)
            content_steps = [self._content_step(predicate, query.constraints,
                                                cache)
                             for predicate in query.content_predicates]
            content_steps.sort(key=lambda step: step.rank)
        else:
            predicate_tree = self._lower(query.where, query.constraints, cache)
            metadata_steps = tuple(MetadataStep(predicate)
                                   for predicate in query.metadata_predicates)
            content_steps = sorted(
                (step for step in cache.values() if step.category in wanted),
                key=lambda step: step.rank)

        plan = QueryPlan(metadata_steps=metadata_steps,
                         content_steps=tuple(content_steps),
                         limit=query.limit,
                         scenario_name=self.profiler.scenario.name,
                         table=table if table is not None else query.table,
                         predicate_tree=predicate_tree,
                         select=query.select,
                         group_by=query.group_by,
                         order_by=query.order_by)
        self._plan_seconds.observe(time.perf_counter() - started,
                                   table=plan.table or "-")
        return plan
