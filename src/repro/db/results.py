"""Result sets: DB-API-flavoured cursors over query results.

``db.execute(sql)`` returns a :class:`ResultSet` rather than a bare relation
so callers can consume results the way they would from a database driver:
``len()``, row iteration, ``fetchone()`` / ``fetchmany(n)`` / ``fetchall()``
with a cursor that advances, and ``to_relation()`` for columnar access.  Rows
are built lazily, one dictionary at a time, so batched consumers never
materialize a million dictionaries at once.

A fan-out query (``SELECT * FROM all_cameras`` or ``execute(sql,
tables=[...])``) returns a :class:`FanoutResultSet`: the same cursor API over
the merged rows, a ``__table__`` provenance column naming the shard each row
came from, and per-shard plans and execution statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from repro.db.planner import QueryPlan
from repro.query.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.evaluator import CascadeEvaluation
    from repro.query.processor import QueryResult

__all__ = ["ResultSet", "FanoutResultSet", "TABLE_COLUMN"]

#: Provenance column added to merged fan-out results: the shard each row
#: came from.
TABLE_COLUMN = "__table__"


def _to_python(value):
    """NumPy scalars become plain Python values in row dictionaries."""
    return value.item() if isinstance(value, np.generic) else value


class ResultSet:
    """Rows selected by one query, plus the plan that produced them."""

    def __init__(self, result: "QueryResult", plan: QueryPlan | None) -> None:
        self._result = result
        self.plan = plan
        self._cursor = 0

    # -- shape ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._result)

    @property
    def columns(self) -> list[str]:
        """Column names, including materialized ``contains_*`` columns."""
        return self._result.relation.column_names()

    @property
    def image_ids(self) -> np.ndarray:
        """Corpus row indices of the selected images, in corpus order."""
        return self._result.selected_indices

    # -- provenance ----------------------------------------------------------
    @property
    def cascades_used(self) -> dict[str, "CascadeEvaluation"]:
        """The cascade selected for each content predicate."""
        return self._result.cascades_used

    @property
    def images_classified(self) -> dict[str, int]:
        """How many rows each content predicate actually classified."""
        return self._result.images_classified

    # -- row access -----------------------------------------------------------
    def row(self, index: int) -> dict:
        """The ``index``-th selected row as a plain dictionary."""
        relation = self._result.relation
        if not 0 <= index < len(self):
            raise IndexError(f"row {index} out of range for {len(self)} rows")
        return {name: _to_python(relation.column(name)[index])
                for name in relation.column_names()}

    def __iter__(self) -> Iterator[dict]:
        """Iterate over all rows lazily (independent of the fetch cursor)."""
        for index in range(len(self)):
            yield self.row(index)

    def fetchone(self) -> dict | None:
        """The next row, or ``None`` when the cursor is exhausted."""
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, size: int = 1) -> list[dict]:
        """The next ``size`` rows, advancing the cursor; shorter at the end.

        DB-API-ish size semantics: ``fetchmany(0)`` returns ``[]`` without
        moving the cursor; a negative size raises :class:`ValueError`.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size == 0:
            return []
        stop = min(self._cursor + size, len(self))
        rows = [self.row(index) for index in range(self._cursor, stop)]
        self._cursor = stop
        return rows

    def fetchall(self) -> list[dict]:
        """All remaining rows, advancing the cursor to the end."""
        return self.fetchmany(len(self) - self._cursor)

    def rewind(self) -> None:
        """Reset the fetch cursor to the first row."""
        self._cursor = 0

    # -- columnar access -----------------------------------------------------
    def to_relation(self) -> Relation:
        """The selected rows as a columnar :class:`Relation`."""
        return self._result.relation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scenario = self.plan.scenario_name if self.plan else "unknown"
        return (f"ResultSet(rows={len(self)}, "
                f"columns={self.columns}, "
                f"scenario={scenario!r})")


def _merge_relations(results: "Mapping[str, QueryResult]") -> Relation:
    """Concatenate shard relations, tagging rows with :data:`TABLE_COLUMN`.

    Shards may carry different metadata columns (cameras need not share a
    schema); the merge keeps the columns common to *all* shards —
    ``image_id`` and the query's ``contains_*`` columns always are.
    """
    relations = {table: result.relation for table, result in results.items()}
    common = set.intersection(*(set(relation.column_names())
                                for relation in relations.values()))
    columns = {name: np.concatenate([relation[name]
                                     for relation in relations.values()])
               for name in sorted(common)}
    columns[TABLE_COLUMN] = np.concatenate(
        [np.full(len(relation), table)
         for table, relation in relations.items()])
    return Relation(columns)


class FanoutResultSet(ResultSet):
    """Merged rows from one query fanned out across catalog tables.

    Shards are concatenated in fan-out order; every cursor/row/columnar
    operation of :class:`ResultSet` works on the merged rows, which carry a
    ``__table__`` provenance column.  Provenance accessors are *per shard*:
    :attr:`cascades_used` and :attr:`images_classified` map table name →
    per-category mapping (a shard's observed selectivity can select a
    different cascade than its neighbour's), :attr:`plans` maps table name →
    the :class:`~repro.db.planner.QueryPlan` that shard ran, and
    :meth:`per_table` recovers one shard's rows as a plain
    :class:`ResultSet`.
    """

    def __init__(self, results: "Mapping[str, QueryResult]",
                 plans: Mapping[str, QueryPlan]) -> None:
        from repro.query.processor import QueryResult

        if not results:
            raise ValueError("a fan-out needs at least one table")
        merged = QueryResult(
            relation=_merge_relations(results),
            selected_indices=np.concatenate(
                [result.selected_indices for result in results.values()]),
            cascades_used={table: dict(result.cascades_used)
                           for table, result in results.items()},
            images_classified={table: dict(result.images_classified)
                               for table, result in results.items()})
        super().__init__(merged, plan=None)
        self._per_table = dict(results)
        self.plans = dict(plans)

    @property
    def tables(self) -> tuple[str, ...]:
        """The shards this result was merged from, in fan-out order."""
        return tuple(self._per_table)

    @property
    def image_ids(self) -> np.ndarray:
        """Per-shard corpus row indices, concatenated in fan-out order.

        Indices are only unique *within* a shard; pair them with the
        ``__table__`` column (or use :meth:`per_table`) to address images.
        """
        return self._result.selected_indices

    @property
    def cascades_used(self) -> dict[str, dict[str, "CascadeEvaluation"]]:
        """Per shard: the cascade selected for each content predicate."""
        return self._result.cascades_used

    @property
    def images_classified(self) -> dict[str, dict[str, int]]:
        """Per shard: how many rows each content predicate classified."""
        return self._result.images_classified

    def per_table(self, table: str) -> ResultSet:
        """One shard's rows as a plain :class:`ResultSet` (fresh cursor)."""
        try:
            return ResultSet(self._per_table[table], self.plans.get(table))
        except KeyError:
            raise KeyError(f"no table {table!r} in this result; "
                           f"tables: {list(self._per_table)}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FanoutResultSet(rows={len(self)}, "
                f"tables={list(self._per_table)})")
