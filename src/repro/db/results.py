"""Result sets: DB-API-flavoured cursors over query results.

``db.execute(sql)`` returns a :class:`ResultSet` rather than a bare relation
so callers can consume results the way they would from a database driver:
``len()``, row iteration, ``fetchone()`` / ``fetchmany(n)`` / ``fetchall()``
with a cursor that advances, and ``to_relation()`` for columnar access.  Rows
are built lazily, one dictionary at a time, so batched consumers never
materialize a million dictionaries at once.

This module is also where the tail of the logical pipeline
(... -> Aggregate -> OrderBy -> Project -> Limit) is applied to executor
output: :func:`build_result_set` finalizes aggregates into an
:class:`AggregateResultSet`, sorts ORDER BY rows, projects the SELECT list
and applies post-sort limits.

A fan-out query (``SELECT * FROM all_cameras`` or ``execute(sql,
tables=[...])``) returns a :class:`FanoutResultSet`: the same cursor API over
the merged rows, a ``__table__`` provenance column naming the shard each row
came from, and per-shard plans and execution statistics.  A fan-out
*aggregate* never merges rows at all — each shard ships partial aggregates
(group tuples) and :meth:`AggregateResultSet.from_fanout` merges them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from repro.db.aggregates import GroupedPartials, merge_partials
from repro.db.planner import QueryPlan
from repro.query.ast import OrderItem, QueryError, select_label
from repro.query.relation import Relation, to_python as _to_python

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.evaluator import CascadeEvaluation
    from repro.query.processor import QueryResult

__all__ = ["ResultSet", "FanoutResultSet", "AggregateResultSet",
           "build_result_set", "TABLE_COLUMN"]

#: Provenance column added to merged fan-out results: the shard each row
#: came from.
TABLE_COLUMN = "__table__"


class ResultSet:
    """Rows selected by one query, plus the plan that produced them."""

    def __init__(self, result: "QueryResult", plan: QueryPlan | None) -> None:
        self._result = result
        self.plan = plan
        self._cursor = 0
        self._query_stats: dict = {}

    # -- shape ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._result)

    @property
    def columns(self) -> list[str]:
        """Column names, including materialized ``contains_*`` columns."""
        return self._result.relation.column_names()

    @property
    def image_ids(self) -> np.ndarray:
        """Stable image ids of the selected images, in corpus order.

        Ids match the relation's ``image_id`` column and survive retention
        passes (they are corpus row positions plus the table's id offset).
        """
        return self._result.selected_indices

    # -- provenance ----------------------------------------------------------
    @property
    def cascades_used(self) -> dict[str, "CascadeEvaluation"]:
        """The cascade selected for each content predicate."""
        return self._result.cascades_used

    @property
    def images_classified(self) -> dict[str, int]:
        """How many rows each content predicate actually classified."""
        return self._result.images_classified

    def attach_stats(self, **stats) -> None:
        """Record query-level execution facts (``wall_time_s``, ``trace_id``).

        Called by :meth:`repro.db.database.VisualDatabase.execute` after the
        query's trace closes; the values surface through :meth:`stats`.
        """
        self._query_stats.update(stats)

    def stats(self) -> dict:
        """A JSON-safe summary of the execution that produced this result.

        Keys: ``rows`` (selected rows, or groups for an aggregate),
        ``images_classified`` (per content predicate — per shard for a
        fan-out), ``cascades_used`` (the *name* of the cascade each content
        predicate ran), plus whatever :meth:`attach_stats` recorded —
        ``wall_time_s`` and ``trace_id`` when the database executed the
        query (both ``None`` for a result set built outside it).
        """
        def names(mapping: dict) -> dict:
            return {key: (names(value) if isinstance(value, dict)
                          else getattr(value, "name", str(value)))
                    for key, value in mapping.items()}

        classified = {
            key: (dict(value) if isinstance(value, dict) else int(value))
            for key, value in self._result.images_classified.items()}
        return {"rows": len(self),
                "images_classified": classified,
                "cascades_used": names(self._result.cascades_used),
                "wall_time_s": self._query_stats.get("wall_time_s"),
                "trace_id": self._query_stats.get("trace_id"),
                **{key: value for key, value in self._query_stats.items()
                   if key not in ("wall_time_s", "trace_id")}}

    # -- row access -----------------------------------------------------------
    def row(self, index: int) -> dict:
        """The ``index``-th selected row as a plain dictionary."""
        relation = self._result.relation
        if not 0 <= index < len(self):
            raise IndexError(f"row {index} out of range for {len(self)} rows")
        return {name: _to_python(relation.column(name)[index])
                for name in relation.column_names()}

    def __iter__(self) -> Iterator[dict]:
        """Iterate over all rows lazily (independent of the fetch cursor)."""
        for index in range(len(self)):
            yield self.row(index)

    def fetchone(self) -> dict | None:
        """The next row, or ``None`` when the cursor is exhausted."""
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, size: int = 1) -> list[dict]:
        """The next ``size`` rows, advancing the cursor; shorter at the end.

        DB-API-ish size semantics: ``fetchmany(0)`` returns ``[]`` without
        moving the cursor; a negative size raises :class:`ValueError`.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size == 0:
            return []
        stop = min(self._cursor + size, len(self))
        rows = [self.row(index) for index in range(self._cursor, stop)]
        self._cursor = stop
        return rows

    def fetchall(self) -> list[dict]:
        """All remaining rows, advancing the cursor to the end."""
        return self.fetchmany(len(self) - self._cursor)

    @property
    def remaining(self) -> int:
        """Rows the fetch cursor has not yet consumed.

        The serving layer's cursor paging is built on this: a server-side
        cursor reports ``remaining`` after every ``fetch`` so clients know
        when to stop paging without an extra empty round trip.
        """
        return len(self) - self._cursor

    def rewind(self) -> None:
        """Reset the fetch cursor to the first row."""
        self._cursor = 0

    # -- columnar access -----------------------------------------------------
    def to_relation(self) -> Relation:
        """The selected rows as a columnar :class:`Relation`."""
        return self._result.relation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scenario = self.plan.scenario_name if self.plan else "unknown"
        return (f"ResultSet(rows={len(self)}, "
                f"columns={self.columns}, "
                f"scenario={scenario!r})")


def _sorted_permutation(relation: Relation,
                        order_by: tuple[OrderItem, ...]) -> np.ndarray:
    """Row permutation sorting ``relation`` by the ORDER BY keys.

    Sorts are applied least-significant key first (each pass stable), so
    earlier keys dominate.  Descending order sorts on negated rank codes —
    dtype-agnostic, so string keys descend too.
    """
    permutation = np.arange(len(relation))
    for item in reversed(order_by):
        name = item.label
        if name not in relation:
            raise QueryError(f"ORDER BY: unknown column {name!r}; "
                             f"available: {relation.column_names()}")
        values = relation.column(name)[permutation]
        codes = np.unique(values, return_inverse=True)[1]
        if not item.ascending:
            codes = -codes
        permutation = permutation[np.argsort(codes, kind="stable")]
    return permutation


def _project(relation: Relation, names: list[str]) -> Relation:
    """Project with a query-level error naming the available columns."""
    missing = [name for name in names if name not in relation]
    if missing:
        raise QueryError(f"SELECT: unknown column(s) {missing}; "
                         f"available: {relation.column_names()}")
    # Preserve SELECT-list order while dropping duplicates.
    return relation.project(list(dict.fromkeys(names)))


def _shape_rows(result: "QueryResult", plan: QueryPlan | None,
                extra_columns: tuple[str, ...] = ()) -> "QueryResult":
    """Apply the OrderBy -> Project -> Limit tail to a row result.

    The executor already applied ``LIMIT`` when early stop was legal; under
    ORDER BY it deferred both, so the limit is applied here, after the sort.
    ``extra_columns`` (fan-out provenance) survive projection.
    """
    from repro.query.processor import QueryResult

    if plan is None or (not plan.order_by and plan.select is None):
        return result
    relation, selected = result.relation, result.selected_indices
    if plan.order_by:
        permutation = _sorted_permutation(relation, plan.order_by)
        if plan.limit is not None:
            permutation = permutation[:plan.limit]
        relation = relation.take(permutation)
        selected = selected[permutation]
    if plan.select is not None:
        names = [select_label(item) for item in plan.select]
        relation = _project(relation, names + list(extra_columns))
    return QueryResult(relation=relation, selected_indices=selected,
                       cascades_used=result.cascades_used,
                       images_classified=result.images_classified)


def build_result_set(result: "QueryResult",
                     plan: QueryPlan | None) -> "ResultSet":
    """Wrap one executor result according to its plan.

    Aggregate plans finalize the executor's partial aggregates into an
    :class:`AggregateResultSet`; row plans get ORDER BY / projection /
    post-sort LIMIT applied and come back as a plain :class:`ResultSet`.
    """
    if plan is not None and plan.is_aggregate:
        return AggregateResultSet(result.partials, plan,
                                  cascades_used=result.cascades_used,
                                  images_classified=result.images_classified)
    return ResultSet(_shape_rows(result, plan), plan)


class AggregateResultSet(ResultSet):
    """Groups produced by an aggregate query (aggregates and/or GROUP BY).

    Rows are *group tuples* — the GROUP BY columns plus one column per
    aggregate, named by its SQL spelling (``count(*)``, ``avg(speed)``).
    The full cursor API of :class:`ResultSet` works over the groups; ORDER
    BY, the SELECT projection and LIMIT have already been applied.  For a
    fan-out query (:meth:`from_fanout`) the groups are the coordinator-side
    merge of every shard's partial aggregates — COUNT/SUM/MIN/MAX merge
    associatively and AVG merges exactly via (sum, count) — and
    ``cascades_used`` / ``images_classified`` / ``plans`` are per shard, as
    on :class:`FanoutResultSet`.
    """

    def __init__(self, partials: GroupedPartials, plan: QueryPlan, *,
                 cascades_used: dict, images_classified: dict,
                 plans: Mapping[str, QueryPlan] | None = None) -> None:
        from repro.query.processor import QueryResult

        if partials is None:
            raise ValueError("aggregate plan executed without partials; "
                             "the executor did not aggregate")
        relation = partials.finalize()
        if plan.order_by:
            permutation = _sorted_permutation(relation, plan.order_by)
            relation = relation.take(permutation)
        if plan.limit is not None:
            relation = relation.take(np.arange(min(plan.limit,
                                                   len(relation))))
        if plan.select is not None:
            relation = _project(relation,
                                [select_label(item) for item in plan.select])
        result = QueryResult(relation=relation,
                             selected_indices=np.arange(len(relation)),
                             cascades_used=cascades_used,
                             images_classified=images_classified)
        super().__init__(result, plan)
        self.partials = partials
        self.plans = dict(plans) if plans is not None else None

    @classmethod
    def from_fanout(cls, results: "Mapping[str, QueryResult]",
                    plans: Mapping[str, QueryPlan]) -> "AggregateResultSet":
        """Merge per-shard partial aggregates at the coordinator.

        Shards ship group tuples, never selected rows; the reference plan
        (they differ only in per-shard cascade choices) supplies the
        ORDER BY / projection / LIMIT tail applied to the merged groups.
        """
        if not results:
            raise ValueError("a fan-out needs at least one table")
        merged = None
        for result in results.values():
            merged = (result.partials if merged is None
                      else merge_partials(merged, result.partials))
        reference = next(iter(plans.values()))
        return cls(merged, reference,
                   cascades_used={table: dict(result.cascades_used)
                                  for table, result in results.items()},
                   images_classified={table: dict(result.images_classified)
                                      for table, result in results.items()},
                   plans=plans)

    @property
    def image_ids(self) -> np.ndarray:
        raise QueryError("aggregate results are groups, not images; "
                         "image ids are not defined")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AggregateResultSet(groups={len(self)}, "
                f"columns={self.columns})")


def _fill_column(dtype: np.dtype, n: int) -> np.ndarray:
    """A typed fill for a column a shard does not carry."""
    if np.issubdtype(dtype, np.floating):
        value = np.nan
    elif np.issubdtype(dtype, np.bool_):
        value = False
    elif np.issubdtype(dtype, np.unsignedinteger):
        value = np.iinfo(dtype).max  # -1 would overflow; max is the sentinel
    elif np.issubdtype(dtype, np.integer):
        value = -1
    elif dtype.kind in ("U", "S"):
        value = ""
    else:
        value = None
    return np.full(n, value, dtype=dtype)


def _merge_relations(results: "Mapping[str, QueryResult]") -> Relation:
    """Concatenate shard relations, tagging rows with :data:`TABLE_COLUMN`.

    Shards may carry different metadata columns (cameras need not share a
    schema); the merge takes the column *union*, padding the shards that
    lack a column with a typed fill value (NaN for floats, -1 for integers,
    False for booleans, "" for strings) so no shard's rows — and no shard's
    columns — are silently dropped or misaligned.
    """
    relations = {table: result.relation for table, result in results.items()}
    union: list[str] = []
    for relation in relations.values():
        union.extend(name for name in relation.column_names()
                     if name not in union)
    columns = {}
    for name in sorted(union):
        present = [relation[name] for relation in relations.values()
                   if name in relation]
        dtype = np.result_type(*(array.dtype for array in present))
        columns[name] = np.concatenate(
            [np.asarray(relation[name], dtype=dtype) if name in relation
             else _fill_column(dtype, len(relation))
             for relation in relations.values()])
    columns[TABLE_COLUMN] = np.concatenate(
        [np.full(len(relation), table)
         for table, relation in relations.items()])
    return Relation(columns)


def _head(result: "QueryResult", n: int) -> "QueryResult":
    """The first ``n`` selected rows of a shard's result (corpus order)."""
    from repro.query.processor import QueryResult

    mask = np.zeros(len(result.relation), dtype=bool)
    mask[:n] = True
    return QueryResult(relation=result.relation.filter(mask),
                       selected_indices=result.selected_indices[:n],
                       cascades_used=result.cascades_used,
                       images_classified=result.images_classified)


def _apply_limit(results: "Mapping[str, QueryResult]",
                 limit: int | None) -> "dict[str, QueryResult]":
    """Cap the merged fan-out at ``limit`` rows.

    Each shard's plan carries the limit as a per-shard upper bound (chunked
    early stop), so up to ``limit x shards`` rows arrive here; the merged
    result must still honour ``LIMIT n`` — rows are kept in corpus order
    within a shard and attachment order across shards.  Shards past the cap
    keep their execution statistics but contribute zero rows.
    """
    if limit is None:
        return dict(results)
    capped, remaining = {}, limit
    for table, result in results.items():
        take = min(len(result), remaining)
        capped[table] = result if take == len(result) else _head(result, take)
        remaining -= take
    return capped


class FanoutResultSet(ResultSet):
    """Merged rows from one query fanned out across catalog tables.

    Shards are concatenated in fan-out order; every cursor/row/columnar
    operation of :class:`ResultSet` works on the merged rows, which carry a
    ``__table__`` provenance column.  Provenance accessors are *per shard*:
    :attr:`cascades_used` and :attr:`images_classified` map table name →
    per-category mapping (a shard's observed selectivity can select a
    different cascade than its neighbour's), :attr:`plans` maps table name →
    the :class:`~repro.db.planner.QueryPlan` that shard ran, and
    :meth:`per_table` recovers one shard's rows as a plain
    :class:`ResultSet`.

    A ``LIMIT n`` query caps the *merged* rows at ``n`` (corpus order within
    a shard, attachment order across shards); per-shard statistics still
    report the work each shard actually did, and :meth:`per_table` views are
    consistent with the merged rows.  Under ``ORDER BY`` the merged rows are
    instead sorted *globally* before the limit and projection apply, and
    :meth:`per_table` then exposes each shard's full selected rows as the
    executor produced them — unsorted, unprojected and uncapped — since no
    per-shard subset can reflect a global sort.
    """

    def __init__(self, results: "Mapping[str, QueryResult]",
                 plans: Mapping[str, QueryPlan]) -> None:
        from repro.query.processor import QueryResult

        if not results:
            raise ValueError("a fan-out needs at least one table")
        reference = next(iter(plans.values())) if plans else None
        limit = reference.limit if reference is not None else None
        if reference is None or not reference.order_by:
            # Per-shard plans carry LIMIT n as an upper bound (each shard's
            # chunked early stop), so the union can hold up to n x shards
            # rows; the merged result still honours the query's LIMIT.
            results = _apply_limit(results, limit)
        merged = QueryResult(
            relation=_merge_relations(results),
            selected_indices=np.concatenate(
                [result.selected_indices for result in results.values()]),
            cascades_used={table: dict(result.cascades_used)
                           for table, result in results.items()},
            images_classified={table: dict(result.images_classified)
                               for table, result in results.items()})
        # Under ORDER BY the merged rows are sorted globally before the
        # LIMIT applies (shards could not early-stop), and the projection
        # keeps the provenance column.
        merged = _shape_rows(merged, reference,
                             extra_columns=(TABLE_COLUMN,))
        super().__init__(merged, plan=None)
        self._per_table = dict(results)
        self.plans = dict(plans)

    @property
    def tables(self) -> tuple[str, ...]:
        """The shards this result was merged from, in fan-out order."""
        return tuple(self._per_table)

    @property
    def image_ids(self) -> np.ndarray:
        """Per-shard stable image ids, concatenated in fan-out order.

        Ids are only unique *within* a shard; pair them with the
        ``__table__`` column (or use :meth:`per_table`) to address images.
        """
        return self._result.selected_indices

    @property
    def cascades_used(self) -> dict[str, dict[str, "CascadeEvaluation"]]:
        """Per shard: the cascade selected for each content predicate."""
        return self._result.cascades_used

    @property
    def images_classified(self) -> dict[str, dict[str, int]]:
        """Per shard: how many rows each content predicate classified."""
        return self._result.images_classified

    def per_table(self, table: str) -> ResultSet:
        """One shard's rows as a plain :class:`ResultSet` (fresh cursor)."""
        try:
            return ResultSet(self._per_table[table], self.plans.get(table))
        except KeyError:
            raise KeyError(f"no table {table!r} in this result; "
                           f"tables: {list(self._per_table)}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FanoutResultSet(rows={len(self)}, "
                f"tables={list(self._per_table)})")
