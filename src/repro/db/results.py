"""Result sets: DB-API-flavoured cursors over query results.

``db.execute(sql)`` returns a :class:`ResultSet` rather than a bare relation
so callers can consume results the way they would from a database driver:
``len()``, row iteration, ``fetchone()`` / ``fetchmany(n)`` / ``fetchall()``
with a cursor that advances, and ``to_relation()`` for columnar access.  Rows
are built lazily, one dictionary at a time, so batched consumers never
materialize a million dictionaries at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.db.planner import QueryPlan
from repro.query.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.evaluator import CascadeEvaluation
    from repro.query.processor import QueryResult

__all__ = ["ResultSet"]


def _to_python(value):
    """NumPy scalars become plain Python values in row dictionaries."""
    return value.item() if isinstance(value, np.generic) else value


class ResultSet:
    """Rows selected by one query, plus the plan that produced them."""

    def __init__(self, result: "QueryResult", plan: QueryPlan) -> None:
        self._result = result
        self.plan = plan
        self._cursor = 0

    # -- shape ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._result)

    @property
    def columns(self) -> list[str]:
        """Column names, including materialized ``contains_*`` columns."""
        return self._result.relation.column_names()

    @property
    def image_ids(self) -> np.ndarray:
        """Corpus row indices of the selected images, in corpus order."""
        return self._result.selected_indices

    # -- provenance ----------------------------------------------------------
    @property
    def cascades_used(self) -> dict[str, "CascadeEvaluation"]:
        """The cascade selected for each content predicate."""
        return self._result.cascades_used

    @property
    def images_classified(self) -> dict[str, int]:
        """How many rows each content predicate actually classified."""
        return self._result.images_classified

    # -- row access -----------------------------------------------------------
    def row(self, index: int) -> dict:
        """The ``index``-th selected row as a plain dictionary."""
        relation = self._result.relation
        if not 0 <= index < len(self):
            raise IndexError(f"row {index} out of range for {len(self)} rows")
        return {name: _to_python(relation.column(name)[index])
                for name in relation.column_names()}

    def __iter__(self) -> Iterator[dict]:
        """Iterate over all rows lazily (independent of the fetch cursor)."""
        for index in range(len(self)):
            yield self.row(index)

    def fetchone(self) -> dict | None:
        """The next row, or ``None`` when the cursor is exhausted."""
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, size: int = 1) -> list[dict]:
        """The next ``size`` rows, advancing the cursor; shorter at the end."""
        if size < 1:
            raise ValueError("size must be at least 1")
        stop = min(self._cursor + size, len(self))
        rows = [self.row(index) for index in range(self._cursor, stop)]
        self._cursor = stop
        return rows

    def fetchall(self) -> list[dict]:
        """All remaining rows, advancing the cursor to the end."""
        return self.fetchmany(max(1, len(self) - self._cursor)) \
            if self._cursor < len(self) else []

    def rewind(self) -> None:
        """Reset the fetch cursor to the first row."""
        self._cursor = 0

    # -- columnar access -----------------------------------------------------
    def to_relation(self) -> Relation:
        """The selected rows as a columnar :class:`Relation`."""
        return self._result.relation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultSet(rows={len(self)}, "
                f"columns={self.columns}, "
                f"scenario={self.plan.scenario_name!r})")
