"""Result sets: DB-API-flavoured cursors over query results.

``db.execute(sql)`` returns a :class:`ResultSet` rather than a bare relation
so callers can consume results the way they would from a database driver:
``len()``, row iteration, ``fetchone()`` / ``fetchmany(n)`` / ``fetchall()``
with a cursor that advances, and ``to_relation()`` for columnar access.  Rows
are built lazily, one dictionary at a time, so batched consumers never
materialize a million dictionaries at once.

A fan-out query (``SELECT * FROM all_cameras`` or ``execute(sql,
tables=[...])``) returns a :class:`FanoutResultSet`: the same cursor API over
the merged rows, a ``__table__`` provenance column naming the shard each row
came from, and per-shard plans and execution statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from repro.db.planner import QueryPlan
from repro.query.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.evaluator import CascadeEvaluation
    from repro.query.processor import QueryResult

__all__ = ["ResultSet", "FanoutResultSet", "TABLE_COLUMN"]

#: Provenance column added to merged fan-out results: the shard each row
#: came from.
TABLE_COLUMN = "__table__"


def _to_python(value):
    """NumPy scalars become plain Python values in row dictionaries."""
    return value.item() if isinstance(value, np.generic) else value


class ResultSet:
    """Rows selected by one query, plus the plan that produced them."""

    def __init__(self, result: "QueryResult", plan: QueryPlan | None) -> None:
        self._result = result
        self.plan = plan
        self._cursor = 0

    # -- shape ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._result)

    @property
    def columns(self) -> list[str]:
        """Column names, including materialized ``contains_*`` columns."""
        return self._result.relation.column_names()

    @property
    def image_ids(self) -> np.ndarray:
        """Stable image ids of the selected images, in corpus order.

        Ids match the relation's ``image_id`` column and survive retention
        passes (they are corpus row positions plus the table's id offset).
        """
        return self._result.selected_indices

    # -- provenance ----------------------------------------------------------
    @property
    def cascades_used(self) -> dict[str, "CascadeEvaluation"]:
        """The cascade selected for each content predicate."""
        return self._result.cascades_used

    @property
    def images_classified(self) -> dict[str, int]:
        """How many rows each content predicate actually classified."""
        return self._result.images_classified

    # -- row access -----------------------------------------------------------
    def row(self, index: int) -> dict:
        """The ``index``-th selected row as a plain dictionary."""
        relation = self._result.relation
        if not 0 <= index < len(self):
            raise IndexError(f"row {index} out of range for {len(self)} rows")
        return {name: _to_python(relation.column(name)[index])
                for name in relation.column_names()}

    def __iter__(self) -> Iterator[dict]:
        """Iterate over all rows lazily (independent of the fetch cursor)."""
        for index in range(len(self)):
            yield self.row(index)

    def fetchone(self) -> dict | None:
        """The next row, or ``None`` when the cursor is exhausted."""
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, size: int = 1) -> list[dict]:
        """The next ``size`` rows, advancing the cursor; shorter at the end.

        DB-API-ish size semantics: ``fetchmany(0)`` returns ``[]`` without
        moving the cursor; a negative size raises :class:`ValueError`.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size == 0:
            return []
        stop = min(self._cursor + size, len(self))
        rows = [self.row(index) for index in range(self._cursor, stop)]
        self._cursor = stop
        return rows

    def fetchall(self) -> list[dict]:
        """All remaining rows, advancing the cursor to the end."""
        return self.fetchmany(len(self) - self._cursor)

    def rewind(self) -> None:
        """Reset the fetch cursor to the first row."""
        self._cursor = 0

    # -- columnar access -----------------------------------------------------
    def to_relation(self) -> Relation:
        """The selected rows as a columnar :class:`Relation`."""
        return self._result.relation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scenario = self.plan.scenario_name if self.plan else "unknown"
        return (f"ResultSet(rows={len(self)}, "
                f"columns={self.columns}, "
                f"scenario={scenario!r})")


def _fill_column(dtype: np.dtype, n: int) -> np.ndarray:
    """A typed fill for a column a shard does not carry."""
    if np.issubdtype(dtype, np.floating):
        value = np.nan
    elif np.issubdtype(dtype, np.bool_):
        value = False
    elif np.issubdtype(dtype, np.unsignedinteger):
        value = np.iinfo(dtype).max  # -1 would overflow; max is the sentinel
    elif np.issubdtype(dtype, np.integer):
        value = -1
    elif dtype.kind in ("U", "S"):
        value = ""
    else:
        value = None
    return np.full(n, value, dtype=dtype)


def _merge_relations(results: "Mapping[str, QueryResult]") -> Relation:
    """Concatenate shard relations, tagging rows with :data:`TABLE_COLUMN`.

    Shards may carry different metadata columns (cameras need not share a
    schema); the merge takes the column *union*, padding the shards that
    lack a column with a typed fill value (NaN for floats, -1 for integers,
    False for booleans, "" for strings) so no shard's rows — and no shard's
    columns — are silently dropped or misaligned.
    """
    relations = {table: result.relation for table, result in results.items()}
    union: list[str] = []
    for relation in relations.values():
        union.extend(name for name in relation.column_names()
                     if name not in union)
    columns = {}
    for name in sorted(union):
        present = [relation[name] for relation in relations.values()
                   if name in relation]
        dtype = np.result_type(*(array.dtype for array in present))
        columns[name] = np.concatenate(
            [np.asarray(relation[name], dtype=dtype) if name in relation
             else _fill_column(dtype, len(relation))
             for relation in relations.values()])
    columns[TABLE_COLUMN] = np.concatenate(
        [np.full(len(relation), table)
         for table, relation in relations.items()])
    return Relation(columns)


def _head(result: "QueryResult", n: int) -> "QueryResult":
    """The first ``n`` selected rows of a shard's result (corpus order)."""
    from repro.query.processor import QueryResult

    mask = np.zeros(len(result.relation), dtype=bool)
    mask[:n] = True
    return QueryResult(relation=result.relation.filter(mask),
                       selected_indices=result.selected_indices[:n],
                       cascades_used=result.cascades_used,
                       images_classified=result.images_classified)


def _apply_limit(results: "Mapping[str, QueryResult]",
                 limit: int | None) -> "dict[str, QueryResult]":
    """Cap the merged fan-out at ``limit`` rows.

    Each shard's plan carries the limit as a per-shard upper bound (chunked
    early stop), so up to ``limit x shards`` rows arrive here; the merged
    result must still honour ``LIMIT n`` — rows are kept in corpus order
    within a shard and attachment order across shards.  Shards past the cap
    keep their execution statistics but contribute zero rows.
    """
    if limit is None:
        return dict(results)
    capped, remaining = {}, limit
    for table, result in results.items():
        take = min(len(result), remaining)
        capped[table] = result if take == len(result) else _head(result, take)
        remaining -= take
    return capped


class FanoutResultSet(ResultSet):
    """Merged rows from one query fanned out across catalog tables.

    Shards are concatenated in fan-out order; every cursor/row/columnar
    operation of :class:`ResultSet` works on the merged rows, which carry a
    ``__table__`` provenance column.  Provenance accessors are *per shard*:
    :attr:`cascades_used` and :attr:`images_classified` map table name →
    per-category mapping (a shard's observed selectivity can select a
    different cascade than its neighbour's), :attr:`plans` maps table name →
    the :class:`~repro.db.planner.QueryPlan` that shard ran, and
    :meth:`per_table` recovers one shard's rows as a plain
    :class:`ResultSet`.

    A ``LIMIT n`` query caps the *merged* rows at ``n`` (corpus order within
    a shard, attachment order across shards); per-shard statistics still
    report the work each shard actually did, and :meth:`per_table` views are
    consistent with the merged rows.
    """

    def __init__(self, results: "Mapping[str, QueryResult]",
                 plans: Mapping[str, QueryPlan]) -> None:
        from repro.query.processor import QueryResult

        if not results:
            raise ValueError("a fan-out needs at least one table")
        # Per-shard plans carry LIMIT n as an upper bound (each shard's
        # chunked early stop), so the union can hold up to n x shards rows;
        # the merged result still honours the query's LIMIT.
        limit = next(iter(plans.values())).limit if plans else None
        results = _apply_limit(results, limit)
        merged = QueryResult(
            relation=_merge_relations(results),
            selected_indices=np.concatenate(
                [result.selected_indices for result in results.values()]),
            cascades_used={table: dict(result.cascades_used)
                           for table, result in results.items()},
            images_classified={table: dict(result.images_classified)
                               for table, result in results.items()})
        super().__init__(merged, plan=None)
        self._per_table = dict(results)
        self.plans = dict(plans)

    @property
    def tables(self) -> tuple[str, ...]:
        """The shards this result was merged from, in fan-out order."""
        return tuple(self._per_table)

    @property
    def image_ids(self) -> np.ndarray:
        """Per-shard stable image ids, concatenated in fan-out order.

        Ids are only unique *within* a shard; pair them with the
        ``__table__`` column (or use :meth:`per_table`) to address images.
        """
        return self._result.selected_indices

    @property
    def cascades_used(self) -> dict[str, dict[str, "CascadeEvaluation"]]:
        """Per shard: the cascade selected for each content predicate."""
        return self._result.cascades_used

    @property
    def images_classified(self) -> dict[str, dict[str, int]]:
        """Per shard: how many rows each content predicate classified."""
        return self._result.images_classified

    def per_table(self, table: str) -> ResultSet:
        """One shard's rows as a plain :class:`ResultSet` (fresh cursor)."""
        try:
            return ResultSet(self._per_table[table], self.plans.get(table))
        except KeyError:
            raise KeyError(f"no table {table!r} in this result; "
                           f"tables: {list(self._per_table)}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FanoutResultSet(rows={len(self)}, "
                f"tables={list(self._per_table)})")
