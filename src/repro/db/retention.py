"""Retention policies: a table as a sliding window over its feed.

The paper's ONGOING scenario assumes a camera feed that runs forever.  The
byte-budgeted representation store bounds *representation* memory, but the
corpus itself, the base relation and the materialized virtual columns still
grow with every ``db.ingest()``.  A :class:`RetentionPolicy` closes that gap:
it declares how much history one table keeps — a maximum row count, a maximum
age relative to the newest frame's timestamp, or both — and the executor
drops the oldest rows whenever the window is exceeded (automatically at the
end of every ingest, or on demand via ``db.retain()``).

Dropping rows never renumbers the survivors: each table carries a stable
*id offset* (the number of rows ever dropped), so ``image_id`` values keep
naming the same frames across retention passes, a repeated query never
re-classifies surviving rows, and a dropped row's id is never reused.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetentionPolicy"]


@dataclass(frozen=True)
class RetentionPolicy:
    """How much history one table keeps; older rows are dropped.

    Parameters
    ----------
    max_rows:
        Keep at most this many rows (the newest ones).  Must be >= 1 — a
        retention pass never empties a table.
    max_age:
        Keep only rows whose ``timestamp_column`` value is within ``max_age``
        of the *newest* row's (event-time age, so a stalled wall clock never
        silently empties a feed; the newest row is always retained).
    timestamp_column:
        The metadata column ``max_age`` is measured against.  Rows are
        assumed to arrive in timestamp order (a feed); only the contiguous
        oldest prefix is ever dropped.
    align_to_segments:
        Round the drop *down* to a corpus segment boundary, so retention
        only ever pops whole immutable segments (O(1) each, no survivor
        copies) and never splits one.  The window may then temporarily hold
        up to one segment of extra history; the default (``False``) keeps
        the exact row semantics.

    At least one of ``max_rows`` / ``max_age`` must be set.
    """

    max_rows: int | None = None
    max_age: float | None = None
    timestamp_column: str = "timestamp"
    align_to_segments: bool = False

    def __post_init__(self) -> None:
        if self.max_rows is None and self.max_age is None:
            raise ValueError("a retention policy needs max_rows, max_age, "
                             "or both")
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {self.max_rows}")
        if self.max_age is not None and not self.max_age > 0:
            raise ValueError(f"max_age must be positive, got {self.max_age}")

    def rows_to_drop(self, corpus) -> int:
        """How many of ``corpus``'s oldest rows fall outside the window."""
        n = len(corpus)
        if n == 0:
            return 0
        drop = 0
        if self.max_rows is not None and n > self.max_rows:
            drop = n - self.max_rows
        if self.max_age is not None:
            # metadata_arrays() skips the image consolidation a .metadata
            # read would force on a freshly ingested segmented corpus.
            columns = (corpus.metadata_arrays()
                       if hasattr(corpus, "metadata_arrays")
                       else corpus.metadata)
            try:
                timestamps = columns[self.timestamp_column]
            except KeyError:
                raise KeyError(
                    f"retention timestamp column {self.timestamp_column!r} "
                    f"not in corpus metadata "
                    f"{sorted(columns)}") from None
            timestamps = np.asarray(timestamps, dtype=np.float64)
            fresh = timestamps >= timestamps.max() - self.max_age
            # The newest row satisfies the cutoff by construction, so argmax
            # always finds a True: the leading run of False is the stale
            # prefix to drop.
            drop = max(drop, int(np.argmax(fresh)))
        if drop and self.align_to_segments:
            drop = self._align_down(corpus, drop)
        return drop

    @staticmethod
    def _align_down(corpus, drop: int) -> int:
        """The largest segment-boundary drop count not exceeding ``drop``."""
        rows = getattr(corpus, "segment_rows", None)
        if rows is None:  # a corpus without segments: exact semantics
            return drop
        boundary = 0
        for segment_rows in rows():
            if boundary + segment_rows > drop:
                break
            boundary += segment_rows
        return boundary

    def to_dict(self) -> dict:
        """JSON-serializable form (see :mod:`repro.db.persistence`)."""
        data = {"max_rows": self.max_rows, "max_age": self.max_age,
                "timestamp_column": self.timestamp_column}
        # Only persisted when set, so v4 saves of default policies stay
        # byte-compatible with what v3 readers expect.
        if self.align_to_segments:
            data["align_to_segments"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RetentionPolicy":
        return cls(max_rows=data.get("max_rows"),
                   max_age=data.get("max_age"),
                   timestamp_column=data.get("timestamp_column", "timestamp"),
                   align_to_segments=bool(data.get("align_to_segments",
                                                   False)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.max_rows is not None:
            parts.append(f"max_rows={self.max_rows}")
        if self.max_age is not None:
            parts.append(f"max_age={self.max_age}")
            parts.append(f"timestamp_column={self.timestamp_column!r}")
        if self.align_to_segments:
            parts.append("align_to_segments=True")
        return f"RetentionPolicy({', '.join(parts)})"
