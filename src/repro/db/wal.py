"""Per-table write-ahead log: durable segments between checkpoints.

A full :func:`repro.db.persistence.save_database` is a *checkpoint* — a
consistent image of every table whose cost grows with corpus size.  For the
paper's ONGOING/CAMERA scenarios (long-lived streaming tables) that is the
wrong durability unit: a crash between checkpoints would lose every
``ingest()`` since the last one.  The write-ahead log closes that window by
journaling each mutation as it happens:

* ``ingest()`` appends a **segment** record — the freshly appended
  :class:`~repro.data.corpus.CorpusSegment`'s arrays land in an ``.npz``
  payload next to the log, and one JSON line references it,
* retention appends a **drop** record (``{"type": "drop", "rows": n}``),
* ``set_retention`` appends a **retention** record so the policy itself
  survives a crash,
* attaching a table after the last checkpoint appends an **attach** record
  carrying the table's baseline corpus, and ``detach`` a **detach**
  tombstone.

Recovery = load the checkpoint, then replay each table's log tail in order.

Layout (inside a format-v4 database directory)::

    wal/<table>/log-<g>.jsonl       generation g: one JSON object per line
    wal/<table>/seg-<g>-<n>.npz     arrays for segment/attach record n of g

**Generations** make checkpoints crash-safe: a checkpoint :meth:`rotate`\\ s
the log (freezing the current generation, opening the next) *before* it
starts writing files, and the manifest records the new generation number
only once the checkpoint is complete.  A crash mid-checkpoint therefore
leaves the old manifest pointing at the old generation — recovery replays
the frozen generation plus the new one and loses nothing.  Generations the
manifest has absorbed are deleted by :meth:`prune` after the manifest is
durably in place.

Two further invariants make replay safe, even across power loss (not just
process kills):

* **payload-before-line** — the ``.npz`` payload is written to a temp file,
  fsynced, ``os.replace``-d into place, and the directory entry fsynced,
  all *before* the JSON line referencing it is appended (itself fsynced),
  so a durable log line implies its payload is complete and durable,
* **torn-tail tolerance** — a crash mid-append leaves at most one partial
  final line; :meth:`TableWal.records` stops at the first unparsable line
  and reopening the log truncates the torn bytes, so the tail never poisons
  a later replay.
"""

from __future__ import annotations

import json
import os
import re
import time
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from repro.data.corpus import CorpusSegment
from repro.locking import make_lock
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["TableWal", "wal_dir", "wal_tables"]

_LOG_RE = re.compile(r"^log-(\d+)\.jsonl$")
_PAYLOAD_RE = re.compile(r"^seg-(\d+)-(\d+)\.npz$")


def wal_dir(root: Path | str, table: str) -> Path:
    """The log directory for ``table`` under database root ``root``."""
    return Path(root) / "wal" / table


def fsync_dir(path: Path) -> None:
    """Make ``path``'s directory entries (renames, new files) durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def wal_tables(root: Path | str) -> list[str]:
    """Tables with a write-ahead log under ``root`` (sorted)."""
    base = Path(root) / "wal"
    if not base.is_dir():
        return []
    return sorted(entry.name for entry in base.iterdir() if entry.is_dir())


def _segment_to_payload(segment: CorpusSegment) -> dict[str, np.ndarray]:
    payload: dict[str, np.ndarray] = {"images": segment.images}
    for key, values in segment.metadata.items():
        payload[f"metadata/{key}"] = values
    for key, values in segment.content.items():
        payload[f"content/{key}"] = values
    return payload


def _segment_from_payload(path: Path) -> CorpusSegment:
    with np.load(path, allow_pickle=False) as archive:
        images = archive["images"]
        metadata, content = {}, {}
        for key in archive.files:
            if key.startswith("metadata/"):
                metadata[key[len("metadata/"):]] = archive[key]
            elif key.startswith("content/"):
                content[key[len("content/"):]] = archive[key]
    return CorpusSegment(images=images, metadata=metadata, content=content)


class TableWal:
    """Append-only journal for one table.

    The executor calls the ``log_*`` methods *while holding its shard lock*,
    immediately after applying the mutation in memory — so the log order is
    exactly the apply order and replaying it reproduces the in-memory state.
    The handle keeps the active generation's log file open for append;
    :meth:`close` flushes and releases it (idempotent).
    """

    def __init__(self, root: Path | str, table: str,
                 metrics: MetricsRegistry | None = None) -> None:
        self.table = table
        self.directory = wal_dir(root, table)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._append_seconds = self.metrics.histogram(
            "repro_wal_append_seconds")
        self._lock = make_lock(f"wal:{table}")
        generations = self.generations()
        self._generation = generations[-1] if generations else 0  # guarded by: self._lock
        # A crash can only tear the latest generation's final append; older
        # generations were frozen by a rotate and are complete.
        self._truncate_torn_tail(self._generation)
        # Per-generation record counts, maintained in memory from here on
        # (append/rotate/prune) so record_count() never re-reads the logs.
        self._counts = {generation: self._count_records(generation)  # guarded by: self._lock
                        for generation in generations}
        self._counts.setdefault(self._generation, 0)
        self._sequence = self._counts[self._generation]  # guarded by: self._lock
        self._handle = open(self._log_path(self._generation), "a",  # guarded by: self._lock
                            encoding="utf-8")
        # The open() above may have created the log file (and mkdir the
        # directory); make both directory entries durable before the first
        # fsynced line can claim durability.
        fsync_dir(self.directory)
        fsync_dir(self.directory.parent)
        self._closed = False  # guarded by: self._lock

    def _log_path(self, generation: int) -> Path:
        return self.directory / f"log-{generation}.jsonl"

    @property
    def generation(self) -> int:
        """The generation currently receiving appends."""
        return self._generation

    def generations(self) -> list[int]:
        """Generations present on disk, oldest first."""
        found = []
        for entry in self.directory.iterdir():
            match = _LOG_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    # -- appending ---------------------------------------------------------
    def log_segment(self, segment: CorpusSegment) -> None:
        """Journal one freshly ingested corpus segment (durable payload)."""
        self._append_with_payload("segment", segment)

    def log_attach(self, segment: CorpusSegment, *,
                   id_offset: int = 0) -> None:
        """Journal a table's baseline corpus (attach after last checkpoint)."""
        self._append_with_payload("attach", segment,
                                  extra={"id_offset": int(id_offset)})

    def log_drop(self, rows: int) -> None:
        """Journal a retention drop of the ``rows`` oldest rows."""
        self._append_line({"type": "drop", "rows": int(rows)})

    def log_retention(self, policy_dict: dict | None) -> None:
        """Journal a retention-policy change (``None`` clears the policy)."""
        self._append_line({"type": "retention", "policy": policy_dict})

    def log_detach(self) -> None:
        """Journal that this table was detached (replay drops it)."""
        self._append_line({"type": "detach"})

    def _append_with_payload(self, record_type: str, segment: CorpusSegment,
                             extra: dict | None = None) -> None:
        started = time.perf_counter()
        with self._lock:
            self._ensure_open()
            payload_name = f"seg-{self._generation}-{self._sequence}.npz"
            final = self.directory / payload_name
            # payload-before-line: the payload bytes are fsynced, renamed
            # into place atomically, and the rename made durable — so once
            # the (fsynced) JSON line below exists, the payload it names is
            # complete and durable even across power loss.
            tmp = self.directory / f".{payload_name}.tmp"
            with open(tmp, "wb") as handle:
                np.savez(handle, **_segment_to_payload(segment))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
            fsync_dir(self.directory)
            record = {"type": record_type, "payload": payload_name,
                      "rows": len(segment)}
            if extra:
                record.update(extra)
            self._write_line(record)
            self._advance()
        self._append_seconds.observe(time.perf_counter() - started,
                                     table=self.table)

    def _append_line(self, record: dict) -> None:
        started = time.perf_counter()
        with self._lock:
            self._ensure_open()
            self._write_line(record)
            self._advance()
        self._append_seconds.observe(time.perf_counter() - started,
                                     table=self.table)

    def _advance(self) -> None:
        self._sequence += 1
        self._counts[self._generation] = self._sequence

    def _write_line(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"WAL for table {self.table!r} is closed")

    # -- reading -----------------------------------------------------------
    def records(self, from_generation: int = 0) -> Iterator[dict]:
        """Yield parsed records of generations >= ``from_generation``, in
        order.

        ``segment``/``attach`` records come back with their payload loaded
        under the ``"segment"`` key; each record also carries its
        ``"generation"``.  Parsing a generation stops at a torn final line.
        Records stream lazily — payload arrays are loaded one record at a
        time as the caller advances, so replaying a long tail never holds
        every segment's bytes in memory at once.
        """
        for generation in self.generations():
            if generation < from_generation:
                continue
            with open(self._log_path(generation), encoding="utf-8") as handle:
                for line in handle:
                    record = _parse_line(line)
                    if record is None:
                        break  # torn tail: the crash interrupted this append
                    if record["type"] in ("segment", "attach"):
                        payload = self.directory / record["payload"]
                        record["segment"] = _segment_from_payload(payload)
                    record["generation"] = generation
                    yield record

    def record_count(self) -> int:
        """Complete records across all live generations (tears excluded).

        Served from in-memory counters (maintained across append, rotate and
        prune), so stats endpoints never re-read or re-parse the log files.
        """
        with self._lock:
            return sum(self._counts.values())

    def _count_records(self, generation: int) -> int:
        path = self._log_path(generation)
        if not path.exists():
            return 0
        count = 0
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if _parse_line(line) is None:
                    break
                count += 1
        return count

    # -- lifecycle ---------------------------------------------------------
    def rotate(self) -> int:
        """Freeze the current generation and open the next; returns it.

        Called by a checkpoint *under the shard lock, before writing any
        file*: mutations after the rotate land in the new generation, so the
        checkpoint image plus generations >= the returned number is always
        the complete state — whether or not the checkpoint finishes.
        """
        with self._lock:
            self._ensure_open()
            self._handle.flush()
            self._handle.close()
            self._generation += 1
            self._sequence = 0
            self._counts[self._generation] = 0
            self._handle = open(self._log_path(self._generation), "a",
                                encoding="utf-8")
            # Make the new generation's directory entry durable before any
            # fsynced line lands in it.
            fsync_dir(self.directory)
            return self._generation

    def prune(self, before_generation: int) -> None:
        """Delete generations < ``before_generation`` (absorbed by a
        checkpoint whose manifest is durably in place)."""
        with self._lock:
            for entry in list(self.directory.iterdir()):
                match = _LOG_RE.match(entry.name) or \
                    _PAYLOAD_RE.match(entry.name)
                if match and int(match.group(1)) < before_generation:
                    entry.unlink()
            self._counts = {generation: count
                            for generation, count in self._counts.items()
                            if generation >= before_generation}

    def close(self) -> None:
        """Flush and release the log handle; safe to call twice."""
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            self._handle.close()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _truncate_torn_tail(self, generation: int) -> None:
        """Drop a partial final line left by a crash mid-append."""
        log_path = self._log_path(generation)
        if not log_path.exists():
            return
        keep = 0
        with open(log_path, "rb") as handle:
            for line in handle:
                if _parse_line(line.decode("utf-8", errors="replace")) is None:
                    break
                keep += len(line)
            size = handle.seek(0, os.SEEK_END)
        if keep < size:
            with open(log_path, "rb+") as handle:
                handle.truncate(keep)


def _parse_line(line: str) -> dict | None:
    """One log line as a record dict, or ``None`` when torn/invalid."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or "type" not in record:
        return None
    return record
