"""Experiment harness: the code that regenerates every table and figure.

Each evaluation artifact of the paper maps to one function here (and one
benchmark under ``benchmarks/`` that calls it and prints the rows):

==========  =====================================================
Artifact    Function
==========  =====================================================
Table II    :func:`repro.data.categories.list_category_names`
Figure 4    :func:`repro.experiments.scenarios.frontier_example`
Figure 5    :func:`repro.experiments.speedups.design_space_comparison`
Figure 6    :func:`repro.experiments.speedups.average_speedups`
Figure 7    :func:`repro.experiments.speedups.fastest_throughput`
Figure 8    :func:`repro.experiments.noscope_exp.noscope_comparison`
Figure 9    :func:`repro.experiments.scenarios.scenario_frontiers`
Table III   :func:`repro.experiments.scenarios.scenario_awareness_table`
Figure 10   :func:`repro.experiments.ablation.transform_ablation`
Figure 11   :func:`repro.experiments.ablation.depth_analysis`
==========  =====================================================
"""

from repro.experiments.ablation import (
    DepthRow,
    TransformAblationRow,
    depth_analysis,
    transform_ablation,
)
from repro.experiments.noscope_exp import StreamComparison, noscope_comparison
from repro.experiments.presets import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    simulation_scenarios,
)
from repro.experiments.reporting import format_table, to_csv_lines
from repro.experiments.scenarios import (
    AwarenessRow,
    FrontierComparison,
    frontier_example,
    reference_only_evaluation,
    scenario_awareness_table,
    scenario_frontiers,
)
from repro.experiments.speedups import (
    DesignSpaceComparison,
    FastestRow,
    SpeedupRow,
    average_speedups,
    baseline_evaluation,
    design_space_comparison,
    fastest_throughput,
)
from repro.experiments.workspace import (
    ExperimentWorkspace,
    PredicateWorkspace,
    build_workspace,
    clear_workspace_cache,
    get_workspace,
)

__all__ = [
    "ExperimentScale",
    "SMOKE_SCALE",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "simulation_scenarios",
    "ExperimentWorkspace",
    "PredicateWorkspace",
    "build_workspace",
    "get_workspace",
    "clear_workspace_cache",
    "FrontierComparison",
    "frontier_example",
    "scenario_frontiers",
    "AwarenessRow",
    "scenario_awareness_table",
    "reference_only_evaluation",
    "DesignSpaceComparison",
    "design_space_comparison",
    "SpeedupRow",
    "average_speedups",
    "FastestRow",
    "fastest_throughput",
    "baseline_evaluation",
    "TransformAblationRow",
    "transform_ablation",
    "DepthRow",
    "depth_analysis",
    "StreamComparison",
    "noscope_comparison",
    "format_table",
    "to_csv_lines",
]
