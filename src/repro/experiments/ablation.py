"""Ablation experiments: Figure 10 (input transformations) and Figure 11 (depth)."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.alc import average_throughput
from repro.core.cascade import CascadeBuilder
from repro.core.evaluator import evaluate_cascades
from repro.core.model import TrainedModel
from repro.experiments.workspace import ExperimentWorkspace, PredicateWorkspace
from repro.transforms.spec import transform_subsets

__all__ = ["TransformAblationRow", "transform_ablation", "DepthRow", "depth_analysis"]

#: The transformation subsets of Figure 10, in the paper's plotting order.
TRANSFORM_SUBSETS = ("none", "color", "resize", "full")


@dataclass
class TransformAblationRow:
    """Figure 10: one predicate's average optimal throughput per subset."""

    category: str
    subset_throughputs: dict[str, float]

    def ordered(self) -> list[float]:
        return [self.subset_throughputs[name] for name in TRANSFORM_SUBSETS]


def _models_for_subset(predicate: PredicateWorkspace,
                       allowed_names: set[str]) -> list[TrainedModel]:
    return [model for model in predicate.optimizer.models
            if model.transform.name in allowed_names]


def transform_ablation(workspace: ExperimentWorkspace,
                       scenario_name: str = "camera",
                       categories: list[str] | None = None
                       ) -> list[TransformAblationRow]:
    """Figure 10: average throughput of optimal cascades per transformation subset.

    For each predicate, cascade sets are rebuilt from the subset of already-
    trained models whose representation belongs to the subset (None / Color
    Variations / Resizing / Full) and compared by ALC-average throughput over
    the Full set's accuracy range, exactly as in the paper.
    """
    categories = categories or workspace.category_names()
    profiler = workspace.profiler(scenario_name)
    subsets = transform_subsets(workspace.scale.resolutions,
                                workspace.scale.color_modes)
    subset_names = {name: {spec.name for spec in specs}
                    for name, specs in subsets.items()}

    rows = []
    for category in categories:
        predicate = workspace.predicates[category]
        builder = CascadeBuilder(predicate.optimizer.thresholds,
                                 max_depth=workspace.scale.max_depth,
                                 reference_model=predicate.reference_model)

        evaluations = {}
        for subset_name in TRANSFORM_SUBSETS:
            models = _models_for_subset(predicate, subset_names[subset_name])
            if not models:
                evaluations[subset_name] = None
                continue
            cascades = builder.build(models, include_reference_tail=True)
            evaluations[subset_name] = evaluate_cascades(
                cascades, predicate.optimizer.cache, profiler)

        full_eval = evaluations["full"]
        accuracy_range = full_eval.accuracy_range()
        throughputs = {}
        for subset_name in TRANSFORM_SUBSETS:
            evaluation = evaluations[subset_name]
            if evaluation is None:
                throughputs[subset_name] = 0.0
                continue
            throughputs[subset_name] = average_throughput(
                evaluation.frontier_points(), accuracy_range)
        rows.append(TransformAblationRow(category=category,
                                         subset_throughputs=throughputs))
    return rows


@dataclass
class DepthRow:
    """Figure 11: one cascade-depth configuration's frontier statistics."""

    label: str
    max_depth: int
    with_reference_tail: bool
    n_cascades: int
    evaluation_seconds: float
    average_throughput: float
    frontier: list[tuple[float, float]]


def _select_depth_pool(predicate: PredicateWorkspace, pool_size: int
                       ) -> list[TrainedModel]:
    """A deterministic subset of models, largest first by training accuracy.

    The full three-level cross product over every model is intractable (the
    paper makes the same point: ~45M cascades, 40 minutes); like the paper we
    demonstrate the diminishing returns on a restricted pool.
    """
    ranked = sorted(predicate.optimizer.models,
                    key=lambda m: (m.train_accuracy, m.name), reverse=True)
    return ranked[:pool_size]


def depth_analysis(workspace: ExperimentWorkspace, category: str,
                   scenario_name: str = "camera", max_depth: int = 3,
                   pool_size: int = 10) -> list[DepthRow]:
    """Figure 11: Pareto frontier evolution as maximum cascade depth grows."""
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")
    predicate = workspace.predicates[category]
    profiler = workspace.profiler(scenario_name)
    pool = _select_depth_pool(predicate, pool_size)

    rows = []
    accuracy_range: tuple[float, float] | None = None
    for depth in range(1, max_depth + 1):
        for with_tail in (False, True):
            builder = CascadeBuilder(
                predicate.optimizer.thresholds, max_depth=depth,
                reference_model=predicate.reference_model if with_tail else None)
            start = time.perf_counter()
            cascades = builder.build(pool, include_reference_tail=with_tail)
            evaluation = evaluate_cascades(cascades, predicate.optimizer.cache,
                                           profiler)
            elapsed = time.perf_counter() - start
            if accuracy_range is None:
                accuracy_range = evaluation.accuracy_range()
            label = f"{depth} level" + (" + reference" if with_tail else "")
            rows.append(DepthRow(
                label=label, max_depth=depth, with_reference_tail=with_tail,
                n_cascades=len(cascades), evaluation_seconds=elapsed,
                average_throughput=average_throughput(
                    evaluation.frontier_points(), accuracy_range),
                frontier=evaluation.frontier_points()))
    return rows
