"""The NoScope comparison (Figure 8): NoScope vs. TAHOMA+DD on video streams."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.difference import DifferenceDetector
from repro.baselines.noscope import (
    NoScopePipeline,
    PipelineResult,
    TahomaWithDifferenceDetector,
)
from repro.baselines.reference import train_reference_model
from repro.core.optimizer import TahomaConfig, TahomaOptimizer
from repro.core.selector import select_matching_accuracy
from repro.core.spec import ModelSpec
from repro.core.thresholds import calibrate_thresholds
from repro.core.trainer import ModelTrainer
from repro.costs.device import calibrate_device
from repro.costs.profiler import CostProfiler
from repro.costs.scenario import INFER_ONLY
from repro.data.corpus import LabeledDataset, PredicateDataSplits
from repro.data.video import CORAL_PRESET, JACKSON_PRESET, VideoStream, generate_video_stream
from repro.experiments.presets import ExperimentScale
from repro.transforms.spec import TransformSpec

__all__ = ["StreamComparison", "noscope_comparison", "split_stream"]

#: Cascade threshold precision target used by both systems (paper: 0.95).
COMPARISON_PRECISION = 0.95


@dataclass
class StreamComparison:
    """Figure 8, one stream: both pipelines' results on the held-out frames."""

    stream_name: str
    noscope: PipelineResult
    tahoma_dd: PipelineResult

    @property
    def speedup(self) -> float:
        if self.noscope.throughput == 0:
            return float("inf")
        return self.tahoma_dd.throughput / self.noscope.throughput


def split_stream(stream: VideoStream, train_fraction: float = 0.4,
                 config_fraction: float = 0.2,
                 rng: np.random.Generator | None = None) -> tuple[PredicateDataSplits,
                                                                  LabeledDataset]:
    """Split a stream into train/config splits plus held-out evaluation frames.

    The evaluation frames are kept in temporal order (the difference detector
    depends on frame adjacency); the training and configuration splits are
    shuffled as usual.
    """
    if not 0 < train_fraction < 1 or not 0 < config_fraction < 1:
        raise ValueError("fractions must be in (0, 1)")
    if train_fraction + config_fraction >= 1:
        raise ValueError("train and config fractions must leave evaluation frames")
    rng = rng or np.random.default_rng(0)
    n = len(stream)
    n_train = int(n * train_fraction)
    n_config = int(n * config_fraction)

    dataset = stream.as_dataset()
    train = dataset.subset(np.arange(0, n_train)).shuffled(rng)
    config = dataset.subset(np.arange(n_train, n_train + n_config)).shuffled(rng)
    held_out = dataset.subset(np.arange(n_train + n_config, n))
    splits = PredicateDataSplits(train=train, config=config, eval=held_out)
    return splits, held_out


def _build_noscope(scale: ExperimentScale, splits: PredicateDataSplits,
                   oracle, detector: DifferenceDetector,
                   rng: np.random.Generator) -> NoScopePipeline:
    """Train NoScope's single specialized full-input CNN and calibrate it."""
    architectures = scale.architectures()
    # NoScope's specialized model: the largest architecture, full-size input.
    architecture = max(architectures,
                       key=lambda a: (a.conv_layers, a.conv_filters, a.dense_units))
    spec = ModelSpec(architecture=architecture,
                     transform=TransformSpec(scale.image_size, "rgb"))
    trainer = ModelTrainer(scale.training)
    specialized = trainer.train_models([spec], splits.train, rng=rng)[0]

    config_probs = specialized.predict_proba(splits.config.images)
    calibration = calibrate_thresholds(config_probs, splits.config.labels,
                                       precision_target=COMPARISON_PRECISION)
    return NoScopePipeline(specialized=specialized,
                           thresholds=calibration.thresholds, oracle=oracle,
                           detector=detector)


def _build_tahoma_dd(scale: ExperimentScale, splits: PredicateDataSplits,
                     oracle, detector: DifferenceDetector, target_accuracy: float,
                     profiler: CostProfiler,
                     rng: np.random.Generator) -> TahomaWithDifferenceDetector:
    """Initialize TAHOMA on the stream and pick the matching-accuracy cascade."""
    config = TahomaConfig(
        architectures=tuple(scale.architectures()),
        transforms=tuple(scale.transforms()),
        precision_targets=(COMPARISON_PRECISION,),
        max_depth=scale.max_depth,
        training=scale.training)
    optimizer = TahomaOptimizer(config)
    optimizer.initialize(splits, reference_model=oracle, rng=rng)
    frontier = optimizer.frontier(profiler)
    chosen = select_matching_accuracy(frontier, target_accuracy)
    return TahomaWithDifferenceDetector(cascade=chosen.cascade, detector=detector)


def noscope_comparison(scale: ExperimentScale,
                       stream_names: tuple[str, ...] = ("coral", "jackson"),
                       seed: int = 0) -> list[StreamComparison]:
    """Figure 8: run NoScope and TAHOMA+DD on each synthetic stream.

    Both systems share the oracle (the reference network, standing in for
    YOLOv2), the difference detector and the INFER ONLY cost accounting, which
    matches the paper's measurement protocol.
    """
    presets = {"coral": CORAL_PRESET, "jackson": JACKSON_PRESET}
    results = []
    for index, stream_name in enumerate(stream_names):
        try:
            preset = presets[stream_name]
        except KeyError:
            raise KeyError(f"unknown stream {stream_name!r}; "
                           f"available: {sorted(presets)}") from None
        rng = np.random.default_rng(seed + index)
        stream_config = replace(preset, frame_size=scale.image_size,
                                n_frames=scale.video_frames)
        stream = generate_video_stream(stream_config, rng)
        splits, held_out = split_stream(stream, rng=rng)

        oracle = train_reference_model(
            splits, resolution=scale.image_size, epochs=scale.reference_epochs,
            base_width=scale.reference_width, n_stages=scale.reference_stages,
            blocks_per_stage=scale.reference_blocks,
            name=f"oracle-{stream_name}", rng=rng)

        device = calibrate_device(scale.device, oracle.flops,
                                  target_fps=scale.reference_target_fps)
        profiler = CostProfiler(device, INFER_ONLY,
                                source_resolution=scale.image_size)

        detector = DifferenceDetector()
        detector.calibrate(splits.train.images,
                           target_reuse=0.25 if stream_name == "coral" else 0.05)

        noscope = _build_noscope(scale, splits, oracle, detector, rng)
        noscope_result = noscope.run(held_out.images, held_out.labels, profiler)

        tahoma_dd = _build_tahoma_dd(scale, splits, oracle, detector,
                                     noscope_result.accuracy, profiler, rng)
        tahoma_result = tahoma_dd.run(held_out.images, held_out.labels, profiler)

        results.append(StreamComparison(stream_name=stream_name,
                                        noscope=noscope_result,
                                        tahoma_dd=tahoma_result))
    return results
