"""Experiment scales and deployment presets.

The paper's experiments train 360 Keras models per predicate on a K80 GPU and
source 224x224 images; this reproduction runs the structurally identical
pipeline at a reduced scale so everything fits in CPU minutes.  Every knob is
collected in :class:`ExperimentScale`; three presets are provided:

* ``SMOKE_SCALE`` — minutes-of-seconds scale used by the test suite,
* ``DEFAULT_SCALE`` — the scale the committed benchmarks run at,
* ``PAPER_SCALE`` — the paper's own grid sizes, for users with the time (and
  ideally a vectorizing BLAS) to run the full thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.spec import ArchitectureSpec, standard_architecture_grid
from repro.core.thresholds import PAPER_PRECISION_TARGETS
from repro.core.trainer import TrainingConfig
from repro.costs.device import SERVER_GPU, DeviceProfile
from repro.costs.scenario import ARCHIVE, CAMERA, INFER_ONLY, ONGOING, Scenario
from repro.data.categories import list_category_names
from repro.storage.tiers import StorageTier
from repro.transforms.spec import TransformSpec, standard_transform_grid

__all__ = [
    "ExperimentScale",
    "SMOKE_SCALE",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "simulation_scenarios",
    "SIMULATED_SSD",
]

#: Storage tier used by the simulated ARCHIVE/ONGOING scenarios.  Bandwidth is
#: deliberately modest so byte counts (not fixed latency) dominate load times
#: at the reduced image scale, preserving the paper's scenario ordering.
SIMULATED_SSD = StorageTier("ssd-sim", bandwidth_bytes_per_s=50e6, latency_s=10e-6)


def simulation_scenarios() -> dict[str, Scenario]:
    """The paper's four scenarios, with loads priced against the simulated SSD."""
    return {
        "infer_only": INFER_ONLY,
        "archive": replace(ARCHIVE, load_tier=SIMULATED_SSD),
        "ongoing": replace(ONGOING, load_tier=SIMULATED_SSD),
        "camera": CAMERA,
    }


@dataclass(frozen=True)
class ExperimentScale:
    """Every size knob of an experiment run."""

    name: str
    categories: tuple[str, ...]
    image_size: int
    n_train: int
    n_config: int
    n_eval: int
    resolutions: tuple[int, ...]
    color_modes: tuple[str, ...]
    conv_layers: tuple[int, ...]
    conv_filters: tuple[int, ...]
    dense_units: tuple[int, ...]
    precision_targets: tuple[float, ...]
    max_depth: int
    training: TrainingConfig
    reference_epochs: int
    reference_width: int
    reference_stages: int
    reference_blocks: int
    reference_target_fps: float = 75.0
    device: DeviceProfile = SERVER_GPU
    video_frames: int = 400
    #: Resolution at which data-handling costs are priced (the paper's 224 px
    #: camera frames), independent of the reduced rendering resolution.
    cost_resolution: int = 224
    seed: int = 0

    def architectures(self) -> list[ArchitectureSpec]:
        """The architecture grid at this scale."""
        return standard_architecture_grid(self.conv_layers, self.conv_filters,
                                          self.dense_units)

    def transforms(self) -> list[TransformSpec]:
        """The transformation grid (``F``) at this scale."""
        return standard_transform_grid(self.resolutions, self.color_modes)

    def n_model_specs(self) -> int:
        """Number of valid (architecture, transform) points at this scale."""
        from repro.core.spec import build_model_grid

        return len(build_model_grid(self.architectures(), self.transforms()))


#: Tiny scale for the test suite: two predicates, seconds per predicate.
SMOKE_SCALE = ExperimentScale(
    name="smoke",
    categories=("komondor", "scorpion"),
    image_size=16,
    n_train=48, n_config=32, n_eval=32,
    resolutions=(8, 16),
    color_modes=("rgb", "gray"),
    conv_layers=(1, 2),
    conv_filters=(4,),
    dense_units=(8,),
    precision_targets=(0.9, 0.95),
    max_depth=2,
    training=TrainingConfig(epochs=2, batch_size=16, augment=True),
    reference_epochs=5, reference_width=8, reference_stages=2, reference_blocks=1,
    video_frames=120,
    seed=0,
)

#: The scale the committed benchmarks run at (CPU minutes for all figures).
DEFAULT_SCALE = ExperimentScale(
    name="default",
    categories=tuple(list_category_names()),
    image_size=32,
    n_train=96, n_config=64, n_eval=64,
    resolutions=(8, 16, 32),
    color_modes=("rgb", "red", "green", "blue", "gray"),
    conv_layers=(1, 2),
    conv_filters=(8,),
    dense_units=(16, 32),
    precision_targets=(0.93, 0.97),
    max_depth=2,
    training=TrainingConfig(epochs=4, batch_size=32, augment=True),
    reference_epochs=6, reference_width=16, reference_stages=3, reference_blocks=1,
    video_frames=400,
    seed=0,
)

#: The paper's own grid sizes (360 models per predicate, 5 precision targets).
PAPER_SCALE = ExperimentScale(
    name="paper",
    categories=tuple(list_category_names()),
    image_size=224,
    n_train=2000, n_config=800, n_eval=1000,
    resolutions=(30, 60, 120, 224),
    color_modes=("rgb", "red", "green", "blue", "gray"),
    conv_layers=(1, 2, 4),
    conv_filters=(16, 32),
    dense_units=(16, 32, 64),
    precision_targets=PAPER_PRECISION_TARGETS,
    max_depth=2,
    training=TrainingConfig(epochs=10, batch_size=32, augment=True),
    reference_epochs=10, reference_width=32, reference_stages=4, reference_blocks=2,
    video_frames=5000,
    seed=0,
)
