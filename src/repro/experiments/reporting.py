"""Plain-text reporting helpers shared by the benchmark harness."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_float", "to_csv_lines"]


def format_float(value: Any, digits: int = 1) -> str:
    """Format numbers compactly; pass everything else through ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 digits: int = 1) -> str:
    """Render an aligned text table (the benchmarks print these)."""
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered = [[format_float(cell, digits) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def to_csv_lines(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> list[str]:
    """Simple CSV rendering (no quoting needs arise in our reports)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(str(cell) for cell in row))
    return lines
