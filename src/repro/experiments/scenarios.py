"""Scenario-awareness experiments: Figure 4, Figure 9 and Table III."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alc import average_throughput
from repro.core.cascade import Cascade, CascadeLevel
from repro.core.evaluator import EvaluatedCascadeSet, evaluate_cascade
from repro.core.selector import UserConstraints, select_cascade
from repro.experiments.workspace import ExperimentWorkspace, PredicateWorkspace

__all__ = ["FrontierComparison", "frontier_example", "scenario_frontiers",
           "AwarenessRow", "scenario_awareness_table", "reference_only_evaluation"]


@dataclass
class FrontierComparison:
    """One predicate's cascade space under a scenario vs. the oblivious choice.

    ``all_points`` are every cascade's (accuracy, throughput) under the target
    scenario; ``aware_frontier`` is the Pareto frontier computed under that
    scenario; ``oblivious_frontier`` contains the cascades that are Pareto-
    optimal under the *oblivious* scenario (INFER ONLY by default), re-priced
    under the target scenario — the orange points of Figures 4 and 9.
    """

    category: str
    scenario_name: str
    oblivious_scenario_name: str
    all_points: list[tuple[float, float]]
    aware_frontier: list[tuple[float, float]]
    oblivious_frontier: list[tuple[float, float]]

    def awareness_gain(self) -> float:
        """ALC ratio of the aware frontier over the re-priced oblivious one."""
        accuracies = [p[0] for p in self.aware_frontier]
        accuracy_range = (min(accuracies), max(accuracies))
        aware = average_throughput(self.aware_frontier, accuracy_range)
        oblivious = average_throughput(self.oblivious_frontier, accuracy_range)
        if oblivious == 0:
            return float("inf")
        return aware / oblivious


def frontier_example(workspace: ExperimentWorkspace, category: str,
                     scenario_name: str = "camera",
                     oblivious_scenario_name: str = "infer_only"
                     ) -> FrontierComparison:
    """Figure 4: one predicate's cascades, aware vs. oblivious frontiers."""
    predicate = workspace.predicates[category]
    target_profiler = workspace.profiler(scenario_name)
    oblivious_profiler = workspace.profiler(oblivious_scenario_name)

    target_eval = predicate.optimizer.evaluate(target_profiler)
    oblivious_eval = predicate.optimizer.evaluate(oblivious_profiler)

    # Re-price the oblivious frontier's cascades under the target scenario.
    oblivious_frontier_cascades = [evaluation.cascade
                                   for evaluation in oblivious_eval.frontier()]
    repriced = [evaluate_cascade(cascade, predicate.optimizer.cache, target_profiler)
                for cascade in oblivious_frontier_cascades]

    return FrontierComparison(
        category=category, scenario_name=scenario_name,
        oblivious_scenario_name=oblivious_scenario_name,
        all_points=target_eval.points(),
        aware_frontier=target_eval.frontier_points(),
        oblivious_frontier=[evaluation.point() for evaluation in repriced])


def scenario_frontiers(workspace: ExperimentWorkspace,
                       categories: list[str] | None = None,
                       scenario_name: str = "camera") -> list[FrontierComparison]:
    """Figure 9: the Figure 4 comparison for several predicates."""
    categories = categories or workspace.category_names()
    return [frontier_example(workspace, category, scenario_name)
            for category in categories]


def reference_only_evaluation(predicate: PredicateWorkspace, profiler):
    """Evaluate the reference classifier alone (the ResNet50 baseline)."""
    cascade = Cascade((CascadeLevel(predicate.reference_model, None),))
    return evaluate_cascade(cascade, predicate.optimizer.cache, profiler)


@dataclass
class AwarenessRow:
    """One row of Table III: a scenario at one permissible accuracy loss."""

    scenario_name: str
    accuracy_loss: float
    oblivious_fps: float
    aware_fps: float

    @property
    def gain_percent(self) -> float:
        if self.oblivious_fps == 0:
            return float("inf")
        return 100.0 * (self.aware_fps / self.oblivious_fps - 1.0)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def scenario_awareness_table(workspace: ExperimentWorkspace,
                             loss_levels: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10),
                             scenario_names: tuple[str, ...] = ("archive", "camera",
                                                                "ongoing"),
                             oblivious_scenario_name: str = "infer_only"
                             ) -> list[AwarenessRow]:
    """Table III: throughput when cascades are chosen obliviously vs. aware.

    For every scenario and accuracy-loss budget, the *aware* choice selects
    the cascade from the scenario's own frontier, while the *oblivious* choice
    selects from the INFER ONLY frontier and is then re-priced under the
    scenario's true costs.  Throughputs are averaged over all predicates.
    """
    rows = []
    oblivious_profiler = workspace.profiler(oblivious_scenario_name)

    # Cache per-predicate evaluations so each (predicate, scenario) pair is
    # evaluated once across all loss levels.
    oblivious_evals: dict[str, EvaluatedCascadeSet] = {}
    scenario_evals: dict[tuple[str, str], EvaluatedCascadeSet] = {}
    for name, predicate in workspace.predicates.items():
        oblivious_evals[name] = predicate.optimizer.evaluate(oblivious_profiler)
        for scenario_name in scenario_names:
            scenario_evals[(name, scenario_name)] = predicate.optimizer.evaluate(
                workspace.profiler(scenario_name))

    for scenario_name in scenario_names:
        target_profiler = workspace.profiler(scenario_name)
        for loss in loss_levels:
            constraints = UserConstraints(max_accuracy_loss=loss if loss > 0 else None)
            oblivious_fps, aware_fps = [], []
            for name, predicate in workspace.predicates.items():
                aware_choice = select_cascade(
                    scenario_evals[(name, scenario_name)].frontier(), constraints)
                aware_fps.append(aware_choice.throughput)

                oblivious_choice = select_cascade(
                    oblivious_evals[name].frontier(), constraints)
                repriced = evaluate_cascade(oblivious_choice.cascade,
                                            predicate.optimizer.cache,
                                            target_profiler)
                oblivious_fps.append(repriced.throughput)
            rows.append(AwarenessRow(scenario_name=scenario_name,
                                     accuracy_loss=loss,
                                     oblivious_fps=_mean(oblivious_fps),
                                     aware_fps=_mean(aware_fps)))
    return rows
