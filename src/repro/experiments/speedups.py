"""Speedup experiments: Figure 5, Figure 6 and Figure 7."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.baseline_cascades import build_baseline_cascades
from repro.core.alc import average_throughput, shared_accuracy_range, speedup
from repro.core.evaluator import EvaluatedCascadeSet, evaluate_cascades
from repro.core.selector import select_fastest, select_matching_accuracy
from repro.experiments.scenarios import reference_only_evaluation
from repro.experiments.workspace import ExperimentWorkspace, PredicateWorkspace

__all__ = ["DesignSpaceComparison", "design_space_comparison", "SpeedupRow",
           "average_speedups", "FastestRow", "fastest_throughput",
           "baseline_evaluation"]


def baseline_evaluation(predicate: PredicateWorkspace, profiler,
                        source_resolution: int) -> EvaluatedCascadeSet:
    """Evaluate the paper's Baseline cascade set for one predicate."""
    cascades = build_baseline_cascades(
        predicate.optimizer.models, predicate.optimizer.thresholds,
        predicate.reference_model, source_resolution)
    return evaluate_cascades(cascades, predicate.optimizer.cache, profiler)


@dataclass
class DesignSpaceComparison:
    """Figure 5: TAHOMA's cascade space vs. the Baseline cascade space."""

    category: str
    scenario_name: str
    tahoma_points: list[tuple[float, float]]
    tahoma_frontier: list[tuple[float, float]]
    baseline_points: list[tuple[float, float]]
    baseline_frontier: list[tuple[float, float]]

    def tahoma_speedup(self) -> float:
        """ALC speedup of TAHOMA's frontier over the Baseline frontier."""
        accuracy_range = shared_accuracy_range(self.tahoma_frontier,
                                               self.baseline_frontier)
        return speedup(self.tahoma_frontier, self.baseline_frontier, accuracy_range)


def design_space_comparison(workspace: ExperimentWorkspace, category: str,
                            scenario_name: str = "camera") -> DesignSpaceComparison:
    """Figure 5 for one predicate under one scenario."""
    predicate = workspace.predicates[category]
    profiler = workspace.profiler(scenario_name)
    tahoma_eval = predicate.optimizer.evaluate(profiler)
    baseline_eval = baseline_evaluation(predicate, profiler,
                                        workspace.scale.image_size)
    return DesignSpaceComparison(
        category=category, scenario_name=scenario_name,
        tahoma_points=tahoma_eval.points(),
        tahoma_frontier=tahoma_eval.frontier_points(),
        baseline_points=baseline_eval.points(),
        baseline_frontier=baseline_eval.frontier_points())


@dataclass
class SpeedupRow:
    """Figure 6: TAHOMA's average speedups under one deployment scenario."""

    scenario_name: str
    vs_reference: float
    vs_baseline_fastest: float
    vs_baseline_average: float


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def average_speedups(workspace: ExperimentWorkspace,
                     scenario_names: tuple[str, ...] = ("infer_only", "ongoing",
                                                        "camera", "archive")
                     ) -> list[SpeedupRow]:
    """Figure 6: average speedup of TAHOMA over the baselines, per scenario.

    * ``vs_reference`` — at the accuracy of the reference classifier, the
      speedup of the Pareto cascade with the nearest higher accuracy.
    * ``vs_baseline_fastest`` — at the accuracy of the fastest Baseline
      cascade, the speedup of TAHOMA's nearest-higher-accuracy cascade.
    * ``vs_baseline_average`` — the ALC speedup over the Baseline cascade
      set's accuracy range.
    """
    rows = []
    for scenario_name in scenario_names:
        profiler = workspace.profiler(scenario_name)
        vs_reference, vs_fastest, vs_average = [], [], []
        for predicate in workspace.predicates.values():
            tahoma_eval = predicate.optimizer.evaluate(profiler)
            frontier = tahoma_eval.frontier()
            baseline_eval = baseline_evaluation(predicate, profiler,
                                                workspace.scale.image_size)

            reference_eval = reference_only_evaluation(predicate, profiler)
            match = select_matching_accuracy(frontier, reference_eval.accuracy)
            vs_reference.append(match.throughput / reference_eval.throughput)

            baseline_fastest = select_fastest(baseline_eval.evaluations)
            match = select_matching_accuracy(frontier, baseline_fastest.accuracy)
            vs_fastest.append(match.throughput / baseline_fastest.throughput)

            accuracy_range = shared_accuracy_range(baseline_eval.points(),
                                                   tahoma_eval.points())
            vs_average.append(speedup(tahoma_eval.frontier_points(),
                                      baseline_eval.frontier_points(),
                                      accuracy_range))
        rows.append(SpeedupRow(scenario_name=scenario_name,
                               vs_reference=_mean(vs_reference),
                               vs_baseline_fastest=_mean(vs_fastest),
                               vs_baseline_average=_mean(vs_average)))
    return rows


@dataclass
class FastestRow:
    """Figure 7: throughput of the fastest optimal cascade vs. the reference."""

    scenario_name: str
    reference_fps: float
    tahoma_fastest_fps: float
    tahoma_fastest_accuracy: float
    reference_accuracy: float

    @property
    def speedup(self) -> float:
        if self.reference_fps == 0:
            return float("inf")
        return self.tahoma_fastest_fps / self.reference_fps

    @property
    def accuracy_drop(self) -> float:
        """Accuracy given up by taking the fastest cascade (paper: ~12%)."""
        return self.reference_accuracy - self.tahoma_fastest_accuracy


def fastest_throughput(workspace: ExperimentWorkspace,
                       scenario_names: tuple[str, ...] = ("infer_only", "ongoing",
                                                          "camera", "archive")
                       ) -> list[FastestRow]:
    """Figure 7: the fastest Pareto-optimal cascade per scenario, averaged."""
    rows = []
    for scenario_name in scenario_names:
        profiler = workspace.profiler(scenario_name)
        reference_fps, fastest_fps = [], []
        fastest_accuracy, reference_accuracy = [], []
        for predicate in workspace.predicates.values():
            frontier = predicate.optimizer.frontier(profiler)
            fastest = select_fastest(frontier)
            reference_eval = reference_only_evaluation(predicate, profiler)
            fastest_fps.append(fastest.throughput)
            fastest_accuracy.append(fastest.accuracy)
            reference_fps.append(reference_eval.throughput)
            reference_accuracy.append(reference_eval.accuracy)
        rows.append(FastestRow(scenario_name=scenario_name,
                               reference_fps=_mean(reference_fps),
                               tahoma_fastest_fps=_mean(fastest_fps),
                               tahoma_fastest_accuracy=_mean(fastest_accuracy),
                               reference_accuracy=_mean(reference_accuracy)))
    return rows
