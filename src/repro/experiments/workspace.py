"""Experiment workspaces: trained model pools shared by all figures.

Building the model pool (training ~60 models plus the reference classifier
per predicate) is by far the most expensive part of the reproduction, and
every figure reuses the same pool under different cost profiles or cascade
subsets.  The workspace is therefore built once per scale and cached at
process level; benchmarks and examples obtain it through
:func:`get_workspace`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import TrainedModel
from repro.core.optimizer import TahomaConfig, TahomaOptimizer
from repro.core.selector import UserConstraints
from repro.costs.device import DeviceProfile, calibrate_device
from repro.costs.profiler import CostProfiler
from repro.data.categories import get_category
from repro.data.corpus import ImageCorpus, PredicateDataSplits, build_predicate_splits
from repro.db.database import VisualDatabase, initialize_predicate
from repro.experiments.presets import ExperimentScale, simulation_scenarios

__all__ = ["PredicateWorkspace", "ExperimentWorkspace", "build_workspace",
           "get_workspace", "clear_workspace_cache"]


@dataclass
class PredicateWorkspace:
    """Everything initialized for one binary predicate."""

    category_name: str
    splits: PredicateDataSplits
    optimizer: TahomaOptimizer
    reference_model: TrainedModel

    @property
    def models(self) -> list[TrainedModel]:
        return self.optimizer.models


@dataclass
class ExperimentWorkspace:
    """Initialized predicates plus the calibrated device for one scale."""

    scale: ExperimentScale
    predicates: dict[str, PredicateWorkspace]
    device: DeviceProfile

    def profilers(self) -> dict[str, CostProfiler]:
        """One calibrated cost profiler per deployment scenario."""
        return {name: CostProfiler(self.device, scenario,
                                   source_resolution=self.scale.image_size,
                                   cost_resolution=self.scale.cost_resolution)
                for name, scenario in simulation_scenarios().items()}

    def profiler(self, scenario_name: str) -> CostProfiler:
        """The profiler for one named scenario."""
        profilers = self.profilers()
        try:
            return profilers[scenario_name]
        except KeyError:
            raise KeyError(f"unknown scenario {scenario_name!r}; "
                           f"available: {sorted(profilers)}") from None

    def category_names(self) -> list[str]:
        return list(self.predicates)

    def database(self, scenario_name: str = "infer_only",
                 corpus: "ImageCorpus | dict[str, ImageCorpus] | None" = None,
                 constraints: UserConstraints | None = None) -> VisualDatabase:
        """A :class:`~repro.db.VisualDatabase` over this workspace's predicates.

        The facade reuses the workspace's trained optimizers and calibrated
        device (no retraining, no re-calibration), so experiments and
        benchmarks can issue SQL queries against the exact model pools the
        figures were produced from.  ``corpus`` may be a single corpus
        (registered as the table ``images``) or a ``{name: corpus}`` mapping
        opening a multi-camera catalog (``SELECT * FROM <table>`` /
        ``FROM all_cameras``).
        """
        db = VisualDatabase(
            corpus,
            device=self.device,
            scenario=simulation_scenarios()[scenario_name],
            cost_resolution=self.scale.cost_resolution,
            source_resolution=self.scale.image_size,
            calibrate_target_fps=None,
            default_constraints=constraints)
        reference_params = {"base_width": self.scale.reference_width,
                            "n_stages": self.scale.reference_stages,
                            "blocks_per_stage": self.scale.reference_blocks}
        for name, predicate in self.predicates.items():
            db.register_optimizer(name, predicate.optimizer,
                                  reference_params=reference_params)
        return db


def build_predicate_workspace(scale: ExperimentScale, category_name: str,
                              rng: np.random.Generator) -> PredicateWorkspace:
    """Render data, train the model pool and initialize one predicate."""
    category = get_category(category_name)
    splits = build_predicate_splits(
        category, n_train=scale.n_train, n_config=scale.n_config,
        n_eval=scale.n_eval, image_size=scale.image_size, rng=rng)

    config = TahomaConfig(
        architectures=tuple(scale.architectures()),
        transforms=tuple(scale.transforms()),
        precision_targets=scale.precision_targets,
        max_depth=scale.max_depth,
        training=scale.training)
    optimizer, reference = initialize_predicate(
        splits, config,
        reference_params={"epochs": scale.reference_epochs,
                          "base_width": scale.reference_width,
                          "n_stages": scale.reference_stages,
                          "blocks_per_stage": scale.reference_blocks},
        reference_name=f"reference-{category_name}", rng=rng)

    return PredicateWorkspace(category_name=category_name, splits=splits,
                              optimizer=optimizer, reference_model=reference)


def build_workspace(scale: ExperimentScale,
                    categories: tuple[str, ...] | None = None,
                    seed: int | None = None) -> ExperimentWorkspace:
    """Build the full workspace for a scale (all predicates)."""
    categories = categories if categories is not None else scale.categories
    if not categories:
        raise ValueError("categories must be non-empty")
    seed = seed if seed is not None else scale.seed

    predicates: dict[str, PredicateWorkspace] = {}
    reference_flops: list[int] = []
    for index, name in enumerate(categories):
        rng = np.random.default_rng(seed + index)
        workspace = build_predicate_workspace(scale, name, rng)
        predicates[name] = workspace
        reference_flops.append(workspace.reference_model.flops)

    # Calibrate the device so the reference classifier lands near the paper's
    # ~75 fps anchor; all reference networks share an architecture, so any
    # predicate's FLOP count works.
    device = calibrate_device(scale.device, reference_flops[0],
                              target_fps=scale.reference_target_fps)
    return ExperimentWorkspace(scale=scale, predicates=predicates, device=device)


_WORKSPACE_CACHE: dict[tuple, ExperimentWorkspace] = {}


def get_workspace(scale: ExperimentScale,
                  categories: tuple[str, ...] | None = None,
                  seed: int | None = None) -> ExperimentWorkspace:
    """Build (or fetch from the process-level cache) a workspace."""
    key = (scale.name, categories if categories is not None else scale.categories,
           seed if seed is not None else scale.seed)
    if key not in _WORKSPACE_CACHE:
        _WORKSPACE_CACHE[key] = build_workspace(scale, categories, seed)
    return _WORKSPACE_CACHE[key]


def clear_workspace_cache() -> None:
    """Drop all cached workspaces (used by tests)."""
    _WORKSPACE_CACHE.clear()
