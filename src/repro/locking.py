"""Named lock construction: one factory for every lock the engine owns.

Every long-lived lock in the repository — per-shard executor locks, the
write-ahead-log append lock, the shared representation-store lock, the
catalog lock and the serving layer's locks — is created through
:func:`make_lock` / :func:`make_rlock` with a short descriptive name
(``"executor:cam_0"``, ``"wal:cam_0"``, ``"store"``, ``"admission"``, ...).

By default both functions return plain :mod:`threading` primitives with zero
overhead.  The runtime concurrency sanitizer
(:mod:`repro.analysis.sanitizer`) installs a factory hook here, so under
``pytest --sanitize`` the same call sites hand back instrumented locks that
record per-thread acquisition order and detect lock-order inversions — with
the lock *names* making the reports readable.

This module must stay a leaf: it is imported by ``db/``, ``storage/`` and
``server/`` and may import nothing of theirs (nor :mod:`repro.analysis`).
"""

from __future__ import annotations

import threading

__all__ = ["make_lock", "make_rlock", "set_lock_factory", "get_lock_factory"]

#: The active factory, or ``None`` for plain threading primitives.  A factory
#: is any object with ``lock(name)`` and ``rlock(name)`` methods; the
#: sanitizer installs one via :func:`set_lock_factory`.
_factory = None


def make_lock(name: str):
    """A (possibly instrumented) non-reentrant lock labeled ``name``."""
    if _factory is not None:
        return _factory.lock(name)
    return threading.Lock()


def make_rlock(name: str):
    """A (possibly instrumented) reentrant lock labeled ``name``."""
    if _factory is not None:
        return _factory.rlock(name)
    return threading.RLock()


def set_lock_factory(factory):
    """Install ``factory`` (or ``None`` to restore plain locks); returns the
    previous factory.

    Only affects locks created *after* the call — live objects keep the
    locks they were built with, which keep working either way.
    """
    global _factory
    previous = _factory
    _factory = factory
    return previous


def get_lock_factory():
    """The active factory (``None`` = plain threading primitives)."""
    return _factory
