"""A small, self-contained NumPy deep-learning substrate.

This package stands in for the Keras/TensorFlow stack the TAHOMA paper used
to train and execute its convolutional classifiers.  It provides:

* layers (:mod:`repro.nn.layers`): convolution, pooling, dense, activations,
  dropout and a light batch-normalization layer,
* losses (:mod:`repro.nn.losses`) and optimizers (:mod:`repro.nn.optimizers`),
* a :class:`~repro.nn.network.Sequential` container with forward/backward
  passes and parameter management,
* a training loop (:mod:`repro.nn.train`) with mini-batching, shuffling and
  early stopping,
* per-layer FLOP accounting (:mod:`repro.nn.flops`) used by the analytic cost
  model, and
* weight (de)serialization (:mod:`repro.nn.serialize`).

The layer API is intentionally tiny: every layer implements ``forward``,
``backward`` and exposes ``params`` / ``grads`` dictionaries.  Input tensors
use the NHWC layout (batch, height, width, channels).
"""

from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
)
from repro.nn.losses import BinaryCrossEntropy, Loss, MeanSquaredError
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer
from repro.nn.train import EarlyStopping, TrainingHistory, evaluate_accuracy, fit
from repro.nn.flops import count_network_flops, count_layer_flops

__all__ = [
    "Layer",
    "Conv2D",
    "MaxPool2D",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "GlobalAveragePool",
    "Loss",
    "BinaryCrossEntropy",
    "MeanSquaredError",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "Sequential",
    "fit",
    "evaluate_accuracy",
    "EarlyStopping",
    "TrainingHistory",
    "count_network_flops",
    "count_layer_flops",
]
