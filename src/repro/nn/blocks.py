"""Composite layers (residual blocks) built on top of the basic layers.

The TAHOMA paper uses a fine-tuned ResNet50 as its expensive reference
classifier.  Our stand-in (:mod:`repro.baselines.reference`) is built from the
:class:`ResidualBlock` defined here: two convolutions with a skip connection,
the defining structural element of residual networks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Layer, ReLU

__all__ = ["ResidualBlock"]


class ResidualBlock(Layer):
    """``y = ReLU(conv2(ReLU(conv1(x))) + project(x))``.

    When ``in_channels != out_channels`` a 1x1 convolution projects the skip
    path so the addition is well defined.  Spatial size is preserved
    (stride 1, "same" padding).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.conv1 = Conv2D(in_channels, out_channels, kernel_size,
                            padding="same", rng=rng)
        self.relu1 = ReLU()
        self.conv2 = Conv2D(out_channels, out_channels, kernel_size,
                            padding="same", rng=rng)
        self.relu_out = ReLU()
        self.project: Conv2D | None = None
        if in_channels != out_channels:
            self.project = Conv2D(in_channels, out_channels, kernel_size=1,
                                  padding="valid", rng=rng)
        self._rebind_params()

    # -- parameter plumbing ----------------------------------------------
    def _sublayers(self) -> dict[str, Layer]:
        sublayers = {"conv1": self.conv1, "conv2": self.conv2}
        if self.project is not None:
            sublayers["project"] = self.project
        return sublayers

    def _rebind_params(self) -> None:
        self.params = {}
        for prefix, sublayer in self._sublayers().items():
            for name, value in sublayer.params.items():
                self.params[f"{prefix}.{name}"] = value

    def _collect_grads(self) -> None:
        self.grads = {}
        for prefix, sublayer in self._sublayers().items():
            for name, value in sublayer.grads.items():
                self.grads[f"{prefix}.{name}"] = value

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, H, W, C) -> (N, H, W, K)
        # dtype: float64
        hidden = self.relu1.forward(self.conv1.forward(x, training), training)
        main = self.conv2.forward(hidden, training)
        skip = x if self.project is None else self.project.forward(x, training)
        return self.relu_out.forward(main + skip, training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.relu_out.backward(grad_output)
        grad_main = self.conv1.backward(
            self.relu1.backward(self.conv2.backward(grad_sum)))
        if self.project is None:
            grad_skip = grad_sum
        else:
            grad_skip = self.project.backward(grad_sum)
        self._collect_grads()
        return grad_main + grad_skip

    # -- introspection -------------------------------------------------------
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return self.conv2.output_shape(self.conv1.output_shape(input_shape))

    def flops(self, input_shape: tuple[int, ...]) -> int:
        total = self.conv1.flops(input_shape)
        mid_shape = self.conv1.output_shape(input_shape)
        total += self.conv2.flops(mid_shape)
        if self.project is not None:
            total += self.project.flops(input_shape)
        total += int(np.prod(self.conv2.output_shape(mid_shape)))  # the addition
        return int(total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResidualBlock({self.in_channels}->{self.out_channels})"
