"""Single entry point for float coercions in the ``nn/`` stack.

Every ``np.asarray(..., dtype=...)`` in the training/loss path goes through
:func:`as_float` / :func:`align_targets` so the static shape checker
(``repro.analysis.shapes``) and its runtime twin can reason about one
audited helper instead of scattered coercions — and so a batch/target
size mismatch raises a :class:`ValueError` naming both shapes instead of
numpy's opaque reshape error.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_FLOAT", "as_float", "align_targets"]

#: The stack's working precision (the checker's float boundary).
DEFAULT_FLOAT = np.float64


def as_float(values, dtype=DEFAULT_FLOAT):
    # shape: (...) -> (...)
    # dtype: float32|float64
    """Coerce ``values`` to a floating ndarray of the stack's precision."""
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise ValueError(f"as_float needs a floating dtype, got {dtype}")
    return np.asarray(values, dtype=dtype)


def align_targets(predictions, targets):
    # shape: (N, ...), (...) -> (N, ...)
    # dtype: float32|float64
    """Return ``(predictions, targets)`` as floats with matching shapes.

    ``targets`` is reshaped to ``predictions.shape`` only when the element
    counts agree; a count mismatch raises a ``ValueError`` naming both
    shapes (instead of numpy's opaque reshape error).
    """
    predictions = as_float(predictions)
    targets = as_float(targets)
    if targets.shape != predictions.shape:
        if targets.size != predictions.size:
            raise ValueError(
                f"targets shape {targets.shape} ({targets.size} elements) "
                f"does not match predictions shape {predictions.shape} "
                f"({predictions.size} elements)")
        targets = targets.reshape(predictions.shape)
    return predictions, targets
