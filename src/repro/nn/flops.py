"""Per-layer and per-network FLOP accounting.

The analytic cost model in :mod:`repro.costs` estimates inference time as
``flops / device_flops_per_second``.  The counts here are multiply-accumulate
based and deliberately simple — the optimizer only needs costs that scale
correctly with input resolution, channel count and architecture size, which
these do.
"""

from __future__ import annotations

from repro.nn.network import Sequential

__all__ = ["count_layer_flops", "count_network_flops"]


def count_layer_flops(layer, input_shape: tuple[int, ...]) -> int:
    """FLOPs for one forward pass of ``layer`` on a single example."""
    return int(layer.flops(input_shape))


def count_network_flops(network: Sequential,
                        input_shape: tuple[int, ...] | None = None) -> int:
    """Total FLOPs for one forward pass of ``network`` on a single example."""
    shape = input_shape if input_shape is not None else network.input_shape
    if shape is None:
        raise ValueError("input_shape must be provided")
    total = 0
    for layer in network.layers:
        total += count_layer_flops(layer, shape)
        shape = layer.output_shape(shape)
    return int(total)
