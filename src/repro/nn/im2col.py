"""im2col / col2im utilities used by the convolution and pooling layers.

These transform sliding windows of an NHWC image tensor into a 2-D matrix so
that convolution becomes a single matrix multiplication, which is the only way
to make a pure-NumPy CNN fast enough to train on CPU.
"""

from __future__ import annotations

import numpy as np

__all__ = ["im2col", "col2im", "conv_output_size"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution/pooling along one dimension."""
    return (size + 2 * pad - kernel) // stride + 1


def im2col(images: np.ndarray, kernel_h: int, kernel_w: int,
           stride: int = 1, pad: int = 0) -> np.ndarray:
    # shape: (N, H, W, C) -> (M, D)
    """Unfold an NHWC batch into a matrix of receptive-field columns.

    Parameters
    ----------
    images:
        Array of shape ``(batch, height, width, channels)``.
    kernel_h, kernel_w:
        Receptive field size.
    stride:
        Stride in both spatial dimensions.
    pad:
        Zero-padding in both spatial dimensions.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(batch * out_h * out_w, kernel_h * kernel_w * channels)``.
    """
    batch, height, width, channels = images.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    if pad > 0:
        images = np.pad(
            images, ((0, 0), (pad, pad), (pad, pad), (0, 0)), mode="constant")

    # Strided view: (batch, out_h, out_w, kernel_h, kernel_w, channels)
    s0, s1, s2, s3 = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(batch, out_h, out_w, kernel_h, kernel_w, channels),
        strides=(s0, s1 * stride, s2 * stride, s1, s2, s3),
        writeable=False,
    )
    cols = windows.reshape(batch * out_h * out_w,
                           kernel_h * kernel_w * channels)
    return np.ascontiguousarray(cols)


def col2im(cols: np.ndarray, image_shape: tuple[int, int, int, int],
           kernel_h: int, kernel_w: int, stride: int = 1,
           pad: int = 0) -> np.ndarray:
    # shape: (M, D) -> (N, H, W, C)
    """Fold a column matrix back into an NHWC tensor, summing overlaps.

    This is the adjoint of :func:`im2col` and is used in the convolution
    backward pass to accumulate gradients with respect to the input.
    """
    batch, height, width, channels = image_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    padded = np.zeros((batch, height + 2 * pad, width + 2 * pad, channels),
                      dtype=cols.dtype)
    cols_6d = cols.reshape(batch, out_h, out_w, kernel_h, kernel_w, channels)

    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, i:i_max:stride, j:j_max:stride, :] += cols_6d[:, :, :, i, j, :]

    if pad > 0:
        return padded[:, pad:-pad, pad:-pad, :]
    return padded
