"""Weight initialization schemes for the NumPy network layers."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros", "constant"]


def glorot_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Draws from ``U(-limit, limit)`` with ``limit = sqrt(6 / (fan_in + fan_out))``.
    Suitable for layers followed by sigmoid/tanh activations.
    """
    limit = np.sqrt(6.0 / float(fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(shape: tuple[int, ...], fan_in: int,
              rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, suited to ReLU activations."""
    std = np.sqrt(2.0 / float(fan_in))
    return (rng.standard_normal(shape) * std).astype(np.float64)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def constant(shape: tuple[int, ...], value: float) -> np.ndarray:
    """Constant-value initialization."""
    return np.full(shape, value, dtype=np.float64)
