"""Neural-network layers for the NumPy substrate.

Every layer implements:

* ``forward(x, training=False)`` returning the layer output,
* ``backward(grad_output)`` returning the gradient with respect to the input
  and populating ``self.grads`` for parameters,
* ``params`` / ``grads`` dictionaries keyed by parameter name,
* ``output_shape(input_shape)`` for static shape inference (batch dim omitted),
* ``flops(input_shape)`` giving the multiply-accumulate count of one forward
  pass on a single example, used by the analytic cost model.

Image tensors use the NHWC layout (batch, height, width, channels).
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.im2col import col2im, conv_output_size, im2col

__all__ = [
    "Layer",
    "Conv2D",
    "MaxPool2D",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "GlobalAveragePool",
]


class Layer:
    """Base class for all layers."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    # -- interface -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape of a single example's output given a single example's input."""
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        """Approximate multiply-accumulate count for one example."""
        return 0

    def num_parameters(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Conv2D(Layer):
    """2-D convolution over NHWC inputs, implemented with im2col.

    Parameters
    ----------
    in_channels:
        Number of input channels.
    out_channels:
        Number of filters.
    kernel_size:
        Square receptive-field size.
    stride:
        Spatial stride.
    padding:
        Either ``"same"`` (zero-pad to preserve spatial size for stride 1) or
        ``"valid"`` (no padding), or an explicit integer.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, padding: str | int = "same",
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("Conv2D dimensions must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        if padding == "same":
            self.pad = (kernel_size - 1) // 2
        elif padding == "valid":
            self.pad = 0
        elif isinstance(padding, int):
            self.pad = padding
        else:
            raise ValueError(f"unknown padding {padding!r}")

        rng = rng or np.random.default_rng(0)
        fan_in = kernel_size * kernel_size * in_channels
        weight = initializers.he_normal(
            (fan_in, out_channels), fan_in=fan_in, rng=rng)
        self.params = {"weight": weight,
                       "bias": initializers.zeros((out_channels,))}
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, H, W, C) -> (N, H', W', K)
        # dtype: float64
        if x.ndim != 4:
            raise ValueError(f"Conv2D expects NHWC input, got shape {x.shape}")
        if x.shape[3] != self.in_channels:
            raise ValueError(
                f"Conv2D configured for {self.in_channels} channels, "
                f"got input with {x.shape[3]}")
        batch, height, width, _ = x.shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.pad)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.pad)
        cols = im2col(x, self.kernel_size, self.kernel_size, self.stride, self.pad)
        out = cols @ self.params["weight"] + self.params["bias"]
        out = out.reshape(batch, out_h, out_w, self.out_channels)
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols = self._cache
        batch = x_shape[0]
        grad_flat = grad_output.reshape(-1, self.out_channels)
        self.grads["weight"] = cols.T @ grad_flat
        self.grads["bias"] = grad_flat.sum(axis=0)
        grad_cols = grad_flat @ self.params["weight"].T
        grad_input = col2im(grad_cols, x_shape, self.kernel_size,
                            self.kernel_size, self.stride, self.pad)
        return grad_input

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        height, width, _ = input_shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.pad)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.pad)
        return (out_h, out_w, self.out_channels)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        out_h, out_w, out_c = self.output_shape(input_shape)
        macs_per_output = self.kernel_size * self.kernel_size * self.in_channels
        return int(out_h * out_w * out_c * macs_per_output)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Conv2D({self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.pad})")


class MaxPool2D(Layer):
    """Max pooling over NHWC inputs."""

    def __init__(self, pool_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, H, W, C) -> (N, H', W', C)
        batch, height, width, channels = x.shape
        pool, stride = self.pool_size, self.stride
        out_h = conv_output_size(height, pool, stride, 0)
        out_w = conv_output_size(width, pool, stride, 0)
        if out_h == 0 or out_w == 0:
            raise ValueError(
                f"input spatial size {(height, width)} too small for pool "
                f"size {pool}")

        s0, s1, s2, s3 = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(batch, out_h, out_w, pool, pool, channels),
            strides=(s0, s1 * stride, s2 * stride, s1, s2, s3),
            writeable=False,
        )
        flat = windows.reshape(batch, out_h, out_w, pool * pool, channels)
        argmax = flat.argmax(axis=3)
        out = np.take_along_axis(flat, argmax[:, :, :, None, :], axis=3)[:, :, :, 0, :]
        self._cache = (x.shape, argmax, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, argmax, out_h, out_w = self._cache
        batch, height, width, channels = x_shape
        pool, stride = self.pool_size, self.stride
        grad_input = np.zeros(x_shape, dtype=grad_output.dtype)

        # Scatter each output gradient back to the argmax location.
        rows = argmax // pool
        cols = argmax % pool
        b_idx, i_idx, j_idx, c_idx = np.meshgrid(
            np.arange(batch), np.arange(out_h), np.arange(out_w),
            np.arange(channels), indexing="ij")
        h_idx = i_idx * stride + rows
        w_idx = j_idx * stride + cols
        np.add.at(grad_input, (b_idx, h_idx, w_idx, c_idx), grad_output)
        return grad_input

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        height, width, channels = input_shape
        out_h = conv_output_size(height, self.pool_size, self.stride, 0)
        out_w = conv_output_size(width, self.pool_size, self.stride, 0)
        return (out_h, out_w, channels)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        out_h, out_w, channels = self.output_shape(input_shape)
        return int(out_h * out_w * channels * self.pool_size * self.pool_size)


class GlobalAveragePool(Layer):
    """Average the spatial dimensions of an NHWC tensor, yielding (batch, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, H, W, C) -> (N, C)
        self._cache = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        batch, height, width, channels = self._cache
        scale = 1.0 / (height * width)
        grad = np.broadcast_to(
            grad_output[:, None, None, :] * scale,
            (batch, height, width, channels))
        return np.array(grad)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        _, _, channels = input_shape
        return (channels,)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        height, width, channels = input_shape
        return int(height * width * channels)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, ...) -> (N, D)
        self._cache = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._cache)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Dense(Layer):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        weight = initializers.glorot_uniform(
            (in_features, out_features), in_features, out_features, rng)
        self.params = {"weight": weight,
                       "bias": initializers.zeros((out_features,))}
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, D) -> (N, K)
        # dtype: float64
        if x.ndim != 2:
            raise ValueError(f"Dense expects 2-D input, got shape {x.shape}")
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense configured for {self.in_features} features, got "
                f"{x.shape[1]}")
        self._cache = x
        return x @ self.params["weight"] + self.params["bias"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache
        self.grads["weight"] = x.T @ grad_output
        self.grads["bias"] = grad_output.sum(axis=0)
        return grad_output @ self.params["weight"].T

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (self.out_features,)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(self.in_features * self.out_features)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}->{self.out_features})"


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, ...) -> (N, ...)
        # The output is computed from a local so concurrent inference on a
        # shared model (fan-out queries) never reads another thread's mask;
        # the attribute only feeds backward(), which is single-threaded.
        mask = x > 0
        self._mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, ...) -> (N, ...)
        # dtype: float64
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        exp_x = np.exp(x[~pos])
        out[~pos] = exp_x / (1.0 + exp_x)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._out * (1.0 - self._out)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape)) * 4


class Softmax(Layer):
    """Softmax over the last dimension (used by multi-class heads)."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (..., K) -> (..., K)
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=-1, keepdims=True)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        out = self._out
        dot = (grad_output * out).sum(axis=-1, keepdims=True)
        return out * (grad_output - dot)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape)) * 5


class Dropout(Layer):
    """Inverted dropout; identity when not training."""

    def __init__(self, rate: float = 0.5,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, ...) -> (N, ...)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm(Layer):
    """Batch normalization over the last (channel/feature) dimension."""

    def __init__(self, num_features: int, momentum: float = 0.9,
                 epsilon: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.epsilon = epsilon
        self.params = {
            "gamma": initializers.constant((num_features,), 1.0),
            "beta": initializers.zeros((num_features,)),
        }
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, ...) -> (N, ...)
        # dtype: float64
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (self.momentum * self.running_mean
                                 + (1 - self.momentum) * mean)
            self.running_var = (self.momentum * self.running_var
                                + (1 - self.momentum) * var)
        else:
            mean = self.running_mean
            var = self.running_var
        x_hat = (x - mean) / np.sqrt(var + self.epsilon)
        self._cache = (x_hat, var, axes)
        return self.params["gamma"] * x_hat + self.params["beta"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, var, axes = self._cache
        count = int(np.prod([grad_output.shape[a] for a in axes]))
        gamma = self.params["gamma"]
        self.grads["gamma"] = (grad_output * x_hat).sum(axis=axes)
        self.grads["beta"] = grad_output.sum(axis=axes)
        std_inv = 1.0 / np.sqrt(var + self.epsilon)
        dx_hat = grad_output * gamma
        grad_input = (std_inv / count) * (
            count * dx_hat
            - dx_hat.sum(axis=axes)
            - x_hat * (dx_hat * x_hat).sum(axis=axes))
        return grad_input

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape)) * 4
