"""Loss functions for the NumPy substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import align_targets

__all__ = ["Loss", "BinaryCrossEntropy", "MeanSquaredError"]

_EPS = 1e-12


class Loss:
    """Base class: ``forward`` returns the scalar loss, ``backward`` the gradient."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class BinaryCrossEntropy(Loss):
    """Binary cross-entropy over sigmoid outputs in (0, 1)."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        # shape: (N, ...), (...) -> ()
        # dtype: float64
        predictions, targets = align_targets(predictions, targets)
        clipped = np.clip(predictions, _EPS, 1.0 - _EPS)
        losses = -(targets * np.log(clipped)
                   + (1.0 - targets) * np.log(1.0 - clipped))
        return float(losses.mean())

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        # shape: (N, ...), (...) -> (N, ...)
        # dtype: float64
        predictions, targets = align_targets(predictions, targets)
        clipped = np.clip(predictions, _EPS, 1.0 - _EPS)
        grad = (clipped - targets) / (clipped * (1.0 - clipped))
        return grad / predictions.size


class MeanSquaredError(Loss):
    """Mean squared error."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        # shape: (N, ...), (...) -> ()
        # dtype: float64
        predictions, targets = align_targets(predictions, targets)
        return float(((predictions - targets) ** 2).mean())

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        # shape: (N, ...), (...) -> (N, ...)
        # dtype: float64
        predictions, targets = align_targets(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size
