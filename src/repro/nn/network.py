"""Sequential network container."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Sequential"]


class Sequential:
    """An ordered stack of layers with forward/backward passes.

    Parameters
    ----------
    layers:
        The layers, applied in order.
    input_shape:
        Shape of a single example (without the batch dimension), e.g.
        ``(30, 30, 3)`` for a 30x30 RGB image.  Required for shape inference
        and FLOP accounting; forward passes work without it.
    """

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...] | None = None) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(input_shape) if input_shape is not None else None

    # -- execution -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # shape: (N, ...) -> (N, ...)
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        # shape: (N, ...) -> (N, ...)
        """Run inference in batches and concatenate the outputs."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start:start + batch_size], training=False))
        return np.concatenate(outputs, axis=0)

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        # shape: (N, ...) -> (N, ...)
        """Inference returning per-example probabilities.

        For a single sigmoid output node this drops the trailing feature
        dimension; for a two-node softmax head it returns the probability of
        class 1.  The batch dimension always survives — a batch of one maps
        to shape ``(1,)``, never a 0-d scalar.
        """
        out = self.predict(x, batch_size=batch_size)
        if out.ndim == 2 and out.shape[1] == 1:
            return out[:, 0]
        if out.ndim == 2 and out.shape[1] == 2:
            return out[:, 1]
        flat = out.reshape(out.shape[0], -1)
        if flat.shape[1] == 1:
            return flat[:, 0]
        return flat

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, training=False)

    # -- introspection ----------------------------------------------------
    def output_shape(self, input_shape: tuple[int, ...] | None = None) -> tuple[int, ...]:
        shape = input_shape if input_shape is not None else self.input_shape
        if shape is None:
            raise ValueError("input_shape not provided")
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def shape_trace(self, input_shape: tuple[int, ...] | None = None) -> list[tuple[int, ...]]:
        """Per-layer output shapes, useful for debugging architectures."""
        shape = input_shape if input_shape is not None else self.input_shape
        if shape is None:
            raise ValueError("input_shape not provided")
        trace = []
        for layer in self.layers:
            shape = layer.output_shape(shape)
            trace.append(shape)
        return trace

    def num_parameters(self) -> int:
        return int(sum(layer.num_parameters() for layer in self.layers))

    def parameters(self) -> dict[str, np.ndarray]:
        """Flat mapping of ``layer<idx>.<name>`` to parameter arrays."""
        params: dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                params[f"layer{index}.{name}"] = value
        return params

    def set_parameters(self, params: dict[str, np.ndarray]) -> None:
        """Load parameters produced by :meth:`parameters` (in place).

        Values are copied *into* the existing arrays rather than rebinding
        them: composite layers (e.g. residual blocks) expose views of their
        sublayers' arrays, and rebinding would silently detach the two.
        """
        for index, layer in enumerate(self.layers):
            for name in layer.params:
                key = f"layer{index}.{name}"
                if key not in params:
                    raise KeyError(f"missing parameter {key}")
                value = np.asarray(params[key], dtype=np.float64)
                if value.shape != layer.params[name].shape:
                    raise ValueError(
                        f"shape mismatch for {key}: "
                        f"{value.shape} vs {layer.params[name].shape}")
                layer.params[name][...] = value

    def summary(self) -> str:
        """Human-readable architecture summary."""
        lines = ["Sequential ("]
        shape = self.input_shape
        for layer in self.layers:
            if shape is not None:
                shape = layer.output_shape(shape)
                lines.append(f"  {layer!r} -> {shape}")
            else:
                lines.append(f"  {layer!r}")
        lines.append(f") params={self.num_parameters()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sequential(n_layers={len(self.layers)}, params={self.num_parameters()})"
