"""Gradient-descent optimizers for the NumPy substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Momentum", "Adam"]


class Optimizer:
    """Base optimizer.

    ``step`` receives the list of layers and updates every parameter in place
    using the gradients populated by the preceding backward pass.
    """

    def __init__(self, learning_rate: float = 0.01) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def step(self, layers) -> None:
        raise NotImplementedError

    def _iter_params(self, layers):
        for layer_index, layer in enumerate(layers):
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                yield (layer_index, name), param, grad


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def step(self, layers) -> None:
        for _, param, grad in self._iter_params(layers):
            param -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict = {}

    def step(self, layers) -> None:
        for key, param, grad in self._iter_params(layers):
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(param)
            velocity = self.momentum * velocity - self.learning_rate * grad
            self._velocity[key] = velocity
            param += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, learning_rate: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict = {}
        self._v: dict = {}
        self._t = 0

    def step(self, layers) -> None:
        self._t += 1
        lr_t = (self.learning_rate
                * np.sqrt(1.0 - self.beta2 ** self._t)
                / (1.0 - self.beta1 ** self._t))
        for key, param, grad in self._iter_params(layers):
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
            self._m[key] = m
            self._v[key] = v
            param -= lr_t * m / (np.sqrt(v) + self.epsilon)
