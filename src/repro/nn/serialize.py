"""Weight (de)serialization for Sequential networks.

Weights are stored as ``.npz`` archives keyed by the same flat names produced
by :meth:`repro.nn.network.Sequential.parameters`, so a network built from the
same architecture specification can be re-hydrated exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.network import Sequential

__all__ = ["save_weights", "load_weights"]


def save_weights(network: Sequential, path: str | Path) -> Path:
    """Save the network's parameters to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **network.parameters())
    return path


def load_weights(network: Sequential, path: str | Path) -> Sequential:
    """Load parameters saved by :func:`save_weights` into ``network`` in place."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        params = {key: archive[key] for key in archive.files}
    network.set_parameters(params)
    return network
