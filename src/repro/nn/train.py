"""Training loop for the NumPy substrate."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.dtypes import as_float
from repro.nn.losses import BinaryCrossEntropy, Loss
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam, Optimizer

__all__ = ["TrainingHistory", "EarlyStopping", "fit", "evaluate_accuracy", "iterate_minibatches"]


@dataclass
class TrainingHistory:
    """Loss/accuracy recorded per epoch during :func:`fit`."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


@dataclass
class EarlyStopping:
    """Stop training when validation loss stops improving.

    Parameters
    ----------
    patience:
        Number of epochs without improvement tolerated before stopping.
    min_delta:
        Minimum decrease in validation loss that counts as an improvement.
    """

    patience: int = 3
    min_delta: float = 1e-4
    _best: float = field(default=float("inf"), init=False)
    _bad_epochs: int = field(default=0, init=False)

    def should_stop(self, val_loss: float) -> bool:
        if val_loss < self._best - self.min_delta:
            self._best = val_loss
            self._bad_epochs = 0
            return False
        self._bad_epochs += 1
        return self._bad_epochs >= self.patience


def iterate_minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                        rng: np.random.Generator, shuffle: bool = True):
    """Yield ``(x_batch, y_batch)`` mini-batches, optionally shuffled."""
    indices = np.arange(x.shape[0])
    if shuffle:
        rng.shuffle(indices)
    for start in range(0, x.shape[0], batch_size):
        batch = indices[start:start + batch_size]
        yield x[batch], y[batch]


def evaluate_accuracy(network: Sequential, x: np.ndarray, y: np.ndarray,
                      threshold: float = 0.5, batch_size: int = 256) -> float:
    # shape: (N, ...), (...) -> ()
    """Binary classification accuracy of ``network`` on ``(x, y)``."""
    if x.shape[0] == 0:
        return float("nan")
    probabilities = network.predict_proba(x, batch_size=batch_size)
    predictions = (probabilities >= threshold).astype(np.int64)
    return float((predictions == np.asarray(y).astype(np.int64).ravel()).mean())


def fit(network: Sequential, x_train: np.ndarray, y_train: np.ndarray,
        *, x_val: np.ndarray | None = None, y_val: np.ndarray | None = None,
        epochs: int = 10, batch_size: int = 32,
        loss: Loss | None = None, optimizer: Optimizer | None = None,
        early_stopping: EarlyStopping | None = None,
        rng: np.random.Generator | None = None,
        verbose: bool = False) -> TrainingHistory:
    """Train ``network`` with mini-batch gradient descent.

    Returns the per-epoch :class:`TrainingHistory`.  Validation metrics are
    recorded only when a validation set is provided; early stopping requires
    a validation set.
    """
    if x_train.shape[0] == 0:
        raise ValueError("training set is empty")
    if x_train.shape[0] != np.asarray(y_train).shape[0]:
        raise ValueError("x_train and y_train have different lengths")
    if early_stopping is not None and (x_val is None or y_val is None):
        raise ValueError("early stopping requires a validation set")

    loss = loss or BinaryCrossEntropy()
    optimizer = optimizer or Adam(learning_rate=0.002)
    rng = rng or np.random.default_rng(0)
    y_train = as_float(y_train)

    history = TrainingHistory()
    for epoch in range(epochs):
        epoch_losses = []
        for x_batch, y_batch in iterate_minibatches(x_train, y_train,
                                                    batch_size, rng):
            predictions = network.forward(x_batch, training=True)
            batch_loss = loss.forward(predictions, y_batch)
            grad = loss.backward(predictions, y_batch)
            network.backward(grad)
            optimizer.step(network.layers)
            epoch_losses.append(batch_loss)

        history.train_loss.append(float(np.mean(epoch_losses)))
        history.train_accuracy.append(
            evaluate_accuracy(network, x_train, y_train))

        if x_val is not None and y_val is not None:
            val_pred = network.predict(x_val)
            val_loss = loss.forward(val_pred, as_float(y_val))
            history.val_loss.append(float(val_loss))
            history.val_accuracy.append(
                evaluate_accuracy(network, x_val, y_val))
            if verbose:  # pragma: no cover - logging only
                print(f"epoch {epoch + 1}/{epochs} "
                      f"loss={history.train_loss[-1]:.4f} "
                      f"val_loss={val_loss:.4f} "
                      f"val_acc={history.val_accuracy[-1]:.3f}")
            if early_stopping is not None and early_stopping.should_stop(val_loss):
                break
        elif verbose:  # pragma: no cover - logging only
            print(f"epoch {epoch + 1}/{epochs} loss={history.train_loss[-1]:.4f}")

    return history
