"""A small relational query layer over an image corpus.

The paper frames TAHOMA's output as a *virtual column* in a relation over the
corpus and envisions the `contains_object` operator wrapped as an RDBMS UDF.
This package provides that surface:

* :mod:`repro.query.relation` — an in-memory columnar relation,
* :mod:`repro.query.predicates` — metadata predicates and the
  ``contains_object`` binary predicate, and
* :mod:`repro.query.processor` — a SELECT/WHERE processor that evaluates
  metadata predicates first, runs the selected cascade only over the
  surviving rows, and materializes the resulting binary predicate column for
  reuse by later queries.
"""

from repro.query.ast import (Aggregate, AndExpr, BooleanExpr, NotExpr,
                             OrderItem, OrExpr, PredicateExpr, QueryError,
                             SqlParseError, tokenize)
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query, QueryProcessor, QueryResult
from repro.query.relation import Relation
from repro.query.sql import parse_query

__all__ = [
    "Relation",
    "MetadataPredicate",
    "ContainsObject",
    "Query",
    "QueryResult",
    "QueryProcessor",
    "parse_query",
    "tokenize",
    "SqlParseError",
    "QueryError",
    "BooleanExpr",
    "PredicateExpr",
    "AndExpr",
    "OrExpr",
    "NotExpr",
    "Aggregate",
    "OrderItem",
]
