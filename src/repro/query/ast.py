"""Query AST: tokens, boolean predicate trees, select items, errors.

The SQL front end (:mod:`repro.query.sql`) tokenizes query text with
:func:`tokenize` and parses it into the node types defined here; the planner
(:mod:`repro.db.planner`) lowers them into a physical plan.  The AST is the
contract between the two layers:

* a WHERE clause is a :class:`BooleanExpr` tree — :class:`PredicateExpr`
  leaves (wrapping :class:`~repro.query.predicates.MetadataPredicate` or
  :class:`~repro.query.predicates.ContainsObject`) combined with
  :class:`AndExpr` / :class:`OrExpr` / :class:`NotExpr`;
* a SELECT list is a tuple of column names and :class:`Aggregate` items
  (``None`` meaning ``*``);
* ORDER BY is a tuple of :class:`OrderItem` keys.

Everything is a frozen dataclass, so queries stay hashable/comparable and a
plan can embed AST fragments without defensive copying.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Union

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.query.predicates import ContainsObject, MetadataPredicate

__all__ = [
    "SqlParseError", "QueryError", "QueryTimeoutError",
    "Token", "tokenize",
    "BooleanExpr", "PredicateExpr", "AndExpr", "OrExpr", "NotExpr",
    "iter_predicates", "conjunctive_predicates",
    "Aggregate", "OrderItem", "AGGREGATE_FUNCTIONS", "select_label",
]


class SqlParseError(ValueError):
    """Raised when a query string does not match the supported dialect.

    Carries *where* parsing failed: ``offset`` is the character position in
    the original query text and ``token`` the offending token text (``None``
    at end of input).  Both are folded into the message.
    """

    def __init__(self, message: str, *, offset: int | None = None,
                 token: str | None = None) -> None:
        self.offset = offset
        self.token = token
        self.message = message
        if offset is not None:
            where = (f"at {token!r} (offset {offset})" if token is not None
                     else f"at end of input (offset {offset})")
            message = f"{message} {where}"
        super().__init__(message)

    def to_dict(self) -> dict:
        """A machine-readable payload (wire protocol / structured logging).

        ``message`` is the bare error text — ``offset``/``token`` carry the
        location separately, so a client can reconstruct the exception
        exactly: ``SqlParseError(d["message"], offset=d["offset"],
        token=d["token"])``.
        """
        return {"type": "SqlParseError", "message": self.message,
                "token": self.token, "offset": self.offset}


class QueryError(ValueError):
    """Raised when a well-formed query cannot be evaluated.

    Parse-time problems raise :class:`SqlParseError`; this is the
    evaluation-time counterpart — an unknown projection column, a
    type-mismatched comparison, an aggregate over a non-numeric column.
    """

    def to_dict(self) -> dict:
        """A machine-readable payload: the concrete error type and message."""
        return {"type": type(self).__name__, "message": str(self)}


class QueryTimeoutError(QueryError):
    """Raised when a query exceeds its deadline and is aborted.

    The executor checks a cancellation hook at chunk boundaries
    (:meth:`~repro.db.executor.QueryExecutor.execute`); a serving layer's
    hook raises this once the per-query deadline passes, so long-running
    classification work stops between chunks instead of hanging a worker.
    """


# -- tokens -------------------------------------------------------------------

#: Token types produced by :func:`tokenize`.
_TOKEN_SPEC = [
    ("WS", r"\s+"),
    ("STRING", r"'(?:[^']|'')*'|\"(?:[^\"]|\"\")*\""),
    ("NUMBER", r"-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"),
    ("IDENT", r"[A-Za-z_]\w*"),
    ("OP", r"<=|>=|!=|=|<|>"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("STAR", r"\*"),
    ("SEMI", r";"),
    ("DASH", r"-"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})"
                                for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    """One lexical token: its type, raw text and character offset."""

    type: str
    text: str
    offset: int

    @property
    def value(self):
        """The Python value of a STRING (unescaped) or NUMBER token."""
        if self.type == "STRING":
            quote = self.text[0]
            return self.text[1:-1].replace(quote * 2, quote)
        if self.type == "NUMBER":
            try:
                return int(self.text)
            except ValueError:
                return float(self.text)
        return self.text

    def keyword(self) -> str | None:
        """The upper-cased keyword spelling for IDENT tokens, else ``None``."""
        return self.text.upper() if self.type == "IDENT" else None


def tokenize(sql: str) -> list[Token]:
    """Split query text into :class:`Token` objects (whitespace dropped).

    String literals follow the SQL convention: single- or double-quoted, a
    doubled quote inside a literal escaping one quote character.  Keywords
    and parentheses inside string literals are therefore opaque text, never
    structure.  An unterminated literal or a stray character raises
    :class:`SqlParseError` with its offset.
    """
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            if sql[position] in "'\"":
                raise SqlParseError("unterminated string literal",
                                    offset=position, token=sql[position:])
            raise SqlParseError("unexpected character",
                                offset=position, token=sql[position])
        if match.lastgroup != "WS":
            tokens.append(Token(match.lastgroup, match.group(), position))
        position = match.end()
    return tokens


# -- boolean predicate trees --------------------------------------------------

class BooleanExpr:
    """Base class for WHERE-clause expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class PredicateExpr(BooleanExpr):
    """A leaf: one metadata predicate or one ``contains_object`` predicate."""

    predicate: "MetadataPredicate | ContainsObject"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return str(self.predicate)


@dataclass(frozen=True)
class AndExpr(BooleanExpr):
    """A conjunction of two or more child expressions."""

    children: tuple[BooleanExpr, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("AND needs at least two children")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " AND ".join(str(child) for child in self.children) + ")"


@dataclass(frozen=True)
class OrExpr(BooleanExpr):
    """A disjunction of two or more child expressions."""

    children: tuple[BooleanExpr, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("OR needs at least two children")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " OR ".join(str(child) for child in self.children) + ")"


@dataclass(frozen=True)
class NotExpr(BooleanExpr):
    """A negated child expression."""

    child: BooleanExpr

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"NOT {self.child}"


def iter_predicates(expr: BooleanExpr) -> Iterator:
    """Yield every leaf predicate of ``expr`` in syntactic (left-right) order."""
    if isinstance(expr, PredicateExpr):
        yield expr.predicate
    elif isinstance(expr, (AndExpr, OrExpr)):
        for child in expr.children:
            yield from iter_predicates(child)
    elif isinstance(expr, NotExpr):
        yield from iter_predicates(expr.child)
    else:
        raise TypeError(f"not a BooleanExpr node: {expr!r}")


def conjunctive_predicates(expr: BooleanExpr | None) -> list | None:
    """The flat predicate list of a pure conjunction, else ``None``.

    A bare leaf or an (arbitrarily nested) AND of leaves is *conjunctive* —
    exactly the fragment the original regex dialect supported, and the shape
    for which the planner keeps the seed's flat metadata-then-cascades plan.
    Any OR or NOT anywhere makes the query non-conjunctive.
    """
    if expr is None:
        return []
    if isinstance(expr, PredicateExpr):
        return [expr.predicate]
    if isinstance(expr, AndExpr):
        leaves = []
        for child in expr.children:
            child_leaves = conjunctive_predicates(child)
            if child_leaves is None:
                return None
            leaves.extend(child_leaves)
        return leaves
    return None


# -- SELECT-list items and ORDER BY keys --------------------------------------

#: Aggregate function names the dialect recognises (SQL spelling, lower-case).
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate in the SELECT list: ``COUNT(*)``, ``AVG(speed)``, ...

    ``argument`` is the column name, or ``None`` for ``COUNT(*)`` (the only
    function that accepts ``*``).  NaN in a floating-point column is treated
    as SQL NULL by every aggregate: COUNT(col) counts non-NaN values,
    SUM/AVG total and average the non-NaN values, MIN/MAX ignore NaN.
    Other dtypes have no null sentinel, so COUNT(col) equals COUNT(*) there.
    """

    func: str
    argument: str | None = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate {self.func!r}; "
                             f"available: {list(AGGREGATE_FUNCTIONS)}")
        if self.argument is None and self.func != "count":
            raise ValueError(f"{self.func.upper()}(*) is not defined; "
                             "only COUNT accepts *")

    @property
    def label(self) -> str:
        """The output column name, e.g. ``count(*)`` or ``avg(speed)``."""
        return f"{self.func}({self.argument if self.argument else '*'})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


#: One SELECT-list item: a plain column name or an aggregate.
SelectItem = Union[str, Aggregate]


def select_label(item: SelectItem) -> str:
    """The output column name of one SELECT-list item."""
    return item.label if isinstance(item, Aggregate) else item


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: a column name or an aggregate, plus direction."""

    key: SelectItem
    ascending: bool = True

    @property
    def label(self) -> str:
        """The column the sort reads (an aggregate's output label)."""
        return select_label(self.key)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label} {'ASC' if self.ascending else 'DESC'}"
