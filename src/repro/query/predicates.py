"""Query predicates: cheap metadata predicates and the contains_object predicate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.query.ast import QueryError
from repro.query.relation import Relation

__all__ = ["MetadataPredicate", "ContainsObject"]

_OPERATORS = {
    "==": lambda col, value: col == value,
    "!=": lambda col, value: col != value,
    "<": lambda col, value: col < value,
    "<=": lambda col, value: col <= value,
    ">": lambda col, value: col > value,
    ">=": lambda col, value: col >= value,
    "in": lambda col, value: np.isin(col, list(value)),
}


def _check_comparable(column: str, dtype: np.dtype, value: Any) -> None:
    """Reject comparisons NumPy would answer nonsensically (or crash on).

    A string column compared to a numeric literal (or vice versa) is a query
    bug; surface it as a :class:`~repro.query.ast.QueryError` naming the
    column and both types instead of a raw NumPy error (or an elementwise
    always-False) deep in the executor.
    """
    is_string_column = dtype.kind in ("U", "S")
    is_numeric_column = dtype.kind in ("b", "i", "u", "f")
    is_numeric_literal = isinstance(value, (int, float)) and not isinstance(
        value, bool)
    if is_string_column and is_numeric_literal:
        raise QueryError(
            f"cannot compare string column {column!r} (dtype {dtype}) to "
            f"numeric literal {value!r} ({type(value).__name__}); "
            "quote the value to compare as text")
    if is_numeric_column and isinstance(value, str):
        raise QueryError(
            f"cannot compare numeric column {column!r} (dtype {dtype}) to "
            f"string literal {value!r}; use an unquoted number")


@dataclass(frozen=True)
class MetadataPredicate:
    """A predicate over a metadata column, e.g. ``location == 'detroit'``.

    Metadata predicates are cheap and are evaluated before any classifier
    runs, shrinking the set of images the expensive ``contains_object``
    operator must touch.
    """

    column: str
    operator: str
    value: Any

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise ValueError(f"unknown operator {self.operator!r}; "
                             f"available: {sorted(_OPERATORS)}")

    def evaluate(self, relation: Relation) -> np.ndarray:
        """Boolean mask of rows satisfying the predicate.

        Raises :class:`~repro.query.ast.QueryError` when the literal's type
        cannot be compared against the column's dtype.
        """
        column = relation.column(self.column)
        values = self.value if self.operator == "in" else (self.value,)
        for value in values:
            _check_comparable(self.column, column.dtype, value)
        return np.asarray(_OPERATORS[self.operator](column, self.value), dtype=bool)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.column} {self.operator} {self.value!r}"


@dataclass(frozen=True)
class ContainsObject:
    """The binary content predicate ``contains_object(category)``.

    Evaluating it requires running a classifier (cascade) over image pixels;
    the query processor decides which cascade, under which deployment
    scenario and user constraints.
    """

    category: str

    def __post_init__(self) -> None:
        if not self.category:
            raise ValueError("category must be non-empty")

    @property
    def column_name(self) -> str:
        """Name of the virtual column this predicate materializes."""
        return f"contains_{self.category}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"contains_object({self.category})"
