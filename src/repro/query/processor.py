"""The query processor: SELECT ... FROM images WHERE <predicates>.

As of the :mod:`repro.db` redesign this module holds the query *model*
(:class:`Query`, :class:`QueryResult`) and a thin back-compat
:class:`QueryProcessor` shim over the planner/executor split
(:class:`~repro.db.planner.QueryPlanner` +
:class:`~repro.db.executor.QueryExecutor`).  New code should use
:func:`repro.db.connect` instead of constructing a processor directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluator import CascadeEvaluation
from repro.core.optimizer import TahomaOptimizer
from repro.core.selector import UserConstraints
from repro.costs.profiler import CostProfiler
from repro.data.corpus import ImageCorpus
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.relation import Relation

__all__ = ["Query", "QueryResult", "QueryProcessor", "DEFAULT_TABLE"]

#: The table an unqualified query targets — what ``connect(corpus)`` names
#: its single corpus.  :mod:`repro.db.catalog` re-exports this; it lives here
#: so the query model and the catalog can share it without an import cycle.
DEFAULT_TABLE = "images"


@dataclass(frozen=True)
class Query:
    """A conjunctive SELECT query over one table of the catalog.

    All predicates are ANDed, mirroring the paper's decomposition of queries
    into metadata predicates plus binary ``contains_object`` predicates.
    ``limit`` caps the number of returned rows (SQL ``LIMIT n``); ``table``
    is the ``FROM`` target — a catalog table name, or the virtual
    ``all_cameras`` table that fans the query out across every shard.
    """

    metadata_predicates: tuple[MetadataPredicate, ...] = ()
    content_predicates: tuple[ContainsObject, ...] = ()
    constraints: UserConstraints = field(default_factory=UserConstraints)
    limit: int | None = None
    table: str = DEFAULT_TABLE

    def __post_init__(self) -> None:
        if not self.metadata_predicates and not self.content_predicates:
            raise ValueError("a query needs at least one predicate")
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")


@dataclass
class QueryResult:
    """Rows selected by a query plus bookkeeping about how they were produced."""

    relation: Relation
    selected_indices: np.ndarray
    cascades_used: dict[str, CascadeEvaluation]
    images_classified: dict[str, int]

    def __len__(self) -> int:
        return int(self.selected_indices.size)


class QueryProcessor:
    """Answers queries over an :class:`~repro.data.corpus.ImageCorpus`.

    Back-compat shim: planning (cascade selection, predicate ordering) is
    delegated to :class:`~repro.db.planner.QueryPlanner` and execution
    (materialized virtual columns, the shared persistent representation
    store) to :class:`~repro.db.executor.QueryExecutor`.

    Parameters
    ----------
    corpus:
        The image corpus with metadata columns.
    optimizers:
        Mapping from category name to an *initialized*
        :class:`~repro.core.optimizer.TahomaOptimizer` for that predicate.
    profiler:
        Cost profiler describing the current deployment scenario, used to
        select the cascade for each content predicate at query time.
    """

    def __init__(self, corpus: ImageCorpus,
                 optimizers: dict[str, TahomaOptimizer],
                 profiler: CostProfiler) -> None:
        # Imported here: repro.db imports repro.query.sql (which needs this
        # module's Query) at package-init time, so a module-level import of
        # repro.db from here would be circular.
        from repro.db.executor import QueryExecutor
        from repro.db.planner import QueryPlanner

        self._planner = QueryPlanner(optimizers, profiler)
        self._executor = QueryExecutor(corpus)

    # -- public API ----------------------------------------------------------
    @property
    def corpus(self) -> ImageCorpus:
        return self._executor.corpus

    @property
    def optimizers(self) -> dict[str, TahomaOptimizer]:
        return self._planner.optimizers

    @property
    def profiler(self) -> CostProfiler:
        return self._planner.profiler

    @profiler.setter
    def profiler(self, profiler: CostProfiler) -> None:
        self._planner.profiler = profiler

    @property
    def relation(self) -> Relation:
        """The metadata relation (without content columns)."""
        return self._executor.relation

    def execute(self, query: Query) -> QueryResult:
        """Evaluate a query: metadata predicates first, then content predicates."""
        return self._executor.execute(self._planner.plan(query))
