"""The query processor: SELECT ... FROM images WHERE <predicates>."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluator import CascadeEvaluation
from repro.core.optimizer import TahomaOptimizer
from repro.core.selector import UserConstraints
from repro.costs.profiler import CostProfiler
from repro.data.corpus import ImageCorpus
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.relation import Relation
from repro.storage.store import RepresentationStore

__all__ = ["Query", "QueryResult", "QueryProcessor"]


@dataclass(frozen=True)
class Query:
    """A conjunctive SELECT query over the corpus.

    All predicates are ANDed, mirroring the paper's decomposition of queries
    into metadata predicates plus binary ``contains_object`` predicates.
    """

    metadata_predicates: tuple[MetadataPredicate, ...] = ()
    content_predicates: tuple[ContainsObject, ...] = ()
    constraints: UserConstraints = field(default_factory=UserConstraints)

    def __post_init__(self) -> None:
        if not self.metadata_predicates and not self.content_predicates:
            raise ValueError("a query needs at least one predicate")


@dataclass
class QueryResult:
    """Rows selected by a query plus bookkeeping about how they were produced."""

    relation: Relation
    selected_indices: np.ndarray
    cascades_used: dict[str, CascadeEvaluation]
    images_classified: dict[str, int]

    def __len__(self) -> int:
        return int(self.selected_indices.size)


class QueryProcessor:
    """Answers queries over an :class:`~repro.data.corpus.ImageCorpus`.

    Parameters
    ----------
    corpus:
        The image corpus with metadata columns.
    optimizers:
        Mapping from category name to an *initialized*
        :class:`~repro.core.optimizer.TahomaOptimizer` for that predicate.
    profiler:
        Cost profiler describing the current deployment scenario, used to
        select the cascade for each content predicate at query time.
    """

    def __init__(self, corpus: ImageCorpus,
                 optimizers: dict[str, TahomaOptimizer],
                 profiler: CostProfiler) -> None:
        if len(corpus) == 0:
            raise ValueError("corpus is empty")
        self.corpus = corpus
        self.optimizers = dict(optimizers)
        self.profiler = profiler
        self._base_relation = Relation(
            {**corpus.metadata, "image_id": np.arange(len(corpus))})
        # Materialized virtual columns: category -> (mask of rows evaluated,
        # labels for evaluated rows).  Later queries reuse these.
        self._materialized: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # -- public API ----------------------------------------------------------
    @property
    def relation(self) -> Relation:
        """The metadata relation (without content columns)."""
        return self._base_relation

    def execute(self, query: Query) -> QueryResult:
        """Evaluate a query: metadata predicates first, then content predicates."""
        mask = np.ones(len(self.corpus), dtype=bool)
        for predicate in query.metadata_predicates:
            mask &= predicate.evaluate(self._base_relation)

        cascades_used: dict[str, CascadeEvaluation] = {}
        images_classified: dict[str, int] = {}
        relation = self._base_relation

        for predicate in query.content_predicates:
            labels, evaluation, n_classified = self._evaluate_content(
                predicate, mask, query.constraints)
            cascades_used[predicate.category] = evaluation
            images_classified[predicate.category] = n_classified
            relation = relation.with_column(predicate.column_name, labels)
            mask &= labels.astype(bool)

        selected = np.where(mask)[0]
        return QueryResult(relation=relation.filter(mask),
                           selected_indices=selected,
                           cascades_used=cascades_used,
                           images_classified=images_classified)

    # -- internals ---------------------------------------------------------------
    def _optimizer_for(self, category: str) -> TahomaOptimizer:
        try:
            return self.optimizers[category]
        except KeyError:
            raise KeyError(f"no optimizer installed for category {category!r}; "
                           f"available: {sorted(self.optimizers)}") from None

    def _evaluate_content(self, predicate: ContainsObject,
                          candidate_mask: np.ndarray,
                          constraints: UserConstraints
                          ) -> tuple[np.ndarray, CascadeEvaluation, int]:
        """Populate the virtual column for one contains_object predicate.

        Only rows surviving the metadata predicates (and not already
        materialized by an earlier query) are classified.
        """
        optimizer = self._optimizer_for(predicate.category)
        evaluation = optimizer.select(self.profiler, constraints)

        n = len(self.corpus)
        evaluated_mask, labels = self._materialized.get(
            predicate.category, (np.zeros(n, dtype=bool), np.zeros(n, dtype=np.int64)))

        to_classify = candidate_mask & ~evaluated_mask
        n_classified = int(to_classify.sum())
        if n_classified > 0:
            store = RepresentationStore()
            new_labels = optimizer.query(self.corpus.images[to_classify],
                                         evaluation, store=store)
            labels = labels.copy()
            labels[to_classify] = new_labels
            evaluated_mask = evaluated_mask | to_classify
            self._materialized[predicate.category] = (evaluated_mask, labels)

        return labels, evaluation, n_classified
