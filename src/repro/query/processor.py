"""The query processor: SELECT ... FROM images WHERE <predicates>.

As of the :mod:`repro.db` redesign this module holds the query *model*
(:class:`Query`, :class:`QueryResult`) and a thin back-compat
:class:`QueryProcessor` shim over the planner/executor split
(:class:`~repro.db.planner.QueryPlanner` +
:class:`~repro.db.executor.QueryExecutor`).  New code should use
:func:`repro.db.connect` instead of constructing a processor directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.evaluator import CascadeEvaluation
from repro.core.optimizer import TahomaOptimizer
from repro.core.selector import UserConstraints
from repro.costs.profiler import CostProfiler
from repro.data.corpus import ImageCorpus
from repro.query.ast import (Aggregate, AndExpr, BooleanExpr, OrderItem,
                             PredicateExpr, SelectItem, iter_predicates)
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.db.aggregates import GroupedPartials

__all__ = ["Query", "QueryResult", "QueryProcessor", "DEFAULT_TABLE"]

#: The table an unqualified query targets — what ``connect(corpus)`` names
#: its single corpus.  :mod:`repro.db.catalog` re-exports this; it lives here
#: so the query model and the catalog can share it without an import cycle.
DEFAULT_TABLE = "images"


@dataclass(frozen=True)
class Query:
    """One SELECT query over one table of the catalog.

    The WHERE clause is the :class:`~repro.query.ast.BooleanExpr` tree in
    ``where`` (``None`` for a bare scan).  The flat ``metadata_predicates``
    / ``content_predicates`` tuples are the paper's conjunctive
    decomposition and are kept in sync with the tree: constructing a query
    from the flat tuples (the original API) synthesizes a conjunction, and
    constructing one from a ``where`` tree derives the tuples from its
    leaves (syntactic order) so cascade selection and training hooks keep
    working unchanged.

    ``select`` lists the projected columns and aggregates (``None`` means
    ``*``), ``group_by``/``order_by`` carry the grouping and sort keys, and
    ``limit`` caps the number of returned rows (result *groups* for an
    aggregate query).  ``table`` is the ``FROM`` target — a catalog table
    name, or the virtual ``all_cameras`` table that fans the query out
    across every shard.  ``explain_analyze`` marks a query prefixed with
    ``EXPLAIN ANALYZE``: it executes normally, but the caller returns the
    annotated plan (estimated vs. actual per node) instead of the rows.
    """

    metadata_predicates: tuple[MetadataPredicate, ...] = ()
    content_predicates: tuple[ContainsObject, ...] = ()
    constraints: UserConstraints = field(default_factory=UserConstraints)
    limit: int | None = None
    table: str = DEFAULT_TABLE
    where: BooleanExpr | None = None
    select: tuple[SelectItem, ...] | None = None
    group_by: tuple[str, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    explain_analyze: bool = False

    def __post_init__(self) -> None:
        if self.where is None:
            leaves = tuple(PredicateExpr(predicate) for predicate in
                           self.metadata_predicates + self.content_predicates)
            if len(leaves) == 1:
                object.__setattr__(self, "where", leaves[0])
            elif leaves:
                object.__setattr__(self, "where", AndExpr(leaves))
        elif not self.metadata_predicates and not self.content_predicates:
            predicates = list(iter_predicates(self.where))
            object.__setattr__(self, "metadata_predicates", tuple(
                p for p in predicates if isinstance(p, MetadataPredicate)))
            object.__setattr__(self, "content_predicates", tuple(
                p for p in predicates if isinstance(p, ContainsObject)))
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")
        if self.select is not None and not self.select:
            raise ValueError("select must name at least one item (or be None "
                             "for SELECT *)")

    @property
    def aggregates(self) -> tuple[Aggregate, ...]:
        """The aggregate items of the SELECT list, in SELECT order."""
        return tuple(item for item in (self.select or ())
                     if isinstance(item, Aggregate))

    @property
    def is_aggregate(self) -> bool:
        """Whether results are groups (aggregates / GROUP BY), not rows."""
        return bool(self.aggregates) or bool(self.group_by)


@dataclass
class QueryResult:
    """Rows selected by a query plus bookkeeping about how they were produced.

    For an aggregate query the executor additionally attaches ``partials`` —
    the per-shard partial aggregate states
    (:class:`~repro.db.aggregates.GroupedPartials`) a fan-out coordinator
    merges, so a grouped count over N cameras ships group tuples, not rows.
    """

    relation: Relation
    selected_indices: np.ndarray
    cascades_used: dict[str, CascadeEvaluation]
    images_classified: dict[str, int]
    partials: "GroupedPartials | None" = None
    #: Per-plan-node execution measurements keyed by ``id(plan node)`` —
    #: rows in/out, actual selectivity, rows classified, elapsed seconds —
    #: consumed by ``EXPLAIN ANALYZE``
    #: (:func:`repro.db.planner.annotate_plan_dict`).
    node_stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.selected_indices.size)


class QueryProcessor:
    """Answers queries over an :class:`~repro.data.corpus.ImageCorpus`.

    Back-compat shim: planning (cascade selection, predicate ordering) is
    delegated to :class:`~repro.db.planner.QueryPlanner` and execution
    (materialized virtual columns, the shared persistent representation
    store) to :class:`~repro.db.executor.QueryExecutor`.

    Parameters
    ----------
    corpus:
        The image corpus with metadata columns.
    optimizers:
        Mapping from category name to an *initialized*
        :class:`~repro.core.optimizer.TahomaOptimizer` for that predicate.
    profiler:
        Cost profiler describing the current deployment scenario, used to
        select the cascade for each content predicate at query time.
    """

    def __init__(self, corpus: ImageCorpus,
                 optimizers: dict[str, TahomaOptimizer],
                 profiler: CostProfiler) -> None:
        # Imported here: repro.db imports repro.query.sql (which needs this
        # module's Query) at package-init time, so a module-level import of
        # repro.db from here would be circular.
        from repro.db.executor import QueryExecutor
        from repro.db.planner import QueryPlanner

        self._planner = QueryPlanner(optimizers, profiler)
        self._executor = QueryExecutor(corpus)

    # -- public API ----------------------------------------------------------
    @property
    def corpus(self) -> ImageCorpus:
        return self._executor.corpus

    @property
    def optimizers(self) -> dict[str, TahomaOptimizer]:
        return self._planner.optimizers

    @property
    def profiler(self) -> CostProfiler:
        return self._planner.profiler

    @profiler.setter
    def profiler(self, profiler: CostProfiler) -> None:
        self._planner.profiler = profiler

    @property
    def relation(self) -> Relation:
        """The metadata relation (without content columns)."""
        return self._executor.relation

    def execute(self, query: Query) -> QueryResult:
        """Evaluate a query: metadata predicates first, then content predicates."""
        return self._executor.execute(self._planner.plan(query))
