"""An in-memory columnar relation."""

from __future__ import annotations

import numpy as np

__all__ = ["Relation", "to_python"]


def to_python(value):
    """NumPy scalars become plain Python values (row dicts, group keys)."""
    return value.item() if isinstance(value, np.generic) else value


class Relation:
    """A named collection of equal-length columns (NumPy arrays).

    This is the minimal relational substrate the query processor needs:
    column access, row filtering by boolean mask, projection and appending
    derived (virtual) columns.
    """

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a relation needs at least one column")
        lengths = {name: np.asarray(values).shape[0]
                   for name, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"columns have mismatched lengths: {lengths}")
        self._columns = {name: np.asarray(values) for name, values in columns.items()}

    # -- basic accessors ---------------------------------------------------
    def __len__(self) -> int:
        return int(next(iter(self._columns.values())).shape[0])

    def column_names(self) -> list[str]:
        return sorted(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"unknown column {name!r}; "
                           f"available: {self.column_names()}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    # -- relational operations -------------------------------------------------
    def with_column(self, name: str, values: np.ndarray) -> "Relation":
        """A new relation with an added (or replaced) column."""
        values = np.asarray(values)
        if values.shape[0] != len(self):
            raise ValueError(f"column {name!r} has length {values.shape[0]}, "
                             f"expected {len(self)}")
        columns = dict(self._columns)
        columns[name] = values
        return Relation(columns)

    def filter(self, mask: np.ndarray) -> "Relation":
        """A new relation keeping only rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != len(self):
            raise ValueError("mask length does not match relation length")
        return Relation({name: values[mask]
                         for name, values in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Relation":
        """A new relation with rows reordered/selected by integer indices."""
        indices = np.asarray(indices)
        return Relation({name: values[indices]
                         for name, values in self._columns.items()})

    def project(self, names: list[str]) -> "Relation":
        """A new relation with only the named columns."""
        if not names:
            raise ValueError("projection needs at least one column")
        return Relation({name: self.column(name) for name in names})

    def to_dict(self) -> dict[str, np.ndarray]:
        """A shallow copy of the column mapping."""
        return dict(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation(rows={len(self)}, columns={self.column_names()})"
