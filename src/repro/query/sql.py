"""A tiny SQL-ish front end for the query processor.

The paper frames TAHOMA's workload as queries of the form::

    SELECT * FROM images WHERE location = 'detroit' AND contains_object(bicycle)

This module parses that restricted dialect into a
:class:`~repro.query.processor.Query`.  Supported grammar (case-insensitive
keywords)::

    SELECT * FROM <table>
    [WHERE <predicate> [AND <predicate>]*]

where a predicate is either

* ``contains_object(<category>)`` — a binary content predicate, or
* ``<column> <op> <literal>`` with ``op`` one of ``=``, ``!=``, ``<``, ``<=``,
  ``>``, ``>=`` and a literal that is a quoted string or a number.

Only conjunctions are supported, mirroring the paper's decomposition of
queries into metadata predicates plus binary content predicates.
"""

from __future__ import annotations

import re

from repro.core.selector import UserConstraints
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query

__all__ = ["parse_query", "SqlParseError"]


class SqlParseError(ValueError):
    """Raised when a query string does not match the supported dialect."""


_SELECT_RE = re.compile(
    r"^\s*select\s+\*\s+from\s+(?P<table>[a-zA-Z_][\w]*)"
    r"(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL)

_CONTAINS_RE = re.compile(
    r"^contains_object\(\s*'?(?P<category>[\w-]+)'?\s*\)$", re.IGNORECASE)

_COMPARISON_RE = re.compile(
    r"^(?P<column>[a-zA-Z_][\w]*)\s*(?P<op>=|!=|<=|>=|<|>)\s*(?P<value>.+)$")

#: SQL comparison spellings mapped to MetadataPredicate operators.
_OP_MAP = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _split_conjuncts(where: str) -> list[str]:
    """Split a WHERE clause on top-level ANDs (no parentheses supported)."""
    parts = re.split(r"\s+and\s+", where, flags=re.IGNORECASE)
    conjuncts = [part.strip() for part in parts if part.strip()]
    if not conjuncts:
        raise SqlParseError("empty WHERE clause")
    return conjuncts


def _parse_literal(text: str):
    text = text.strip()
    if (text.startswith("'") and text.endswith("'")) or \
            (text.startswith('"') and text.endswith('"')):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise SqlParseError(f"cannot parse literal {text!r}; "
                            "use quotes for strings") from None


def _parse_predicate(text: str) -> MetadataPredicate | ContainsObject:
    contains = _CONTAINS_RE.match(text)
    if contains:
        return ContainsObject(contains.group("category"))
    comparison = _COMPARISON_RE.match(text)
    if comparison:
        operator = _OP_MAP[comparison.group("op")]
        value = _parse_literal(comparison.group("value"))
        return MetadataPredicate(comparison.group("column"), operator, value)
    raise SqlParseError(f"unsupported predicate: {text!r}")


def parse_query(sql: str,
                constraints: UserConstraints | None = None) -> Query:
    """Parse a ``SELECT * FROM images WHERE ...`` string into a :class:`Query`.

    Parameters
    ----------
    sql:
        The query text.
    constraints:
        Optional accuracy/throughput constraints attached to the query (the
        paper has users supply these alongside the query, in the spirit of
        BlinkDB-style approximation contracts).
    """
    if not sql or not sql.strip():
        raise SqlParseError("empty query")
    match = _SELECT_RE.match(sql)
    if not match:
        raise SqlParseError(
            "only 'SELECT * FROM <table> [WHERE ...]' queries are supported")

    where = match.group("where")
    metadata: list[MetadataPredicate] = []
    content: list[ContainsObject] = []
    if where:
        for conjunct in _split_conjuncts(where):
            predicate = _parse_predicate(conjunct)
            if isinstance(predicate, ContainsObject):
                content.append(predicate)
            else:
                metadata.append(predicate)
    if not metadata and not content:
        raise SqlParseError("a query needs at least one predicate")

    return Query(metadata_predicates=tuple(metadata),
                 content_predicates=tuple(content),
                 constraints=constraints or UserConstraints())
