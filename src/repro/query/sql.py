"""The SQL front end: a tokenizer + recursive-descent parser for TAHOMA queries.

The paper frames TAHOMA's workload as queries of the form::

    SELECT * FROM images WHERE location = 'detroit' AND contains_object(bicycle)

This module parses the dialect into a :class:`~repro.query.processor.Query`
via the AST node types of :mod:`repro.query.ast`.  Supported grammar
(case-insensitive keywords)::

    query      := [EXPLAIN ANALYZE] SELECT select_list FROM <table>
                  [WHERE expr]
                  [GROUP BY column [, column]*]
                  [ORDER BY order_key [ASC|DESC] [, order_key [ASC|DESC]]*]
                  [LIMIT n] [;]
    select_list := '*' | select_item [, select_item]*
    select_item := column | COUNT '(' ('*' | column) ')'
                 | (SUM|AVG|MIN|MAX) '(' column ')'
    order_key  := column | aggregate
    expr       := and_expr [OR and_expr]*
    and_expr   := not_expr [AND not_expr]*
    not_expr   := NOT not_expr | '(' expr ')' | predicate

where a predicate is one of

* ``contains_object(<category>)`` — a binary content predicate,
* ``<column> <op> <literal>`` with ``op`` one of ``=``, ``!=``, ``<``, ``<=``,
  ``>``, ``>=`` and a literal that is a quoted string (doubled quotes escape
  a quote character, as in ``'rock ''n'' roll'``) or a number, or
* ``<column> [NOT] IN (<literal> [, <literal>]*)`` — a metadata membership
  test.

Boolean structure is preserved as a tree (AND/OR/NOT with parentheses); the
planner orders and short-circuits it at execution time.  A WHERE clause is
optional — ``SELECT * FROM images LIMIT 5`` is a plain scan/preview.  In an
aggregate query every non-aggregate SELECT item must appear in GROUP BY, and
ORDER BY keys must be group columns or aggregates from the SELECT list.

An ``EXPLAIN ANALYZE`` prefix marks the query for profiled execution: it
runs normally, but ``db.execute`` returns the plan tree annotated with
estimated vs. actual selectivity, rows classified and elapsed time per node
instead of a result set (``db.explain_analyze`` is the direct API).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.selector import UserConstraints
from repro.query.ast import (AGGREGATE_FUNCTIONS, Aggregate, AndExpr,
                             BooleanExpr, NotExpr, OrderItem, OrExpr,
                             PredicateExpr, SelectItem, SqlParseError, Token,
                             select_label, tokenize)
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query

__all__ = ["parse_query", "split_explain_analyze", "SqlParseError"]

#: SQL comparison spellings mapped to MetadataPredicate operators.
_OP_MAP = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class _Parser:
    """Recursive-descent parser over the token stream of one query."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._position = 0

    # -- token plumbing -------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token | None:
        index = self._position + ahead
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> Token | None:
        token = self._peek()
        if token is not None:
            self._position += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> SqlParseError:
        token = token if token is not None else self._peek()
        if token is None:
            return SqlParseError(message, offset=len(self._sql), token=None)
        return SqlParseError(message, offset=token.offset, token=token.text)

    def _at_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token is not None and token.keyword() in keywords

    def _accept_keyword(self, *keywords: str) -> Token | None:
        if self._at_keyword(*keywords):
            return self._next()
        return None

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._accept_keyword(keyword)
        if token is None:
            raise self._error(f"expected {keyword}")
        return token

    def _accept(self, token_type: str) -> Token | None:
        token = self._peek()
        if token is not None and token.type == token_type:
            return self._next()
        return None

    def _expect(self, token_type: str, what: str) -> Token:
        token = self._accept(token_type)
        if token is None:
            raise self._error(f"expected {what}")
        return token

    def _expect_ident(self, what: str) -> Token:
        return self._expect("IDENT", what)

    # -- grammar --------------------------------------------------------------
    def parse(self) -> dict:
        self._expect_keyword("SELECT")
        select = self._parse_select_list()
        self._expect_keyword("FROM")
        table = self._expect_ident("a table name").text

        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_or()

        group_by: tuple[str, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._parse_column_list("a GROUP BY column")

        order_by: tuple[OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_list()

        limit = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_limit()

        self._accept("SEMI")
        trailing = self._peek()
        if trailing is not None:
            raise self._error("unexpected trailing input", trailing)

        self._validate(select, group_by, order_by)
        return {"select": select, "table": table, "where": where,
                "group_by": group_by, "order_by": order_by, "limit": limit}

    def _parse_select_list(self) -> tuple[SelectItem, ...] | None:
        if self._accept("STAR"):
            return None
        items: list[SelectItem] = [self._parse_select_item()]
        while self._accept("COMMA"):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self._expect_ident("a column name or aggregate")
        keyword = token.keyword().lower()
        next_token = self._peek()
        if (keyword in AGGREGATE_FUNCTIONS and next_token is not None
                and next_token.type == "LPAREN"):
            return self._parse_aggregate_call(token)
        return token.text

    def _parse_aggregate_call(self, func_token: Token) -> Aggregate:
        func = func_token.keyword().lower()
        self._expect("LPAREN", "'('")
        if self._accept("STAR"):
            if func != "count":
                raise self._error(f"{func.upper()}(*) is not defined; only "
                                  "COUNT accepts *", func_token)
            argument = None
        else:
            argument = self._expect_ident(
                f"a column name inside {func.upper()}(...)").text
        self._expect("RPAREN", "')'")
        return Aggregate(func, argument)

    def _parse_column_list(self, what: str) -> tuple[str, ...]:
        columns = [self._expect_ident(what).text]
        while self._accept("COMMA"):
            columns.append(self._expect_ident(what).text)
        return tuple(columns)

    def _parse_order_list(self) -> tuple[OrderItem, ...]:
        items = [self._parse_order_item()]
        while self._accept("COMMA"):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderItem:
        key = self._parse_select_item()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(key, ascending)

    def _parse_limit(self) -> int:
        token = self._peek()
        if token is None or token.type != "NUMBER":
            raise self._error("LIMIT must be a non-negative integer")
        try:
            limit = int(token.text)
        except ValueError:
            raise self._error("LIMIT must be a non-negative integer") from None
        if limit < 0:
            raise self._error(f"LIMIT must be non-negative, got {limit}")
        self._next()
        return limit

    # -- WHERE expressions ----------------------------------------------------
    def _parse_or(self) -> BooleanExpr:
        children = [self._parse_and()]
        while self._accept_keyword("OR"):
            children.append(self._parse_and())
        if len(children) == 1:
            return children[0]
        return OrExpr(tuple(self._flatten(children, OrExpr)))

    def _parse_and(self) -> BooleanExpr:
        children = [self._parse_not()]
        while self._accept_keyword("AND"):
            children.append(self._parse_not())
        if len(children) == 1:
            return children[0]
        return AndExpr(tuple(self._flatten(children, AndExpr)))

    @staticmethod
    def _flatten(children: list[BooleanExpr], node_type) -> list[BooleanExpr]:
        """Fold nested same-type nodes: (a AND b) AND c -> AND(a, b, c)."""
        flat: list[BooleanExpr] = []
        for child in children:
            if isinstance(child, node_type):
                flat.extend(child.children)
            else:
                flat.append(child)
        return flat

    def _parse_not(self) -> BooleanExpr:
        if self._accept_keyword("NOT"):
            return NotExpr(self._parse_not())
        if self._accept("LPAREN"):
            expr = self._parse_or()
            self._expect("RPAREN", "')'")
            return expr
        return self._parse_predicate()

    def _parse_predicate(self) -> BooleanExpr:
        token = self._expect_ident("a predicate")
        next_token = self._peek()
        if (token.keyword() == "CONTAINS_OBJECT" and next_token is not None
                and next_token.type == "LPAREN"):
            return PredicateExpr(self._parse_contains(token))
        column = token.text
        if self._at_keyword("IN"):
            self._next()
            return PredicateExpr(self._parse_in(column))
        if self._at_keyword("NOT") and self._peek(1) is not None \
                and self._peek(1).keyword() == "IN":
            self._next()
            self._next()
            return NotExpr(PredicateExpr(self._parse_in(column)))
        operator = self._accept("OP")
        if operator is None:
            raise self._error("expected a comparison operator or IN after "
                              f"column {column!r}")
        value = self._parse_literal()
        return PredicateExpr(
            MetadataPredicate(column, _OP_MAP[operator.text], value))

    def _parse_contains(self, func_token: Token) -> ContainsObject:
        self._expect("LPAREN", "'('")
        if self._peek() is not None and self._peek().type == "STRING":
            category = self._next().value
        else:
            # A bare category is one word of IDENT/NUMBER/DASH tokens with
            # no whitespace between them (``traffic-light``); a gap means a
            # typo, not a longer category.
            parts: list[str] = []
            end = None
            while True:
                token = self._peek()
                if token is None:
                    raise self._error("unterminated contains_object(...)")
                if token.type not in ("IDENT", "NUMBER", "DASH"):
                    break
                if end is not None and token.offset != end:
                    raise self._error(
                        "expected ')' closing contains_object(...)", token)
                parts.append(token.text)
                end = token.offset + len(token.text)
                self._next()
            category = "".join(parts)
        self._expect("RPAREN", "')' closing contains_object(...)")
        if not category:
            raise self._error("contains_object needs a category", func_token)
        return ContainsObject(category)

    def _parse_in(self, column: str) -> MetadataPredicate:
        self._expect("LPAREN", "'(' after IN")
        values = [self._parse_literal()]
        while self._accept("COMMA"):
            values.append(self._parse_literal())
        self._expect("RPAREN", "')' closing the IN list")
        return MetadataPredicate(column, "in", tuple(values))

    def _parse_literal(self):
        token = self._peek()
        if token is not None and token.type in ("STRING", "NUMBER"):
            self._next()
            return token.value
        raise self._error("expected a literal (quote strings)")

    # -- semantic validation --------------------------------------------------
    def _validate(self, select: tuple[SelectItem, ...] | None,
                  group_by: tuple[str, ...],
                  order_by: tuple[OrderItem, ...]) -> None:
        aggregates = tuple(item for item in (select or ())
                           if isinstance(item, Aggregate))
        is_aggregate = bool(aggregates) or bool(group_by)
        if select is None and group_by:
            raise SqlParseError(
                "SELECT * cannot be combined with GROUP BY; name the group "
                "columns and aggregates explicitly")
        if is_aggregate:
            for item in (select or ()):
                if isinstance(item, str) and item not in group_by:
                    raise SqlParseError(
                        f"column {item!r} must appear in GROUP BY to be "
                        "selected alongside aggregates")
            labels = {select_label(item) for item in (select or ())}
            for item in order_by:
                if item.label not in labels and item.label not in group_by:
                    raise SqlParseError(
                        f"ORDER BY key {item.label!r} must be a GROUP BY "
                        "column or an aggregate from the SELECT list")
        else:
            for item in order_by:
                if isinstance(item.key, Aggregate):
                    raise SqlParseError(
                        f"ORDER BY {item.label} requires an aggregate query "
                        "(add it to the SELECT list with GROUP BY)")


def split_explain_analyze(sql: str) -> tuple[bool, str]:
    """``(is_explain_analyze, remaining sql)`` for one statement.

    Token-based, so comments-free weird spacing and case all work; anything
    that fails to tokenize is returned unchanged (the parser will report the
    real error on the full text).  A bare ``EXPLAIN`` (without ``ANALYZE``)
    is *not* stripped — ``db.explain`` is the plan-only API and has no SQL
    spelling.
    """
    try:
        tokens = tokenize(sql)
    except SqlParseError:
        return False, sql
    if (len(tokens) >= 2 and tokens[0].keyword() == "EXPLAIN"
            and tokens[1].keyword() == "ANALYZE"):
        return True, sql[tokens[1].offset + len(tokens[1].text):]
    return False, sql


def parse_query(sql: str,
                constraints: UserConstraints | None = None,
                known_tables: "Iterable[str] | None" = None) -> Query:
    """Parse one SELECT statement into a :class:`Query`.

    Parameters
    ----------
    sql:
        The query text (see the module docstring for the grammar).
    constraints:
        Optional accuracy/throughput constraints attached to the query (the
        paper has users supply these alongside the query, in the spirit of
        BlinkDB-style approximation contracts).
    known_tables:
        When given, the ``FROM`` table must be one of these names (a catalog
        passes its table names plus the virtual fan-out table); an unknown
        table raises :class:`SqlParseError` listing the known tables instead
        of silently answering from a default corpus.

    Parse errors report the offending token and its character offset.
    """
    if not sql or not sql.strip():
        raise SqlParseError("empty query")
    explain_analyze, body = split_explain_analyze(sql)
    if explain_analyze and not body.strip():
        raise SqlParseError("EXPLAIN ANALYZE needs a SELECT statement")
    parsed = _Parser(body).parse()

    table = parsed["table"]
    if known_tables is not None:
        known = sorted(known_tables)
        if table not in known:
            raise SqlParseError(
                f"unknown table {table!r}; known tables: {known}")

    return Query(constraints=constraints or UserConstraints(),
                 limit=parsed["limit"],
                 table=table,
                 where=parsed["where"],
                 select=parsed["select"],
                 group_by=parsed["group_by"],
                 order_by=parsed["order_by"],
                 explain_analyze=explain_analyze)
