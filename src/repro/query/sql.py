"""A tiny SQL-ish front end for the query processor.

The paper frames TAHOMA's workload as queries of the form::

    SELECT * FROM images WHERE location = 'detroit' AND contains_object(bicycle)

This module parses that restricted dialect into a
:class:`~repro.query.processor.Query`.  Supported grammar (case-insensitive
keywords)::

    SELECT * FROM <table>
    [WHERE <predicate> [AND <predicate>]*]
    [LIMIT <n>]

where a predicate is one of

* ``contains_object(<category>)`` — a binary content predicate,
* ``<column> <op> <literal>`` with ``op`` one of ``=``, ``!=``, ``<``, ``<=``,
  ``>``, ``>=`` and a literal that is a quoted string (doubled quotes escape
  a quote character, as in ``'rock ''n'' roll'``) or a number, or
* ``<column> IN (<literal> [, <literal>]*)`` — a metadata membership test.

Only conjunctions are supported, mirroring the paper's decomposition of
queries into metadata predicates plus binary content predicates.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.core.selector import UserConstraints
from repro.query.predicates import ContainsObject, MetadataPredicate
from repro.query.processor import Query

__all__ = ["parse_query", "SqlParseError"]


class SqlParseError(ValueError):
    """Raised when a query string does not match the supported dialect."""


_SELECT_RE = re.compile(
    r"^\s*select\s+\*\s+from\s+(?P<table>[a-zA-Z_][\w]*)(?P<rest>\s.*)?$",
    re.IGNORECASE | re.DOTALL)

_WHERE_RE = re.compile(r"^where\s+(?P<where>.+)$", re.IGNORECASE | re.DOTALL)

_CONTAINS_RE = re.compile(
    r"^contains_object\(\s*'?(?P<category>[\w-]+)'?\s*\)$", re.IGNORECASE)

_COMPARISON_RE = re.compile(
    r"^(?P<column>[a-zA-Z_][\w]*)\s*(?P<op>=|!=|<=|>=|<|>)\s*(?P<value>.+)$")

_IN_RE = re.compile(
    r"^(?P<column>[a-zA-Z_][\w]*)\s+in\s*\((?P<values>.*)\)$",
    re.IGNORECASE | re.DOTALL)

_AND_RE = re.compile(r"\s+(and)\s+", re.IGNORECASE)

_LIMIT_KEYWORD_RE = re.compile(r"\blimit\b", re.IGNORECASE)

#: SQL comparison spellings mapped to MetadataPredicate operators.
_OP_MAP = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _quoted_mask(text: str) -> bytearray:
    """Per-character flags marking positions inside quoted string literals.

    A doubled quote inside a literal (``'rock ''n'' roll'``) is the SQL
    escape for one quote character: both characters stay inside the literal
    rather than closing and reopening it.
    """
    mask = bytearray(len(text))
    quote = None
    index = 0
    while index < len(text):
        char = text[index]
        if quote is not None:
            mask[index] = 1
            if char == quote:
                if index + 1 < len(text) and text[index + 1] == quote:
                    mask[index + 1] = 1
                    index += 2
                    continue
                quote = None
        elif char in "'\"":
            quote = char
            mask[index] = 1
        index += 1
    return mask


def _split_conjuncts(where: str) -> list[str]:
    """Split a WHERE clause on top-level ANDs (no parentheses supported).

    ANDs inside quoted string literals (``'rock and roll'``) are not split
    points.
    """
    mask = _quoted_mask(where)
    parts, start = [], 0
    for match in _AND_RE.finditer(where):
        if mask[match.start(1)]:
            continue
        parts.append(where[start:match.start()])
        start = match.end()
    parts.append(where[start:])
    conjuncts = [part.strip() for part in parts if part.strip()]
    if not conjuncts:
        raise SqlParseError("empty WHERE clause")
    return conjuncts


def _parse_literal(text: str):
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        quote = text[0]
        # Collapse the SQL doubled-quote escape: '' inside a single-quoted
        # literal (or "" inside a double-quoted one) means one quote char.
        return text[1:-1].replace(quote * 2, quote)
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise SqlParseError(f"cannot parse literal {text!r}; "
                            "use quotes for strings") from None


def _split_in_list(text: str) -> list[str]:
    """Split an IN value list on commas outside quoted string literals."""
    mask = _quoted_mask(text)
    parts, start = [], 0
    for index, char in enumerate(text):
        if char == "," and not mask[index]:
            parts.append(text[start:index])
            start = index + 1
    parts.append(text[start:])
    return parts


def _parse_in_values(text: str) -> tuple:
    if not text.strip():
        raise SqlParseError("IN requires at least one value")
    values = []
    for part in _split_in_list(text):
        if not part.strip():
            raise SqlParseError(f"malformed IN value list: ({text})")
        values.append(_parse_literal(part))
    return tuple(values)


def _parse_limit(text: str) -> int:
    try:
        limit = int(text)
    except ValueError:
        raise SqlParseError(
            f"LIMIT must be a non-negative integer, got {text!r}") from None
    if limit < 0:
        raise SqlParseError(f"LIMIT must be non-negative, got {limit}")
    return limit


def _split_limit(rest: str) -> tuple[str, int | None]:
    """Split the clause text after the table into (where part, LIMIT value).

    The LIMIT keyword is recognised only outside quoted string literals, so
    ``WHERE note = 'speed limit 55'`` parses as a predicate, not a LIMIT.
    """
    mask = _quoted_mask(rest)
    matches = [match for match in _LIMIT_KEYWORD_RE.finditer(rest)
               if not mask[match.start()]]
    if not matches:
        return rest, None
    last = matches[-1]
    tail = rest[last.end():].strip()
    if not tail or re.search(r"\s", tail):
        raise SqlParseError(
            f"malformed LIMIT clause: {rest[last.start():].strip()!r}")
    return rest[:last.start()], _parse_limit(tail)


def _parse_predicate(text: str) -> MetadataPredicate | ContainsObject:
    contains = _CONTAINS_RE.match(text)
    if contains:
        return ContainsObject(contains.group("category"))
    membership = _IN_RE.match(text)
    if membership:
        values = _parse_in_values(membership.group("values"))
        return MetadataPredicate(membership.group("column"), "in", values)
    comparison = _COMPARISON_RE.match(text)
    if comparison:
        operator = _OP_MAP[comparison.group("op")]
        value = _parse_literal(comparison.group("value"))
        return MetadataPredicate(comparison.group("column"), operator, value)
    raise SqlParseError(f"unsupported predicate: {text!r}")


def parse_query(sql: str,
                constraints: UserConstraints | None = None,
                known_tables: "Iterable[str] | None" = None) -> Query:
    """Parse a ``SELECT * FROM <table> WHERE ...`` string into a :class:`Query`.

    Parameters
    ----------
    sql:
        The query text.
    constraints:
        Optional accuracy/throughput constraints attached to the query (the
        paper has users supply these alongside the query, in the spirit of
        BlinkDB-style approximation contracts).
    known_tables:
        When given, the ``FROM`` table must be one of these names (a catalog
        passes its table names plus the virtual fan-out table); an unknown
        table raises :class:`SqlParseError` listing the known tables instead
        of silently answering from a default corpus.
    """
    if not sql or not sql.strip():
        raise SqlParseError("empty query")
    text = sql.strip()
    if text.endswith(";") and not _quoted_mask(text)[-1]:
        text = text[:-1]
    match = _SELECT_RE.match(text)
    if not match:
        raise SqlParseError(
            "only 'SELECT * FROM <table> [WHERE ...]' queries are supported")

    table = match.group("table")
    if known_tables is not None:
        known = sorted(known_tables)
        if table not in known:
            raise SqlParseError(
                f"unknown table {table!r}; known tables: {known}")

    where_part, limit = _split_limit(match.group("rest") or "")
    where = None
    if where_part.strip():
        where_match = _WHERE_RE.match(where_part.strip())
        if not where_match:
            raise SqlParseError(
                "only 'SELECT * FROM <table> [WHERE ...]' queries are supported")
        where = where_match.group("where")
    metadata: list[MetadataPredicate] = []
    content: list[ContainsObject] = []
    if where:
        for conjunct in _split_conjuncts(where):
            predicate = _parse_predicate(conjunct)
            if isinstance(predicate, ContainsObject):
                content.append(predicate)
            else:
                metadata.append(predicate)
    if not metadata and not content:
        raise SqlParseError("a query needs at least one predicate")

    return Query(metadata_predicates=tuple(metadata),
                 content_predicates=tuple(content),
                 constraints=constraints or UserConstraints(),
                 limit=limit,
                 table=table)
