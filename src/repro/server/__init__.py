"""The network serving layer: SQL over a newline-delimited JSON wire protocol.

:class:`~repro.db.database.VisualDatabase` is an in-process engine; this
package turns it into a multi-client system.  A stdlib-only
:class:`~repro.server.server.VisualDatabaseServer` (``socketserver`` + a
bounded worker pool) accepts TCP connections, each holding a *session* with
server-side cursors, and speaks the :mod:`repro.query.sql` dialect over the
wire::

    db = repro.db.connect({"cam_north": north, "cam_south": south})
    server = repro.server.serve(db, port=7432)

    with repro.server.connect(port=7432) as conn:
        cursor = conn.execute("SELECT * FROM all_cameras "
                              "WHERE contains_object(bicycle) LIMIT 10")
        for row in cursor:
            print(row["__table__"], row["image_id"])

Run ``python -m repro.server --demo`` for a self-contained server.

Wire protocol grammar
---------------------

One request per line, one response per line, both JSON objects (UTF-8,
``\\n``-terminated — the *NDJSON* framing).  Mirroring the SQL-grammar
docstring convention of :mod:`repro.query.sql`::

    request    := '{' '"cmd"' ':' command [',' '"id"' ':' any]
                      (command-specific keys)* '}' '\\n'
    response   := '{' '"ok"' ':' bool [',' '"id"' ':' any]
                      (',' '"result"' ':' object
                      |',' '"error"'  ':' error) '}' '\\n'
    error      := '{' '"type"' ':' string ',' '"message"' ':' string
                      (error-specific keys: "offset", "token", ...)* '}'

    command    := "execute" | "fetch" | "close_cursor" | "explain"
                | "stats" | "metrics" | "tables" | "ping" | "quit"

    execute    keys: "sql" (required), "timeout" (seconds, optional),
                     "tables" (shard list, optional), "constraints"
                     (optional: {"max_accuracy_loss", "min_throughput"})
               result: {"cursor", "rowcount", "columns", "remaining"}
                       | {"explain_analyze": report} for an
                       ``EXPLAIN ANALYZE`` query — the annotated-plan
                       report of
                       :meth:`repro.db.database.VisualDatabase.explain_analyze`,
                       whole, with no cursor to page
    fetch      keys: "cursor" (required), "n" (optional, default 64)
               result: {"rows": [row...], "remaining": int}
    close_cursor keys: "cursor"           result: {"closed": bool}
    explain    keys: "sql", "tables", "constraints" (as execute)
               result: {"plan": plan} | {"plans": {table: plan}}
                       (plan is :meth:`repro.db.planner.QueryPlan.to_dict`)
    stats      result: {"scenario", "tables", "predicates", "sessions",
                        "admission": {...}, "plan_cache": {...},
                        "queries": {"completed", "failed", "timeouts",
                                    "rejected"}}
    metrics    keys: "format" ("json" default | "text")
               result: {"metrics": snapshot} — the
                       :mod:`repro.telemetry` registry snapshot — or
                       {"exposition": string} for "text" (the
                       Prometheus-style exposition).  Counters here and
                       the "stats" result read one registry, so the two
                       never disagree.
    tables     result: {"tables": [name...]}
    ping       result: {"pong": true}
    quit       result: {"bye": true}; the server then closes the connection

An ``id`` key, when present, is echoed verbatim in the response so clients
can match pipelined requests.  Error ``type`` names the Python exception
class on the server (``SqlParseError`` carries ``offset``/``token``,
``BackpressureError`` means the admission queue was full — resubmit later,
``QueryTimeoutError`` means the per-query deadline passed and the query was
aborted at a chunk boundary).  Sessions survive every error: a failed query
never tears down the connection.

The serving pieces:

* :mod:`repro.server.protocol` — framing, serializable error payloads;
* :mod:`repro.server.session` — per-connection sessions and cursor paging
  built on :meth:`repro.db.results.ResultSet.fetchmany`;
* :mod:`repro.server.admission` — bounded query queue + worker pool with
  immediate backpressure rejection and cooperative per-query timeouts;
* :mod:`repro.server.plan_cache` — plans keyed by normalized query shape
  (literals stripped) with hit/miss/rebind counters on the
  :mod:`repro.telemetry` registry;
* :mod:`repro.server.server` — the TCP server and graceful shutdown;
* :mod:`repro.server.client` — the matching ``connect()`` client.
"""

from repro.server.admission import AdmissionController
from repro.server.client import connect
from repro.server.plan_cache import PlanCache
from repro.server.protocol import BackpressureError, ProtocolError, ServerError
from repro.server.server import VisualDatabaseServer, serve
from repro.server.session import Session

__all__ = ["VisualDatabaseServer", "serve", "connect", "Session",
           "AdmissionController", "PlanCache",
           "BackpressureError", "ProtocolError", "ServerError"]
