"""``python -m repro.server``: serve a saved database, or a built-in demo.

Two ways to get a database behind the socket::

    python -m repro.server --load my.vdb --port 7432
    python -m repro.server --demo --port 7432

``--demo`` synthesizes a small two-camera catalog and trains a reduced
``komondor`` predicate (CPU-scale, under a minute), so the wire protocol can
be exercised with nothing on disk.  Then, from any process::

    import repro.server
    with repro.server.connect(port=7432) as conn:
        conn.execute("SELECT * FROM all_cameras "
                     "WHERE contains_object(komondor) LIMIT 5")

The process serves until interrupted; Ctrl-C shuts down gracefully
(in-flight queries drain before the port is released).
"""

from __future__ import annotations

import argparse
import threading

from repro.server.server import VisualDatabaseServer


def build_demo_database(seed: int = 0, n_images: int = 60,
                        image_size: int = 16):
    """A self-contained two-camera database with one trained predicate."""
    import numpy as np

    from repro.core.optimizer import TahomaConfig
    from repro.core.spec import ArchitectureSpec
    from repro.core.trainer import TrainingConfig
    from repro.data.categories import get_category
    from repro.data.corpus import build_predicate_splits, generate_corpus
    from repro.db import connect
    from repro.transforms.spec import TransformSpec

    category = get_category("komondor")
    rng = np.random.default_rng(seed)
    corpora = {name: generate_corpus((category,), n_images=n_images,
                                     image_size=image_size,
                                     rng=np.random.default_rng(seed + shift),
                                     positive_rate=0.5)
               for shift, name in enumerate(("cam_north", "cam_south"), 1)}
    database = connect(corpora, calibrate_target_fps=None)
    splits = build_predicate_splits(category, n_train=48, n_config=32,
                                    n_eval=32, image_size=image_size, rng=rng)
    config = TahomaConfig(
        architectures=(ArchitectureSpec(1, 4, 8), ArchitectureSpec(2, 4, 8)),
        transforms=(TransformSpec(8, "rgb"), TransformSpec(16, "rgb")),
        precision_targets=(0.9, 0.95),
        max_depth=2,
        training=TrainingConfig(epochs=2, batch_size=16, augment=True))
    database.register_predicate(
        "komondor", splits, config=config,
        reference_params={"epochs": 4, "base_width": 8, "n_stages": 2,
                          "blocks_per_stage": 1})
    return database


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a VisualDatabase over the NDJSON wire protocol.")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--load", metavar="PATH",
                        help="serve a database saved with VisualDatabase.save")
    source.add_argument("--demo", action="store_true",
                        help="serve a synthesized two-camera demo database")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7432)
    parser.add_argument("--workers", type=int, default=4,
                        help="query worker threads (default: 4)")
    parser.add_argument("--queue", type=int, default=16,
                        help="admission queue depth (default: 16)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="default per-query timeout in seconds")
    parser.add_argument("--scenario", default=None,
                        help="deployment scenario (archive/ongoing/camera)")
    args = parser.parse_args(argv)

    if args.demo:
        print("building demo database (two cameras, one trained predicate)…",
              flush=True)
        database = build_demo_database()
    else:
        from repro.db import VisualDatabase

        database = VisualDatabase.load(args.load)
    if args.scenario:
        database.use_scenario(args.scenario)

    server = VisualDatabaseServer(
        database, args.host, args.port, max_workers=args.workers,
        max_queue=args.queue, default_timeout=args.timeout,
        close_database=True).start()
    host, port = server.address
    print(f"serving {database!r}", flush=True)
    print(f"listening on {host}:{port} — connect with "
          f"repro.server.connect(host={host!r}, port={port})", flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight queries)…", flush=True)
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
