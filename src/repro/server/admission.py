"""Admission control: a bounded query queue feeding a worker pool.

The serving layer's load story: every query a session accepts is *submitted*
here rather than run on the connection thread.  The queue is bounded — when
``max_queue`` queries are already waiting, a new submission raises
:class:`~repro.server.protocol.BackpressureError` *immediately* (never
blocks), so an overloaded server answers with a structured rejection the
client can back off on instead of hanging the connection.  ``max_workers``
threads drain the queue; per-shard executor locks make it safe for several
workers to race queries, ingest and retention on one database.

Per-query timeouts are cooperative: :meth:`AdmissionController.cancel_for`
builds the cancellation hook a worker passes down to
:meth:`~repro.db.database.VisualDatabase.execute` — it raises
:class:`~repro.query.ast.QueryTimeoutError` once the deadline passes, which
the executor observes at chunk boundaries.  A timed-out query therefore
aborts between chunks (bounded overshoot: one chunk), frees its worker, and
the session that submitted it stays usable.

Shutdown drains: :meth:`shutdown` first flips the controller into a
rejecting state (submissions get a backpressure error naming the shutdown),
then waits for queued and in-flight queries to finish before returning —
the server's graceful-stop path.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from time import monotonic
from typing import Callable

from repro.locking import make_lock
from repro.query.ast import QueryTimeoutError
from repro.server.protocol import BackpressureError
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["AdmissionController"]

_SENTINEL = object()


class AdmissionController:
    """Bounded admission queue + worker pool for one server.

    Parameters
    ----------
    max_workers:
        Worker threads executing admitted queries concurrently.
    max_queue:
        Queries allowed to *wait* beyond the ones in flight; a submission
        finding the queue full is rejected immediately with
        :class:`~repro.server.protocol.BackpressureError`.
    name:
        Thread-name prefix (diagnostics).
    metrics:
        The registry the lifetime counters (``repro_admission_queries_total``
        by event) and the queue-depth gauge live on; a private registry is
        created when omitted.
    """

    def __init__(self, max_workers: int = 4, max_queue: int = 16,
                 name: str = "repro-server",
                 metrics: MetricsRegistry | None = None) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.max_workers = max_workers
        self.max_queue = max_queue
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._lock = make_lock("admission")
        self._closing = False  # guarded by: self._lock
        self._in_flight = 0  # guarded by: self._lock
        self._events = self.metrics.counter("repro_admission_queries_total")
        self.metrics.gauge("repro_admission_queue_depth").set_function(
            self._queue.qsize)
        self._workers = [
            threading.Thread(target=self._work, name=f"{name}-worker-{i}",
                             daemon=True)
            for i in range(max_workers)]
        for worker in self._workers:
            worker.start()

    # -- submission -----------------------------------------------------------
    def submit(self, fn: Callable[[], object]) -> Future:
        """Admit one query; returns the Future its worker will resolve.

        Raises :class:`~repro.server.protocol.BackpressureError` without
        blocking when the queue is full or the controller is shutting down.
        """
        with self._lock:
            if self._closing:
                raise BackpressureError(
                    "server is shutting down; query rejected",
                    queue_depth=self._queue.qsize(),
                    max_queue=self.max_queue)
        future: Future = Future()
        try:
            self._queue.put_nowait((fn, future))
        except queue.Full:
            self._events.inc(event="rejected")
            raise BackpressureError(
                f"admission queue full ({self.max_queue} queries waiting); "
                "retry after a backoff",
                queue_depth=self.max_queue,
                max_queue=self.max_queue) from None
        self._events.inc(event="submitted")
        return future

    def cancel_for(self, timeout_s: float | None,
                   started: float | None = None) -> Callable[[], None] | None:
        """The chunk-boundary cancellation hook for one query's deadline.

        ``None`` timeout means no hook (the query runs to completion).  The
        deadline clock starts at submission (``started``, default now), so
        time spent *waiting in the queue* counts against the budget — an
        overloaded server times out stale work instead of running it.
        """
        if timeout_s is None:
            return None
        deadline = (started if started is not None else monotonic()) \
            + timeout_s

        def cancel() -> None:
            if monotonic() > deadline:
                raise QueryTimeoutError(
                    f"query exceeded its {timeout_s:g}s timeout and was "
                    "aborted at a chunk boundary")

        return cancel

    # -- workers --------------------------------------------------------------
    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            fn, future = item
            if not future.set_running_or_notify_cancel():
                self._queue.task_done()
                continue
            with self._lock:
                self._in_flight += 1
            try:
                result = fn()
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiter
                future.set_exception(exc)
                with self._lock:
                    self._in_flight -= 1
                self._events.inc(event="failed")
            else:
                future.set_result(result)
                with self._lock:
                    self._in_flight -= 1
                self._events.inc(event="completed")
            finally:
                self._queue.task_done()

    # -- lifecycle ------------------------------------------------------------
    def shutdown(self, drain: bool = True) -> None:
        """Stop admitting queries; with ``drain``, wait for in-flight work.

        New submissions are rejected from the moment this is called.  With
        ``drain=True`` (the graceful path) every already-admitted query
        finishes — its session gets a real answer — before the workers
        exit; ``drain=False`` abandons the queue (queued futures resolve
        with a backpressure error so no waiter hangs forever).
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
        if not drain:
            while True:
                try:
                    _, future = self._queue.get_nowait()
                except queue.Empty:
                    break
                except (TypeError, ValueError):  # pragma: no cover - sentinel
                    continue
                future.set_exception(BackpressureError(
                    "server shut down before the query ran"))
                self._queue.task_done()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()

    @property
    def closing(self) -> bool:
        with self._lock:
            return self._closing

    def stats(self) -> dict:
        """Queue/worker occupancy and lifetime counters."""
        with self._lock:
            in_flight = self._in_flight
            closing = self._closing
        return {"max_workers": self.max_workers,
                "max_queue": self.max_queue,
                "queue_depth": self._queue.qsize(),
                "in_flight": in_flight,
                "submitted": int(self._events.value(event="submitted")),
                "rejected": int(self._events.value(event="rejected")),
                "completed": int(self._events.value(event="completed")),
                "failed": int(self._events.value(event="failed")),
                "closing": closing}
