"""The matching client: ``repro.server.connect()`` and remote cursors.

A thin, dependency-free driver for the NDJSON protocol.  One
:class:`Connection` holds one socket/session; :meth:`Connection.execute`
returns a :class:`RemoteCursor` that pages rows with server-side
``fetch`` — iteration streams batches, the query never re-runs.  Server
errors come back as the exceptions the server raised where a local
counterpart exists (:class:`~repro.query.ast.SqlParseError` with its
``offset``/``token``, :class:`~repro.query.ast.QueryTimeoutError`,
:class:`~repro.server.protocol.BackpressureError`, ...); anything else
surfaces as :class:`~repro.server.protocol.ServerError` carrying the raw
payload.

Requests on one connection are serialized under a lock — a
:class:`Connection` is safe to share between threads, though each thread
opening its own connection (its own session and cursors) is the natural
shape.
"""

from __future__ import annotations

import socket
import threading

from repro.query.ast import QueryError, QueryTimeoutError, SqlParseError
from repro.server.protocol import (MAX_LINE_BYTES, BackpressureError,
                                   ProtocolError, ServerError, decode, encode)
from repro.server.session import DEFAULT_FETCH_SIZE

__all__ = ["connect", "Connection", "RemoteCursor"]


def _rebuild_error(payload: dict) -> Exception:
    """The server's error payload as the closest local exception."""
    error_type = payload.get("type")
    message = payload.get("message", "server error")
    if error_type == "SqlParseError":
        return SqlParseError(message, offset=payload.get("offset"),
                             token=payload.get("token"))
    if error_type == "QueryTimeoutError":
        return QueryTimeoutError(message)
    if error_type == "QueryError":
        return QueryError(message)
    if error_type == "BackpressureError":
        return BackpressureError(message,
                                 queue_depth=payload.get("queue_depth"),
                                 max_queue=payload.get("max_queue"))
    if error_type == "ProtocolError":
        return ProtocolError(message)
    return ServerError(f"{error_type}: {message}" if error_type else message,
                       payload=payload)


def connect(host: str = "127.0.0.1", port: int = 7432, *,
            timeout: float | None = None) -> "Connection":
    """Open a :class:`Connection` to a running server.

    ``timeout`` is the *socket* timeout (connect and per-response receive) —
    per-query execution deadlines are the server's ``timeout`` request key
    (:meth:`Connection.execute`'s ``timeout=``).
    """
    return Connection(host, port, timeout=timeout)


class Connection:
    """One session with a :class:`~repro.server.server.VisualDatabaseServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7432, *,
                 timeout: float | None = None) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._next_id = 1
        self.closed = False

    # -- wire ------------------------------------------------------------------
    def _call(self, cmd: str, **params) -> dict:
        """One request-response round trip, returning the ``result`` object."""
        request = {"cmd": cmd}
        request.update((key, value) for key, value in params.items()
                       if value is not None)
        with self._lock:
            if self.closed:
                raise RuntimeError("connection is closed")
            request["id"] = self._next_id
            self._next_id += 1
            self._file.write(encode(request))
            self._file.flush()
            line = self._file.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode(line)
        if response.get("ok"):
            return response.get("result", {})
        raise _rebuild_error(response.get("error") or {})

    # -- commands --------------------------------------------------------------
    def execute(self, sql: str, *, timeout: float | None = None,
                constraints: dict | None = None,
                tables: list[str] | None = None) -> "RemoteCursor | dict":
        """Run one query server side, returning its :class:`RemoteCursor`.

        ``timeout`` (seconds) bounds the query's execution — past it the
        server aborts at a chunk boundary and this raises
        :class:`~repro.query.ast.QueryTimeoutError`; the session stays
        usable.  ``constraints`` takes ``{"max_accuracy_loss", ...}``;
        ``tables`` restricts an ``all_cameras`` fan-out to named shards.

        An ``EXPLAIN ANALYZE`` query has no rows to page: the annotated-plan
        report (see
        :meth:`~repro.db.database.VisualDatabase.explain_analyze`) comes
        back whole as a plain dict instead of a cursor.
        """
        result = self._call("execute", sql=sql, timeout=timeout,
                            constraints=constraints, tables=tables)
        if "explain_analyze" in result:
            return result["explain_analyze"]
        return RemoteCursor(self, result)

    def fetch(self, cursor: int, n: int = DEFAULT_FETCH_SIZE) -> dict:
        """Raw ``fetch``: ``{"rows": [...], "remaining": int}``."""
        return self._call("fetch", cursor=cursor, n=n)

    def close_cursor(self, cursor: int) -> bool:
        return bool(self._call("close_cursor",
                               cursor=cursor).get("closed"))

    def explain(self, sql: str, *, constraints: dict | None = None,
                tables: list[str] | None = None) -> dict:
        """The serialized plan: ``{"plan": ...}`` or ``{"plans": {...}}``."""
        return self._call("explain", sql=sql, constraints=constraints,
                          tables=tables)

    def stats(self) -> dict:
        return self._call("stats")

    def metrics(self, format: str | None = None) -> dict | str:
        """The server's telemetry registry snapshot.

        ``format="json"`` (the default) returns the structured snapshot
        (``{metric: {"kind", "help", "series": [...]}}``);
        ``format="text"`` returns the Prometheus-style text exposition as
        one string.
        """
        result = self._call("metrics", format=format)
        if "exposition" in result:
            return result["exposition"]
        return result.get("metrics", {})

    def tables(self) -> list[str]:
        return list(self._call("tables").get("tables", []))

    def ping(self) -> bool:
        return bool(self._call("ping").get("pong"))

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Say ``quit`` (best effort) and close the socket (idempotent)."""
        if self.closed:
            return
        try:
            self._call("quit")
        except (OSError, ValueError, RuntimeError):
            pass
        self.closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        peer = "closed" if self.closed else "%s:%d" % self._sock.getpeername()
        return f"Connection({peer})"


class RemoteCursor:
    """A server-side cursor: rows page over the wire, the query never re-runs.

    Mirrors the :class:`~repro.db.results.ResultSet` cursor API —
    ``fetchone`` / ``fetchmany`` / ``fetchall``, iteration in ``batch_size``
    pages, ``len()`` — against a result set parked in the server session.
    :meth:`close` frees the server-side slot (sessions cap open cursors).
    """

    def __init__(self, connection: Connection, result: dict,
                 batch_size: int = DEFAULT_FETCH_SIZE) -> None:
        self._connection = connection
        self.cursor_id: int = result["cursor"]
        self.rowcount: int = result["rowcount"]
        self.columns: list[str] = list(result["columns"])
        self.remaining: int = result["remaining"]
        self.batch_size = batch_size
        self.closed = False

    def __len__(self) -> int:
        return self.rowcount

    def fetchmany(self, size: int = DEFAULT_FETCH_SIZE) -> list[dict]:
        """The next ``size`` rows (shorter at the end, ``[]`` when done)."""
        if self.closed or (self.remaining == 0 and size > 0):
            return []
        result = self._connection.fetch(self.cursor_id, n=size)
        self.remaining = result["remaining"]
        return result["rows"]

    def fetchone(self) -> dict | None:
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchall(self) -> list[dict]:
        rows: list[dict] = []
        while self.remaining and not self.closed:
            rows.extend(self.fetchmany(self.remaining))
        return rows

    def __iter__(self):
        while True:
            rows = self.fetchmany(self.batch_size)
            if not rows:
                return
            yield from rows

    def close(self) -> None:
        """Free the server-side cursor (idempotent, best effort)."""
        if self.closed:
            return
        self.closed = True
        if not self._connection.closed:
            try:
                self._connection.close_cursor(self.cursor_id)
            except (OSError, ValueError, RuntimeError):
                pass

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RemoteCursor(id={self.cursor_id}, rows={self.rowcount}, "
                f"remaining={self.remaining})")
