"""The plan cache: physical plans keyed by normalized query shape.

Dashboards re-issue the same handful of queries, often with nothing but a
literal changed (a fresh timestamp bound, a different location).  Planning
is not free — each ``contains_object`` predicate costs a cascade selection
(Pareto analysis over the predicate's model pool) — so
:class:`~repro.db.database.VisualDatabase` can route plan resolution through
this cache (``connect(..., plan_cache=True)`` / ``enable_plan_cache()``;
the network server enables it for the database it serves).

The key is the query's *shape*: its token stream with every literal
(string/number) replaced by ``?``, plus the effective constraints and the
active scenario.  Three outcomes per lookup, all counted:

* **hit** — same shape, same literals: the cached plan is returned with no
  parsing and no planning at all;
* **rebind** — same shape, different literals: the query is re-parsed
  (cheap, recursive descent) and re-planned with the cached plan's cascade
  selections seeded (:meth:`~repro.db.planner.QueryPlanner.plan`'s
  ``selections=``), skipping the expensive selection step;
* **miss** — unknown shape: planned from scratch, then cached.

The cache is *invalidated* — cleared — on scenario switches, attach /
detach / replace and retention changes (the database hooks call
:meth:`PlanCache.invalidate`).  Ingest does not invalidate: a cached plan
stays *correct* under ingest, its estimated selectivities merely go stale,
which can only affect predicate ordering.  Entries are LRU-evicted beyond
``capacity``.  All operations are thread-safe — server worker threads share
one cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.locking import make_lock
from repro.query.ast import tokenize
from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.selector import UserConstraints
    from repro.db.planner import QueryPlan

__all__ = ["PlanCache", "CacheEntry", "normalize"]


def normalize(sql: str) -> tuple[str, tuple]:
    """One query's (shape, literals): literals stripped from the tokens.

    The shape is the token stream with every STRING/NUMBER token replaced
    by ``?`` — whitespace and literal spelling differences disappear, while
    structure, identifiers and keywords (case-sensitively, so an exact
    dashboard repeat always matches itself) survive.  The literals come
    back as a tuple of Python values in token order, used to distinguish an
    exact repeat (cache *hit*) from a shape repeat (*rebind*).

    Raises :class:`~repro.query.ast.SqlParseError` on untokenizable text,
    exactly as parsing would.
    """
    shape_parts: list[str] = []
    literals: list = []
    for token in tokenize(sql):
        if token.type in ("STRING", "NUMBER"):
            shape_parts.append("?")
            literals.append(token.value)
        else:
            shape_parts.append(token.text)
    return " ".join(shape_parts), tuple(literals)


@dataclass
class CacheEntry:
    """One cached shape: the literals it was planned for and its plan(s).

    ``plans`` is a single :class:`~repro.db.planner.QueryPlan` for a
    single-table query or a ``{table: plan}`` mapping for a fan-out.
    """

    literals: tuple
    plans: "QueryPlan | dict[str, QueryPlan]"


class PlanCache:
    """A bounded, thread-safe, LRU plan cache with hit/miss/rebind counters.

    The counters live on a :class:`~repro.telemetry.metrics.MetricsRegistry`
    (``repro_plan_cache_*`` metrics) — the served database injects its own
    registry so the ``stats`` and ``metrics`` wire views agree by
    construction; a standalone cache gets a private one.
    """

    def __init__(self, capacity: int = 128,
                 metrics: MetricsRegistry | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = make_lock("plan-cache")
        self._entries: OrderedDict[Any, CacheEntry] = OrderedDict()  # guarded by: self._lock
        self._lookups = self.metrics.counter("repro_plan_cache_lookups_total")
        self._invalidations = self.metrics.counter(
            "repro_plan_cache_invalidations_total")
        self._evictions = self.metrics.counter(
            "repro_plan_cache_evictions_total")

    @staticmethod
    def key_for(sql: str, constraints: "UserConstraints",
                scenario: str) -> tuple[Any, tuple]:
        """The cache key and literal bindings for one query.

        Constraints and scenario are part of the key — the same SQL under a
        tighter accuracy budget or another deployment scenario selects
        different cascades.  (Scenario switches *also* clear the cache; the
        key keeps entries correct even if a caller bypasses the hooks.)
        """
        shape, literals = normalize(sql)
        key = (shape, constraints.max_accuracy_loss,
               constraints.min_throughput, scenario)
        return key, literals

    def lookup(self, key, literals: tuple
               ) -> tuple[str, CacheEntry | None]:
        """``("hit"|"rebind"|"miss", entry)`` for one key, counting it."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                outcome = "miss"
            else:
                self._entries.move_to_end(key)
                outcome = ("hit" if entry.literals == literals
                           else "rebind")
        self._lookups.inc(outcome=outcome)
        return outcome, entry

    def store(self, key, literals: tuple, plans) -> None:
        """Install (or refresh) one shape's plan, evicting LRU beyond capacity."""
        evicted = 0
        with self._lock:
            self._entries[key] = CacheEntry(literals=literals, plans=plans)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            self._evictions.inc(evicted)

    def invalidate(self) -> None:
        """Drop every cached plan (scenario/catalog/retention changed)."""
        with self._lock:
            self._entries.clear()
        self._invalidations.inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _count(self, outcome: str) -> int:
        return int(self._lookups.value(outcome=outcome))

    def stats(self) -> dict:
        """Counters + occupancy, as surfaced by the server's ``stats``."""
        hits, rebinds, misses = (self._count("hit"), self._count("rebind"),
                                 self._count("miss"))
        lookups = hits + rebinds + misses
        return {"hits": hits,
                "rebinds": rebinds,
                "misses": misses,
                "invalidations": int(self._invalidations.value()),
                "evictions": int(self._evictions.value()),
                "entries": len(self),
                "capacity": self.capacity,
                "hit_rate": ((hits + rebinds) / lookups if lookups else 0.0)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PlanCache(entries={len(self)}, "
                f"hits={self._count('hit')}, "
                f"rebinds={self._count('rebind')}, "
                f"misses={self._count('miss')})")
