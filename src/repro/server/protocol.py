"""Wire-protocol framing and serializable errors (NDJSON).

One message per line, each line one JSON object — see the grammar in the
:mod:`repro.server` package docstring.  This module owns the mechanical
half: encoding/decoding single lines, building the ``{"ok": ...}`` response
envelopes, and turning exceptions into machine-readable error payloads (the
``.to_dict()`` protocol of :class:`~repro.query.ast.SqlParseError` and
:class:`~repro.query.ast.QueryError`, with a generic fallback for everything
else).

Float columns may contain NaN (the typed fill for absent fan-out columns);
encoding keeps Python's ``NaN`` spelling, which the matching client parses
back — a non-Python client should treat bare ``NaN`` tokens as null.
"""

from __future__ import annotations

import json

__all__ = ["PROTOCOL_VERSION", "MAX_LINE_BYTES",
           "ProtocolError", "ServerError", "BackpressureError",
           "encode", "decode", "ok_response", "error_response",
           "error_payload"]

#: Bumped when the wire protocol changes incompatibly.
PROTOCOL_VERSION = 1

#: Upper bound on one encoded line; a request beyond this is a protocol
#: error (keeps a misbehaving client from ballooning server memory).
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed wire message: bad JSON, not an object, missing keys."""

    def to_dict(self) -> dict:
        return {"type": "ProtocolError", "message": str(self)}


class ServerError(RuntimeError):
    """Client-side stand-in for a server error with no richer local type."""

    def __init__(self, message: str, payload: dict | None = None) -> None:
        super().__init__(message)
        self.payload = dict(payload or {})


class BackpressureError(RuntimeError):
    """The admission queue is full (or draining): query rejected, not run.

    Raised *immediately* at submission — a full server never hangs new
    queries.  ``queue_depth``/``max_queue`` tell the client how loaded the
    server was; resubmitting after a backoff is the expected reaction.
    """

    def __init__(self, message: str, *, queue_depth: int | None = None,
                 max_queue: int | None = None) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.max_queue = max_queue

    def to_dict(self) -> dict:
        return {"type": "BackpressureError", "message": str(self),
                "queue_depth": self.queue_depth, "max_queue": self.max_queue}


def encode(message: dict) -> bytes:
    """One message as a single NDJSON line (UTF-8, newline-terminated)."""
    return (json.dumps(message, separators=(",", ":"),
                       ensure_ascii=False) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one received line into a message object.

    Raises :class:`ProtocolError` for anything but a single JSON object —
    the caller answers with the error payload instead of killing the
    connection.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
        line = line.decode("utf-8", errors="replace")
    text = line.strip()
    if not text:
        raise ProtocolError("empty message")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object, got "
                            f"{type(message).__name__}")
    return message


def error_payload(exc: BaseException) -> dict:
    """A machine-readable payload for any exception.

    Exceptions exposing ``to_dict()`` (:class:`~repro.query.ast
    .SqlParseError`, :class:`~repro.query.ast.QueryError` and subclasses,
    :class:`BackpressureError`, :class:`ProtocolError`) serialize
    themselves; anything else falls back to type name + message, so the
    wire never carries a bare ``str(exc)`` without its type.
    """
    to_dict = getattr(exc, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return {"type": type(exc).__name__, "message": str(exc)}


def ok_response(request: dict, result: dict) -> dict:
    """The success envelope, echoing the request's ``id`` when present."""
    response: dict = {"ok": True}
    if "id" in request:
        response["id"] = request["id"]
    response["result"] = result
    return response


def error_response(request: dict, exc: BaseException) -> dict:
    """The failure envelope, echoing the request's ``id`` when present."""
    response: dict = {"ok": False}
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    response["error"] = error_payload(exc)
    return response
