"""The TCP server: one thread per connection, shared admission + plan cache.

:class:`VisualDatabaseServer` wraps one
:class:`~repro.db.database.VisualDatabase` in a ``socketserver``-based
threading TCP server speaking the NDJSON protocol (grammar in the
:mod:`repro.server` package docstring).  Connection threads only parse and
page — every query body runs on the
:class:`~repro.server.admission.AdmissionController` worker pool, so client
count and query concurrency are decoupled and a full queue answers with an
immediate backpressure error.  The served database gets its plan cache
enabled (unless ``plan_cache=False``), so repeated dashboard shapes skip
cascade selection; per-shard executor locks (not the server) provide the
correctness under concurrency.

Shutdown is graceful by default: :meth:`VisualDatabaseServer.close` stops
accepting connections, lets every admitted query finish (their sessions get
real answers), then releases the port.  The context-manager form does the
same::

    with repro.server.serve(db, port=0) as server:
        conn = repro.server.connect(port=server.address[1])
        ...
"""

from __future__ import annotations

import socketserver
import threading

from repro.locking import make_lock
from repro.server.admission import AdmissionController
from repro.server.protocol import (MAX_LINE_BYTES, ProtocolError, decode,
                                   encode, error_response, ok_response)
from repro.server.session import QueryCounters, Session

__all__ = ["VisualDatabaseServer", "serve"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection's read-dispatch-write loop.

    Every request gets exactly one response line, errors included; only
    end-of-stream, an oversized line (framing is lost at that point) or a
    ``quit`` ends the loop.  The session — and its cursors — lives exactly
    as long as the loop.
    """

    def handle(self) -> None:  # pragma: no cover - exercised over sockets
        owner: "VisualDatabaseServer" = self.server.owner
        session = owner._open_session()
        try:
            while True:
                line = self.rfile.readline(MAX_LINE_BYTES + 2)
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    # The rest of the oversized message is still in flight;
                    # framing is unrecoverable, so answer and hang up.
                    self._reply(error_response({}, ProtocolError(
                        f"message exceeds {MAX_LINE_BYTES} bytes")))
                    break
                request: dict = {}
                try:
                    request = decode(line)
                    response = ok_response(request, session.handle(request))
                except BaseException as exc:  # noqa: BLE001 - wire-reported
                    response = error_response(request, exc)
                self._reply(response)
                if session.closed:
                    break
        finally:
            session.close()
            owner._close_session()

    def _reply(self, response: dict) -> None:  # pragma: no cover - socket I/O
        self.wfile.write(encode(response))
        self.wfile.flush()


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    owner: "VisualDatabaseServer"


class VisualDatabaseServer:
    """Serve one :class:`~repro.db.database.VisualDatabase` over TCP.

    Parameters
    ----------
    database:
        The database to serve; shared by every connection (per-shard
        executor locks make concurrent queries, ingest and retention safe).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    max_workers, max_queue:
        Admission control: worker threads running queries, and how many
        queries may wait beyond them before submissions are rejected with a
        backpressure error.
    default_timeout:
        Per-query timeout (seconds) for requests that carry none; ``None``
        lets queries run to completion.
    max_cursors:
        Open-cursor cap per session.
    plan_cache:
        Enable the served database's plan cache (``True``, the default — an
        ``int`` sets its capacity; ``False`` leaves the database as is).
    close_database:
        Also :meth:`~repro.db.database.VisualDatabase.close` the database
        when the server closes (for servers that own their database, like
        ``python -m repro.server``).
    """

    def __init__(self, database, host: str = "127.0.0.1", port: int = 0, *,
                 max_workers: int = 4, max_queue: int = 16,
                 default_timeout: float | None = None,
                 max_cursors: int = 32,
                 plan_cache: bool | int = True,
                 close_database: bool = False) -> None:
        self.database = database
        self.default_timeout = default_timeout
        self.max_cursors = max_cursors
        self._close_database = close_database
        if plan_cache:
            database.enable_plan_cache(
                plan_cache if isinstance(plan_cache, int)
                and not isinstance(plan_cache, bool) else 128)
        registry = getattr(database, "metrics", None)
        self.admission = AdmissionController(max_workers=max_workers,
                                             max_queue=max_queue,
                                             metrics=registry)
        self.counters = QueryCounters(registry)
        self._lock = make_lock("server")
        self._sessions = 0  # guarded by: self._lock
        self._closed = False  # guarded by: self._lock
        self._thread: threading.Thread | None = None  # guarded by: self._lock
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.owner = self

    # -- sessions --------------------------------------------------------------
    def _open_session(self) -> Session:
        with self._lock:
            self._sessions += 1
        return Session(self.database, self.admission,
                       default_timeout=self.default_timeout,
                       max_cursors=self.max_cursors,
                       counters=self.counters,
                       stats_extra=self._stats_extra)

    def _close_session(self) -> None:
        with self._lock:
            self._sessions -= 1

    def _stats_extra(self) -> dict:
        with self._lock:
            return {"sessions": self._sessions,
                    "address": list(self.address)}

    # -- lifecycle -------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — the real port when bound with 0."""
        return self._tcp.server_address[:2]

    def start(self) -> "VisualDatabaseServer":
        """Accept connections on a daemon thread; returns ``self``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._tcp.serve_forever,
                    name=f"repro-server-{self.address[1]}", daemon=True)
                self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Graceful shutdown (idempotent).

        Stops accepting connections, then — with ``drain`` — waits for
        every admitted query to finish (connection threads deliver those
        answers before their sockets go away), and finally releases the
        port.  ``drain=False`` abandons queued queries instead (their
        sessions receive backpressure errors).
        """
        # Flip the closed flag atomically so a concurrent close() (or a
        # start() racing it) sees a consistent state; release the lock
        # before the shutdown calls below, which join worker threads.
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is not None:
            self._tcp.shutdown()
        self.admission.shutdown(drain=drain)
        self._tcp.server_close()
        if self._close_database:
            self.database.close()

    def __enter__(self) -> "VisualDatabaseServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        """The ``stats`` command's view, server side (for tests/benchmarks)."""
        cache = self.database.plan_cache
        with self._lock:
            sessions = self._sessions
        return {"sessions": sessions,
                "address": list(self.address),
                "admission": self.admission.stats(),
                "plan_cache": cache.stats() if cache is not None else None,
                "queries": self.counters.snapshot()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        host, port = self.address
        return (f"VisualDatabaseServer({host}:{port}, "
                f"sessions={self._sessions}, closed={self._closed})")


def serve(database, host: str = "127.0.0.1", port: int = 0,
          **kwargs) -> VisualDatabaseServer:
    """Build and start a :class:`VisualDatabaseServer` (keywords forwarded)."""
    return VisualDatabaseServer(database, host, port, **kwargs).start()
