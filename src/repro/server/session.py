"""Per-connection sessions: command dispatch and server-side cursors.

One :class:`Session` lives for the duration of one client connection.  It
owns the connection's *cursors*: ``execute`` runs the query (through the
server's admission controller) and parks the resulting
:class:`~repro.db.results.ResultSet` under a session-local cursor id;
``fetch`` then pages rows off it with
:meth:`~repro.db.results.ResultSet.fetchmany` — the query is never re-run,
and each ``fetch`` reports how many rows remain so clients stop paging
without a final empty round trip.  Cursors are bounded per session
(``max_cursors``); ``close_cursor`` (or cursor exhaustion handled client
side) frees them, and closing the session frees them all.

Sessions survive errors: a failed command — parse error, timeout,
backpressure rejection — produces an error payload for that request and
nothing else; the connection and its other cursors stay usable.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.selector import UserConstraints
from repro.query.ast import QueryTimeoutError
from repro.server.protocol import (PROTOCOL_VERSION, BackpressureError,
                                   ProtocolError)
from repro.telemetry.export import render_prometheus
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["Session", "QueryCounters"]

#: Default page size for ``fetch`` requests that do not name one.
DEFAULT_FETCH_SIZE = 64

_CONSTRAINT_KEYS = ("max_accuracy_loss", "min_throughput")


class QueryCounters:
    """Server-wide query outcome counters (shared across sessions).

    A thin view over the ``repro_queries_total`` registry counter, so the
    ``stats`` command's ``queries`` object and the ``metrics`` exposition
    are the same numbers by construction."""

    OUTCOMES = ("completed", "failed", "timeouts", "rejected")

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._outcomes = self.metrics.counter("repro_queries_total")

    def record(self, outcome: str) -> None:
        if outcome not in self.OUTCOMES:
            raise ValueError(f"unknown query outcome {outcome!r}; "
                             f"known: {list(self.OUTCOMES)}")
        self._outcomes.inc(outcome=outcome)

    def snapshot(self) -> dict:
        return {outcome: int(self._outcomes.value(outcome=outcome))
                for outcome in self.OUTCOMES}


class Session:
    """One client's command dispatcher and cursor table.

    Parameters
    ----------
    database:
        The shared :class:`~repro.db.database.VisualDatabase` being served.
    admission:
        The server's :class:`~repro.server.admission.AdmissionController`;
        every ``execute`` is submitted through it.
    default_timeout:
        Per-query timeout (seconds) applied when a request carries none;
        ``None`` lets queries run to completion.
    max_cursors:
        Open-cursor cap per session — an ``execute`` beyond it is rejected
        until the client closes one.
    counters:
        Shared :class:`QueryCounters` (the server's); a private one is made
        when absent so sessions work standalone in tests.
    stats_extra:
        Optional callable contributing server-level keys (``sessions``,
        ``address``) to the ``stats`` command's result.
    """

    def __init__(self, database, admission, *,
                 default_timeout: float | None = None,
                 max_cursors: int = 32,
                 counters: QueryCounters | None = None,
                 stats_extra: Callable[[], dict] | None = None) -> None:
        self.database = database
        self.admission = admission
        self.default_timeout = default_timeout
        self.max_cursors = max_cursors
        registry = getattr(database, "metrics", None)
        self.metrics = (registry if isinstance(registry, MetricsRegistry)
                        else MetricsRegistry())
        self.counters = (counters if counters is not None
                         else QueryCounters(self.metrics))
        self._request_seconds = self.metrics.histogram(
            "repro_server_request_seconds")
        self._stats_extra = stats_extra
        self._cursors: dict[int, object] = {}
        self._next_cursor = 1
        self.closed = False

    # -- dispatch --------------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """Run one decoded request, returning its ``result`` object.

        Raises on any failure — the connection handler turns the exception
        into the error envelope; the session itself stays usable.
        """
        cmd = request.get("cmd")
        if not isinstance(cmd, str):
            raise ProtocolError('request needs a string "cmd" key')
        try:
            handler = self._COMMANDS[cmd]
        except KeyError:
            raise ProtocolError(
                f"unknown command {cmd!r}; commands: "
                f"{sorted(self._COMMANDS)}") from None
        started = time.perf_counter()
        try:
            return handler(self, request)
        finally:
            self._request_seconds.observe(time.perf_counter() - started,
                                          cmd=cmd)

    # -- commands --------------------------------------------------------------
    def _cmd_execute(self, request: dict) -> dict:
        sql = self._require_str(request, "sql")
        constraints = self._constraints_from(request.get("constraints"))
        tables = self._tables_from(request.get("tables"))
        timeout = request.get("timeout", self.default_timeout)
        if timeout is not None and (not isinstance(timeout, (int, float))
                                    or isinstance(timeout, bool)
                                    or timeout <= 0):
            raise ProtocolError(f'"timeout" must be positive seconds, '
                                f"got {timeout!r}")
        if len(self._cursors) >= self.max_cursors:
            raise ProtocolError(
                f"session has {self.max_cursors} open cursors; "
                "close_cursor one before executing again")
        # The deadline clock starts now — queueing time counts, so an
        # overloaded server aborts stale queries instead of running them.
        cancel = self.admission.cancel_for(timeout)
        try:
            future = self.admission.submit(
                lambda: self.database.execute(sql, constraints,
                                              tables=tables, cancel=cancel))
            result_set = future.result()
        except BackpressureError:
            self.counters.record("rejected")
            raise
        except QueryTimeoutError:
            self.counters.record("timeouts")
            raise
        except BaseException:
            self.counters.record("failed")
            raise
        self.counters.record("completed")
        if isinstance(result_set, dict):
            # EXPLAIN ANALYZE: the result is a JSON report, not row data —
            # return it whole, no cursor to page.
            return {"explain_analyze": result_set}
        cursor_id = self._next_cursor
        self._next_cursor += 1
        self._cursors[cursor_id] = result_set
        return {"cursor": cursor_id,
                "rowcount": len(result_set),
                "columns": result_set.columns,
                "remaining": result_set.remaining}

    def _cmd_fetch(self, request: dict) -> dict:
        result_set = self._cursor_for(request)
        n = request.get("n", DEFAULT_FETCH_SIZE)
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise ProtocolError(f'"n" must be a non-negative integer, '
                                f"got {n!r}")
        rows = result_set.fetchmany(n)
        return {"rows": rows, "remaining": result_set.remaining}

    def _cmd_close_cursor(self, request: dict) -> dict:
        cursor = request.get("cursor")
        return {"closed": self._cursors.pop(cursor, None) is not None}

    def _cmd_explain(self, request: dict) -> dict:
        sql = self._require_str(request, "sql")
        constraints = self._constraints_from(request.get("constraints"))
        tables = self._tables_from(request.get("tables"))
        plans = self.database.explain(sql, constraints, tables=tables)
        if isinstance(plans, dict):
            return {"plans": {table: plan.to_dict()
                              for table, plan in plans.items()}}
        return {"plan": plans.to_dict()}

    def _cmd_stats(self, request: dict) -> dict:
        database = self.database
        cache = database.plan_cache
        result = {"protocol": PROTOCOL_VERSION,
                  "scenario": database.scenario.name,
                  "tables": database.tables(),
                  "predicates": database.predicates(),
                  "open_cursors": len(self._cursors),
                  "admission": self.admission.stats(),
                  "plan_cache": cache.stats() if cache is not None else None,
                  "queries": self.counters.snapshot(),
                  # Storage-engine health per shard: segment fragmentation,
                  # WAL depth, checkpoint count (see VisualDatabase.storage_stats).
                  "storage": database.storage_stats()}
        if self._stats_extra is not None:
            result.update(self._stats_extra())
        return result

    def _cmd_metrics(self, request: dict) -> dict:
        fmt = request.get("format", "json")
        if fmt not in ("json", "text"):
            raise ProtocolError(f'"format" must be "json" or "text", '
                                f"got {fmt!r}")
        snapshot = self.metrics.snapshot()
        if fmt == "text":
            return {"exposition": render_prometheus(snapshot)}
        return {"metrics": snapshot}

    def _cmd_tables(self, request: dict) -> dict:
        return {"tables": self.database.tables()}

    def _cmd_ping(self, request: dict) -> dict:
        return {"pong": True}

    def _cmd_quit(self, request: dict) -> dict:
        self.close()
        return {"bye": True}

    _COMMANDS = {"execute": _cmd_execute,
                 "fetch": _cmd_fetch,
                 "close_cursor": _cmd_close_cursor,
                 "explain": _cmd_explain,
                 "stats": _cmd_stats,
                 "metrics": _cmd_metrics,
                 "tables": _cmd_tables,
                 "ping": _cmd_ping,
                 "quit": _cmd_quit}

    # -- request validation ----------------------------------------------------
    @staticmethod
    def _require_str(request: dict, key: str) -> str:
        value = request.get(key)
        if not isinstance(value, str) or not value.strip():
            raise ProtocolError(f'request needs a non-empty string '
                                f'"{key}" key')
        return value

    def _cursor_for(self, request: dict):
        cursor = request.get("cursor")
        try:
            return self._cursors[cursor]
        except (KeyError, TypeError):
            raise ProtocolError(
                f"unknown cursor {cursor!r}; "
                f"open: {sorted(self._cursors)}") from None

    def _constraints_from(self, spec) -> UserConstraints | None:
        """The request's ``constraints`` object as :class:`UserConstraints`.

        Unnamed fields inherit the database's defaults, so a client tuning
        only ``max_accuracy_loss`` keeps the configured throughput floor.
        """
        if spec is None:
            return None
        if not isinstance(spec, dict):
            raise ProtocolError('"constraints" must be an object with '
                                f"keys {list(_CONSTRAINT_KEYS)}")
        unknown = sorted(set(spec) - set(_CONSTRAINT_KEYS))
        if unknown:
            raise ProtocolError(f"unknown constraint keys {unknown}; "
                                f"known: {list(_CONSTRAINT_KEYS)}")
        base = self.database.default_constraints
        return UserConstraints(
            max_accuracy_loss=spec.get("max_accuracy_loss",
                                       base.max_accuracy_loss),
            min_throughput=spec.get("min_throughput", base.min_throughput))

    @staticmethod
    def _tables_from(spec) -> list[str] | None:
        if spec is None:
            return None
        if not isinstance(spec, list) or not all(
                isinstance(name, str) for name in spec):
            raise ProtocolError('"tables" must be a list of table names, '
                                f"got {spec!r}")
        return spec

    # -- lifecycle -------------------------------------------------------------
    @property
    def open_cursors(self) -> list[int]:
        """Open cursor ids, in creation order."""
        return sorted(self._cursors)

    def close(self) -> None:
        """Drop every cursor (idempotent); the session stops serving."""
        self._cursors.clear()
        self.closed = True
