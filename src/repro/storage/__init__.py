"""Simulated storage substrate.

The paper's deployment scenarios differ in *where image bytes live* before a
query runs (SSD archive, pre-resized representations on SSD, camera memory).
This package models those placements:

* :mod:`repro.storage.encoding` — how many bytes each physical representation
  occupies, raw or compressed,
* :mod:`repro.storage.tiers` — storage tiers with bandwidth/latency, and
* :mod:`repro.storage.store` — a representation store that pre-materializes
  resized representations on ingest (the ONGOING scenario).
"""

from repro.storage.encoding import encoded_bytes, raw_bytes, representation_bytes
from repro.storage.store import RepresentationStore
from repro.storage.tiers import (
    CAMERA_LINK,
    HDD,
    MEMORY,
    NETWORK,
    SSD,
    StorageTier,
    get_tier,
)

__all__ = [
    "raw_bytes",
    "encoded_bytes",
    "representation_bytes",
    "StorageTier",
    "MEMORY",
    "SSD",
    "HDD",
    "CAMERA_LINK",
    "NETWORK",
    "get_tier",
    "RepresentationStore",
]
