"""Byte-size accounting for stored image representations."""

from __future__ import annotations

from repro.transforms.spec import TransformSpec

__all__ = ["raw_bytes", "encoded_bytes", "representation_bytes"]

#: Stored images use one byte per channel value (8-bit).
BYTES_PER_VALUE = 1

#: Default compression ratio for an encoded (JPEG-like) full-color image.
DEFAULT_COMPRESSION_RATIO = 0.12


def raw_bytes(height: int, width: int, channels: int) -> int:
    """Bytes of an uncompressed 8-bit image of the given shape."""
    if height <= 0 or width <= 0 or channels <= 0:
        raise ValueError("image dimensions must be positive")
    return int(height * width * channels * BYTES_PER_VALUE)


def encoded_bytes(height: int, width: int, channels: int,
                  compression_ratio: float = DEFAULT_COMPRESSION_RATIO) -> int:
    """Bytes of a lossily encoded image (raw size times the compression ratio)."""
    if not 0 < compression_ratio <= 1:
        raise ValueError("compression_ratio must be in (0, 1]")
    return max(1, int(round(raw_bytes(height, width, channels) * compression_ratio)))


def representation_bytes(spec: TransformSpec, compressed: bool = False,
                         compression_ratio: float = DEFAULT_COMPRESSION_RATIO) -> int:
    """Bytes occupied by one stored image in the representation ``spec``."""
    height, width, channels = spec.shape
    if compressed:
        return encoded_bytes(height, width, channels, compression_ratio)
    return raw_bytes(height, width, channels)
