"""Representation store: pre-materialized input representations.

In the paper's ONGOING scenario, video is transformed into the required input
representations as it is ingested and those representations are stored on SSD,
so only the (much smaller) representation bytes are loaded at query time.
:class:`RepresentationStore` models that behaviour and is also a convenient
cache when evaluating many models that share a representation.
"""

from __future__ import annotations

import numpy as np

from repro.storage.encoding import representation_bytes
from repro.storage.tiers import SSD, StorageTier
from repro.transforms.spec import TransformSpec

__all__ = ["RepresentationStore"]


class RepresentationStore:
    """Holds transformed copies of a corpus, keyed by representation name.

    Parameters
    ----------
    tier:
        The storage tier the representations notionally live on; used to
        answer simulated load-time questions.
    """

    def __init__(self, tier: StorageTier = SSD) -> None:
        self.tier = tier
        self._arrays: dict[str, np.ndarray] = {}
        self._specs: dict[str, TransformSpec] = {}

    # -- ingest ------------------------------------------------------------
    def materialize(self, images: np.ndarray,
                    specs: list[TransformSpec] | tuple[TransformSpec, ...]) -> None:
        """Transform ``images`` into every representation in ``specs`` and keep them."""
        if images.ndim != 4:
            raise ValueError(f"expected NHWC batch, got shape {images.shape}")
        for spec in specs:
            self._arrays[spec.name] = spec.apply_batch(images)
            self._specs[spec.name] = spec

    def add(self, spec: TransformSpec, array: np.ndarray) -> None:
        """Store an already-transformed array under ``spec``."""
        expected = spec.shape
        if array.shape[1:] != expected:
            raise ValueError(
                f"array shape {array.shape[1:]} does not match spec {expected}")
        self._arrays[spec.name] = array
        self._specs[spec.name] = spec

    # -- access --------------------------------------------------------------
    def __contains__(self, spec: TransformSpec) -> bool:
        return spec.name in self._arrays

    def get(self, spec: TransformSpec) -> np.ndarray:
        """The stored representation array for ``spec``."""
        try:
            return self._arrays[spec.name]
        except KeyError:
            raise KeyError(f"representation {spec.name!r} not materialized; "
                           f"available: {sorted(self._arrays)}") from None

    def get_or_transform(self, spec: TransformSpec,
                         source_images: np.ndarray) -> np.ndarray:
        """Return the stored representation, transforming and caching on miss."""
        if spec in self:
            return self.get(spec)
        array = spec.apply_batch(source_images)
        self.add(spec, array)
        return array

    def specs(self) -> list[TransformSpec]:
        """The representation specs currently materialized."""
        return [self._specs[name] for name in sorted(self._specs)]

    # -- accounting -------------------------------------------------------------
    def bytes_stored(self, per_image: bool = False) -> int:
        """Total simulated bytes occupied by all stored representations."""
        total = 0
        for name, array in self._arrays.items():
            spec = self._specs[name]
            count = 1 if per_image else array.shape[0]
            total += representation_bytes(spec) * count
        return int(total)

    def load_time(self, spec: TransformSpec) -> float:
        """Simulated seconds to load one image's representation from the tier."""
        return self.tier.read_time(representation_bytes(spec))

    def __len__(self) -> int:
        return len(self._arrays)
