"""Representation store: pre-materialized input representations.

In the paper's ONGOING scenario, video is transformed into the required input
representations as it is ingested and those representations are stored on SSD,
so only the (much smaller) representation bytes are loaded at query time.
:class:`RepresentationStore` models that behaviour and is also a convenient
cache when evaluating many models that share a representation.

Three pieces make the store safe to keep alive for the lifetime of a growing,
multi-camera database:

* a **registration set** — representations a deployment has committed to
  materializing at ingest time (the ONGOING policy); registration survives
  :meth:`clear` and persistence, while the arrays themselves may come and go,
* an optional **byte budget** with least-recently-used eviction — whenever
  stored bytes exceed the budget the coldest representations are dropped.
  Evicted representations are recomputed on demand by the consumers
  (:meth:`get_or_transform`, the query executor), so a budget bounds memory
  without affecting query results,
* **namespaces** — a multi-table catalog gives each table a :meth:`scoped`
  view of one shared store, so the byte budget is global while arrays, specs
  and registrations stay per-table.  Budget accounting is namespace-aware:
  eviction drains the inserting namespace's own cold entries before touching
  any other namespace, so one hot camera cannot evict every other shard's
  representations.

Internally each entry is a list of row-aligned **chunks** mirroring the
corpus's segment list: :meth:`append_rows` adds a chunk in O(batch) on the
ingest hot path, retention drops whole leading chunks without copying the
survivors, and readers see one consolidated array (the chunk list collapses
on first read, so memory is never held twice).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.locking import make_rlock
from repro.storage.encoding import representation_bytes
from repro.storage.tiers import SSD, StorageTier
from repro.telemetry.metrics import MetricsRegistry
from repro.transforms.spec import TransformSpec

__all__ = ["RepresentationStore"]

#: Internal key type: (namespace, representation name).
_Key = tuple[str, str]


@dataclass
class _StoreState:
    """State shared by every namespaced view of one store.

    ``arrays`` insertion order doubles as recency order across *all*
    namespaces: get()/add() move the touched key to the end, so eviction pops
    from the front.  Each value is a list of row-aligned chunks; readers
    collapse the list to one array in place.
    """

    tier: StorageTier
    byte_budget: int | None
    arrays: dict[_Key, list[np.ndarray]] = field(default_factory=dict)  # guarded by: lock
    specs: dict[_Key, TransformSpec] = field(default_factory=dict)  # guarded by: lock
    registered: dict[_Key, TransformSpec] = field(default_factory=dict)  # guarded by: lock
    # Hit/miss/eviction counts live on the metrics registry (thread-safe on
    # its own lock), so `stats` and `metrics` views can never disagree.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    # Reentrant: public entry points hold it while calling each other
    # (extend -> get/add) and the _enforce_budget/_evict helpers.
    lock: threading.RLock = field(default_factory=lambda: make_rlock("store"))

    def __post_init__(self) -> None:
        self.hit_counter = self.metrics.counter("repro_store_hits_total")
        self.miss_counter = self.metrics.counter("repro_store_misses_total")
        self.eviction_counter = self.metrics.counter(
            "repro_store_evictions_total")


class RepresentationStore:
    """Holds transformed copies of a corpus, keyed by representation name.

    Parameters
    ----------
    tier:
        The storage tier the representations notionally live on; used to
        answer simulated load-time questions.
    byte_budget:
        Maximum simulated bytes the store may hold *across all namespaces*.
        ``None`` (the default) means unbounded.  When an insertion pushes the
        total over the budget, least-recently-used representations are
        evicted until the total fits — the inserting namespace's own entries
        first, then (only if that namespace is drained) other namespaces'
        coldest entries, and including, if necessary, the representation just
        inserted (a single representation larger than the whole budget is
        never kept).
    """

    def __init__(self, tier: StorageTier = SSD,
                 byte_budget: int | None = None, *,
                 namespace: str = "",
                 metrics: MetricsRegistry | None = None,
                 _state: _StoreState | None = None) -> None:
        if _state is None:
            if byte_budget is not None and byte_budget <= 0:
                raise ValueError("byte_budget must be positive (or None)")
            _state = _StoreState(
                tier=tier, byte_budget=byte_budget,
                metrics=metrics if metrics is not None else MetricsRegistry())
        self._state = _state
        self.namespace = namespace

    def scoped(self, namespace: str) -> "RepresentationStore":
        """A view of this store confined to ``namespace``.

        The view shares arrays, budget and the eviction clock with every
        other view of the same store; only the keys it sees differ.  A
        catalog hands each table ``store.scoped(table_name)`` so shards share
        one byte budget without sharing representations.
        """
        if not isinstance(namespace, str) or not namespace:
            raise ValueError("namespace must be a non-empty string")
        return RepresentationStore(namespace=namespace, _state=self._state)

    @property
    def tier(self) -> StorageTier:
        return self._state.tier

    @property
    def byte_budget(self) -> int | None:
        return self._state.byte_budget

    def _key(self, name: str) -> _Key:
        return (self.namespace, name)

    # -- ingest ------------------------------------------------------------
    def materialize(self, images: np.ndarray,
                    specs: list[TransformSpec] | tuple[TransformSpec, ...]) -> None:
        """Transform ``images`` into every representation in ``specs`` and keep them.

        This is the ingest-time entry point, so the specs are also
        :meth:`register`-ed: later :meth:`append_rows` calls (new frames
        arriving) extend these representations.
        """
        if images.ndim != 4:
            raise ValueError(f"expected NHWC batch, got shape {images.shape}")
        for spec in specs:
            self.register(spec)
            self.add(spec, spec.apply_batch(images))

    def add(self, spec: TransformSpec, array: np.ndarray) -> None:
        """Store an already-transformed array under ``spec`` (marks it hot)."""
        expected = spec.shape
        if array.shape[1:] != expected:
            raise ValueError(
                f"array shape {array.shape[1:]} does not match spec {expected}")
        state = self._state
        key = self._key(spec.name)
        with state.lock:
            state.arrays.pop(key, None)
            state.arrays[key] = [array]
            state.specs[key] = spec
            self._enforce_budget(newest=key)

    def extend(self, spec: TransformSpec, array: np.ndarray) -> np.ndarray:
        """Append already-transformed rows and return the full extended array.

        This is the consolidating path: the stored chunks collapse so the
        whole-corpus array can be handed back.  When the caller does not need
        the full array (the ingest hot path), :meth:`append_rows` does the
        same bookkeeping in O(batch).  Returns the extended array — under a
        byte budget the store may evict it immediately, but the caller can
        still use it.
        """
        with self._state.lock:
            if spec not in self:
                raise KeyError(f"representation {spec.name!r} not materialized; "
                               f"cannot extend it")
            stored = self.get(spec)
            if array.shape[1:] != stored.shape[1:]:
                raise ValueError(
                    f"array shape {array.shape[1:]} does not match stored "
                    f"shape {stored.shape[1:]}")
            extended = np.concatenate([stored, array], axis=0)
            self.add(spec, extended)
            return extended

    def append_rows(self, spec: TransformSpec, array: np.ndarray) -> None:
        """Append already-transformed rows as a new chunk, in O(batch).

        The streaming-ingest counterpart of :meth:`extend`: the new rows
        land as one more chunk (mirroring the corpus segment they describe)
        and nothing is concatenated until a reader asks for the full array.
        Marks the entry hot and enforces the byte budget like any insertion.
        """
        state = self._state
        key = self._key(spec.name)
        with state.lock:
            try:
                chunks = state.arrays.pop(key)
            except KeyError:
                raise KeyError(f"representation {spec.name!r} not materialized; "
                               f"cannot extend it") from None
            if array.shape[1:] != chunks[0].shape[1:]:
                state.arrays[key] = chunks
                raise ValueError(
                    f"array shape {array.shape[1:]} does not match stored "
                    f"shape {chunks[0].shape[1:]}")
            chunks.append(array)
            state.arrays[key] = chunks
            self._enforce_budget(newest=key)

    def register(self, spec: TransformSpec) -> None:
        """Commit to materializing ``spec`` for new rows at ingest time.

        Registration is policy, not data: it survives :meth:`clear` and
        eviction, and is persisted with the database so a reloaded ONGOING
        deployment keeps materializing the same representations.
        """
        with self._state.lock:
            self._state.registered[self._key(spec.name)] = spec

    def registered_specs(self) -> list[TransformSpec]:
        """The specs committed to ingest-time materialization (this namespace)."""
        state = self._state
        with state.lock:
            return [state.registered[key] for key in sorted(state.registered)
                    if key[0] == self.namespace]

    # -- access --------------------------------------------------------------
    def __contains__(self, spec: TransformSpec) -> bool:
        with self._state.lock:
            return self._key(spec.name) in self._state.arrays

    def get(self, spec: TransformSpec) -> np.ndarray:
        """The stored representation array for ``spec`` (marks it hot)."""
        array = self.try_get(spec)
        if array is None:
            raise KeyError(f"representation {spec.name!r} not materialized; "
                           f"available: {sorted(self._names())}")
        return array

    def try_get(self, spec: TransformSpec) -> np.ndarray | None:
        """Like :meth:`get` but ``None`` on a miss, atomically.

        Concurrent shards sharing a byte budget can evict each other's
        entries between a caller's ``in`` check and its ``get`` — consumers
        that fall back to recomputing (the query executor) use this instead
        of the non-atomic check-then-get pair.
        """
        state = self._state
        key = self._key(spec.name)
        with state.lock:
            try:
                chunks = state.arrays.pop(key)
            except KeyError:
                state.miss_counter.inc()
                return None
            array = _consolidate(chunks)
            state.arrays[key] = [array]
            state.hit_counter.inc()
            return array

    def get_or_transform(self, spec: TransformSpec,
                         source_images: np.ndarray) -> np.ndarray:
        """Return the stored representation, transforming and caching on miss.

        Under a byte budget the freshly transformed array may be evicted
        immediately (when it alone exceeds the budget); the computed array is
        returned to the caller either way.
        """
        stored = self.try_get(spec)
        if stored is not None:
            return stored
        array = spec.apply_batch(source_images)
        self.add(spec, array)
        return array

    def _names(self) -> list[str]:
        # Reentrant lock: callers already inside the critical section
        # (specs, error paths in get) re-acquire harmlessly.
        with self._state.lock:
            return [key[1] for key in self._state.arrays
                    if key[0] == self.namespace]

    def specs(self) -> list[TransformSpec]:
        """The representation specs currently materialized (this namespace)."""
        state = self._state
        with state.lock:
            return [state.specs[(self.namespace, name)]
                    for name in sorted(self._names())]

    def arrays_by_recency(self) -> list[tuple[TransformSpec, np.ndarray]]:
        """This namespace's (spec, array) pairs, hottest first.

        Used by persistence to save the most valuable arrays under a size
        cap; reading through this method does not change recency (chunk
        lists are consolidated in place, which preserves insertion order).
        """
        state = self._state
        with state.lock:
            keys = [key for key in state.arrays if key[0] == self.namespace]
            pairs = []
            for key in reversed(keys):
                state.arrays[key] = [_consolidate(state.arrays[key])]
                pairs.append((state.specs[key], state.arrays[key][0]))
            return pairs

    def recency_rank(self, spec: TransformSpec) -> int | None:
        """Global recency of ``spec``'s entry (higher = hotter), or ``None``.

        The rank orders entries across *all* namespaces sharing this store,
        so persistence can spend a byte cap on the catalog's globally
        hottest arrays; reading it does not change recency.
        """
        state = self._state
        key = self._key(spec.name)
        with state.lock:
            for rank, stored_key in enumerate(state.arrays):
                if stored_key == key:
                    return rank
            return None

    def rows(self, spec: TransformSpec) -> int:
        """Number of rows stored for ``spec`` (0 when not materialized)."""
        with self._state.lock:
            chunks = self._state.arrays.get(self._key(spec.name))
            if chunks is None:
                return 0
            return sum(int(chunk.shape[0]) for chunk in chunks)

    def chunk_counts(self) -> dict[str, int]:
        """Chunks per materialized representation (this namespace) — a
        fragmentation gauge for stats endpoints."""
        state = self._state
        with state.lock:
            return {key[1]: len(chunks) for key, chunks in state.arrays.items()
                    if key[0] == self.namespace}

    def drop_oldest_rows(self, n: int) -> None:
        """Trim the first ``n`` rows from every array in this namespace.

        This is the store half of retention windows: when a table drops its
        oldest corpus rows, the stored representation arrays are trimmed in
        step so row ``i`` of an array keeps describing row ``i`` of the
        corpus.  Whole leading chunks are dropped without touching the
        survivors; only a chunk straddling the boundary is copied (never
        sliced — a view would pin the dropped rows' memory).  The freed
        bytes are credited against the global byte budget automatically —
        accounting reads current chunk lengths.  Recency, specs and
        registrations are unchanged; entries shorter than ``n`` become empty
        (and are topped back up lazily like any stale array).
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n == 0:
            return
        state = self._state
        with state.lock:
            for key in [key for key in state.arrays
                        if key[0] == self.namespace]:
                state.arrays[key] = _drop_chunk_rows(state.arrays[key], n)

    def clear(self) -> None:
        """Drop this namespace's stored arrays, keeping tier, budget and
        registrations (other namespaces are untouched)."""
        state = self._state
        with state.lock:
            for key in [key for key in state.arrays
                        if key[0] == self.namespace]:
                del state.arrays[key]
                del state.specs[key]

    def purge(self) -> None:
        """Drop this namespace entirely: arrays *and* registrations.

        Used when a table is detached from a catalog — nothing of the shard
        should keep occupying the shared budget or the ingest policy.
        """
        state = self._state
        with state.lock:
            self.clear()
            for key in [key for key in state.registered
                        if key[0] == self.namespace]:
                del state.registered[key]

    # -- accounting -------------------------------------------------------------
    def bytes_stored(self, per_image: bool = False) -> int:
        """Simulated bytes occupied by this namespace's representations."""
        state = self._state
        with state.lock:
            total = 0
            for key, chunks in state.arrays.items():
                if key[0] != self.namespace:
                    continue
                count = 1 if per_image else \
                    sum(int(chunk.shape[0]) for chunk in chunks)
                total += representation_bytes(state.specs[key]) * count
            return int(total)

    def total_bytes_stored(self) -> int:
        """Simulated bytes stored across *all* namespaces (what the budget caps)."""
        state = self._state
        with state.lock:
            return int(sum(self._entry_bytes(key) for key in state.arrays))

    @property
    def evictions(self) -> int:
        """Representations evicted so far (all namespaces) to stay within budget."""
        return int(self._state.metrics.value("repro_store_evictions_total"))

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this store's hit/miss/eviction counters live on."""
        return self._state.metrics

    def load_time(self, spec: TransformSpec) -> float:
        """Simulated seconds to load one image's representation from the tier."""
        return self.tier.read_time(representation_bytes(spec))

    def __len__(self) -> int:
        return len(self._names())

    # -- internals ---------------------------------------------------------
    def _entry_bytes(self, key: _Key) -> int:
        state = self._state
        rows = sum(int(chunk.shape[0]) for chunk in state.arrays[key])
        return representation_bytes(state.specs[key]) * rows

    def _evict(self, key: _Key) -> None:
        state = self._state
        del state.arrays[key]
        del state.specs[key]
        state.eviction_counter.inc()

    def _enforce_budget(self, newest: _Key | None = None) -> None:
        state = self._state
        budget = state.byte_budget
        if budget is None:
            return
        # A newcomer that alone exceeds the budget can never be kept: evict
        # just it, not the warm entries that did fit.
        if (newest in state.arrays
                and self._entry_bytes(newest) > budget):
            self._evict(newest)

        total = self.total_bytes_stored()
        # Namespace-aware fairness: the inserting namespace pays with its own
        # coldest entries first, so one hot camera cannot evict every other
        # shard's representations.
        if newest is not None:
            own = [key for key in state.arrays
                   if key[0] == newest[0] and key != newest]
            for key in own:
                if total <= budget:
                    return
                total -= self._entry_bytes(key)
                self._evict(key)
        while state.arrays and total > budget:
            key = next(iter(state.arrays))
            total -= self._entry_bytes(key)
            self._evict(key)


def _consolidate(chunks: list[np.ndarray]) -> np.ndarray:
    """Collapse a chunk list into one array (no copy when already one chunk)."""
    if len(chunks) == 1:
        return chunks[0]
    return np.concatenate(chunks, axis=0)


def _drop_chunk_rows(chunks: list[np.ndarray], n: int) -> list[np.ndarray]:
    """Drop the first ``n`` rows across a chunk list, freeing whole chunks."""
    remaining = n
    out: list[np.ndarray] = []
    for index, chunk in enumerate(chunks):
        rows = int(chunk.shape[0])
        if remaining >= rows:
            remaining -= rows
            continue
        if remaining > 0:
            # Copy, not slice: a view would pin the dropped rows' memory.
            out.append(chunk[remaining:].copy())
            remaining = 0
        else:
            out.append(chunk)
    if not out:
        # Keep the entry alive (schema and recency) with an empty chunk.
        out.append(chunks[-1][:0].copy())
    return out
