"""Representation store: pre-materialized input representations.

In the paper's ONGOING scenario, video is transformed into the required input
representations as it is ingested and those representations are stored on SSD,
so only the (much smaller) representation bytes are loaded at query time.
:class:`RepresentationStore` models that behaviour and is also a convenient
cache when evaluating many models that share a representation.

Two pieces make the store safe to keep alive for the lifetime of a growing
database:

* a **registration set** — representations a deployment has committed to
  materializing at ingest time (the ONGOING policy); registration survives
  :meth:`clear` and persistence, while the arrays themselves may come and go,
* an optional **byte budget** with least-recently-used eviction — whenever
  stored bytes exceed the budget the coldest representations are dropped.
  Evicted representations are recomputed on demand by the consumers
  (:meth:`get_or_transform`, the query executor), so a budget bounds memory
  without affecting query results.
"""

from __future__ import annotations

import numpy as np

from repro.storage.encoding import representation_bytes
from repro.storage.tiers import SSD, StorageTier
from repro.transforms.spec import TransformSpec

__all__ = ["RepresentationStore"]


class RepresentationStore:
    """Holds transformed copies of a corpus, keyed by representation name.

    Parameters
    ----------
    tier:
        The storage tier the representations notionally live on; used to
        answer simulated load-time questions.
    byte_budget:
        Maximum simulated bytes (:meth:`bytes_stored`) the store may hold.
        ``None`` (the default) means unbounded.  When an insertion pushes the
        total over the budget, least-recently-used representations are
        evicted until the total fits — including, if necessary, the
        representation just inserted (a single representation larger than
        the whole budget is never kept).
    """

    def __init__(self, tier: StorageTier = SSD,
                 byte_budget: int | None = None) -> None:
        if byte_budget is not None and byte_budget <= 0:
            raise ValueError("byte_budget must be positive (or None)")
        self.tier = tier
        self.byte_budget = byte_budget
        # Insertion order doubles as recency order: get()/add() move the
        # touched name to the end, so eviction pops from the front.
        self._arrays: dict[str, np.ndarray] = {}
        self._specs: dict[str, TransformSpec] = {}
        self._registered: dict[str, TransformSpec] = {}
        self._evictions = 0

    # -- ingest ------------------------------------------------------------
    def materialize(self, images: np.ndarray,
                    specs: list[TransformSpec] | tuple[TransformSpec, ...]) -> None:
        """Transform ``images`` into every representation in ``specs`` and keep them.

        This is the ingest-time entry point, so the specs are also
        :meth:`register`-ed: later :meth:`append` calls (new frames arriving)
        extend these representations.
        """
        if images.ndim != 4:
            raise ValueError(f"expected NHWC batch, got shape {images.shape}")
        for spec in specs:
            self.register(spec)
            self.add(spec, spec.apply_batch(images))

    def add(self, spec: TransformSpec, array: np.ndarray) -> None:
        """Store an already-transformed array under ``spec`` (marks it hot)."""
        expected = spec.shape
        if array.shape[1:] != expected:
            raise ValueError(
                f"array shape {array.shape[1:]} does not match spec {expected}")
        self._arrays.pop(spec.name, None)
        self._arrays[spec.name] = array
        self._specs[spec.name] = spec
        self._enforce_budget(newest=spec.name)

    def extend(self, spec: TransformSpec, array: np.ndarray) -> np.ndarray:
        """Append already-transformed rows to the stored array for ``spec``.

        This is how a growing corpus keeps full-corpus representations
        consistent: new rows are transformed once (at ingest under ONGOING,
        lazily at query time otherwise) and concatenated onto the stored
        array.  Returns the extended array — under a byte budget the store
        may evict it immediately, but the caller can still use it.
        """
        if spec not in self:
            raise KeyError(f"representation {spec.name!r} not materialized; "
                           f"cannot extend it")
        stored = self.get(spec)
        if array.shape[1:] != stored.shape[1:]:
            raise ValueError(
                f"array shape {array.shape[1:]} does not match stored "
                f"shape {stored.shape[1:]}")
        extended = np.concatenate([stored, array], axis=0)
        self.add(spec, extended)
        return extended

    def register(self, spec: TransformSpec) -> None:
        """Commit to materializing ``spec`` for new rows at ingest time.

        Registration is policy, not data: it survives :meth:`clear` and
        eviction, and is persisted with the database so a reloaded ONGOING
        deployment keeps materializing the same representations.
        """
        self._registered[spec.name] = spec

    def registered_specs(self) -> list[TransformSpec]:
        """The specs committed to ingest-time materialization."""
        return [self._registered[name] for name in sorted(self._registered)]

    # -- access --------------------------------------------------------------
    def __contains__(self, spec: TransformSpec) -> bool:
        return spec.name in self._arrays

    def get(self, spec: TransformSpec) -> np.ndarray:
        """The stored representation array for ``spec`` (marks it hot)."""
        try:
            array = self._arrays.pop(spec.name)
        except KeyError:
            raise KeyError(f"representation {spec.name!r} not materialized; "
                           f"available: {sorted(self._arrays)}") from None
        self._arrays[spec.name] = array
        return array

    def get_or_transform(self, spec: TransformSpec,
                         source_images: np.ndarray) -> np.ndarray:
        """Return the stored representation, transforming and caching on miss.

        Under a byte budget the freshly transformed array may be evicted
        immediately (when it alone exceeds the budget); the computed array is
        returned to the caller either way.
        """
        if spec in self:
            return self.get(spec)
        array = spec.apply_batch(source_images)
        self.add(spec, array)
        return array

    def specs(self) -> list[TransformSpec]:
        """The representation specs currently materialized."""
        return [self._specs[name] for name in sorted(self._arrays)]

    def rows(self, spec: TransformSpec) -> int:
        """Number of rows stored for ``spec`` (0 when not materialized)."""
        array = self._arrays.get(spec.name)
        return 0 if array is None else int(array.shape[0])

    def clear(self) -> None:
        """Drop all stored arrays, keeping tier, budget and registrations."""
        self._arrays.clear()
        self._specs.clear()

    # -- accounting -------------------------------------------------------------
    def bytes_stored(self, per_image: bool = False) -> int:
        """Total simulated bytes occupied by all stored representations."""
        total = 0
        for name, array in self._arrays.items():
            spec = self._specs[name]
            count = 1 if per_image else array.shape[0]
            total += representation_bytes(spec) * count
        return int(total)

    @property
    def evictions(self) -> int:
        """Representations evicted so far to stay within the byte budget."""
        return self._evictions

    def load_time(self, spec: TransformSpec) -> float:
        """Simulated seconds to load one image's representation from the tier."""
        return self.tier.read_time(representation_bytes(spec))

    def __len__(self) -> int:
        return len(self._arrays)

    # -- internals ---------------------------------------------------------
    def _entry_bytes(self, name: str) -> int:
        return representation_bytes(self._specs[name]) * \
            int(self._arrays[name].shape[0])

    def _evict(self, name: str) -> None:
        del self._arrays[name]
        del self._specs[name]
        self._evictions += 1

    def _enforce_budget(self, newest: str | None = None) -> None:
        if self.byte_budget is None:
            return
        # A newcomer that alone exceeds the budget can never be kept: evict
        # just it, not the warm entries that did fit.
        if (newest in self._arrays
                and self._entry_bytes(newest) > self.byte_budget):
            self._evict(newest)
        while self._arrays and self.bytes_stored() > self.byte_budget:
            self._evict(next(iter(self._arrays)))
