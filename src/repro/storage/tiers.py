"""Storage tiers with bandwidth and per-access latency."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StorageTier", "MEMORY", "SSD", "HDD", "CAMERA_LINK", "NETWORK",
           "get_tier"]


@dataclass(frozen=True)
class StorageTier:
    """A place image bytes can live before a query touches them.

    Parameters
    ----------
    name:
        Tier name.
    bandwidth_bytes_per_s:
        Sustained sequential read bandwidth.
    latency_s:
        Fixed per-object access latency (seek / request overhead).
    """

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    def read_time(self, num_bytes: int) -> float:
        """Seconds to read ``num_bytes`` from this tier."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s


#: Bytes already in host memory: effectively free to "load".
MEMORY = StorageTier("memory", bandwidth_bytes_per_s=50e9, latency_s=0.0)

#: A local SSD, the paper's ARCHIVE and ONGOING storage device.
SSD = StorageTier("ssd", bandwidth_bytes_per_s=500e6, latency_s=60e-6)

#: A spinning disk, for custom scenarios.
HDD = StorageTier("hdd", bandwidth_bytes_per_s=120e6, latency_s=6e-3)

#: A camera-to-host link; the paper treats this transfer as negligible.
CAMERA_LINK = StorageTier("camera", bandwidth_bytes_per_s=10e9, latency_s=0.0)

#: A datacenter network hop, for custom scenarios.
NETWORK = StorageTier("network", bandwidth_bytes_per_s=100e6, latency_s=200e-6)

_TIERS = {tier.name: tier for tier in (MEMORY, SSD, HDD, CAMERA_LINK, NETWORK)}


def get_tier(name: str) -> StorageTier:
    """Look up a built-in tier by name."""
    try:
        return _TIERS[name]
    except KeyError:
        raise KeyError(f"unknown storage tier {name!r}; "
                       f"available: {sorted(_TIERS)}") from None
