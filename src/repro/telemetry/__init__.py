"""Observability for the engine: metrics, traces, and their exports.

A stdlib-only package (its only engine dependency is the
:mod:`repro.locking` factory, keeping it a leaf every layer may import):

* :mod:`repro.telemetry.metrics` — a thread-safe named
  Counter/Gauge/Histogram registry with Prometheus-style labels; the
  engine's well-known metrics are pre-declared in
  :data:`~repro.telemetry.metrics.CATALOG`;
* :mod:`repro.telemetry.trace` — per-query span trees via context
  managers, safe under fan-out threads, with a ring-buffered
  :class:`~repro.telemetry.trace.Tracer`;
* :mod:`repro.telemetry.export` — JSON snapshot and Prometheus text
  exposition renderers.

``db.telemetry()`` returns ``{"metrics": ..., "traces": ...}`` for an
in-process engine; the server's ``metrics`` wire command serves the same
snapshot (or its text exposition) remotely, and ``EXPLAIN ANALYZE <sql>``
turns one query's trace into a plan tree annotated with estimated vs.
actual selectivity per node.
"""

from repro.telemetry.export import render_json, render_prometheus
from repro.telemetry.metrics import (CATALOG, DEFAULT_BUCKETS, Counter,
                                     Gauge, Histogram, MetricSpec,
                                     MetricsRegistry)
from repro.telemetry.trace import NO_SPAN, Span, Trace, Tracer

__all__ = ["MetricsRegistry", "MetricSpec", "Counter", "Gauge", "Histogram",
           "CATALOG", "DEFAULT_BUCKETS", "Tracer", "Trace", "Span",
           "NO_SPAN", "render_json", "render_prometheus"]
