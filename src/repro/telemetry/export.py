"""Exporting metrics: JSON snapshots and Prometheus text exposition.

The JSON side is trivial — :meth:`MetricsRegistry.snapshot` is already
JSON-safe and :func:`render_json` just serializes it.  The text side
renders the same snapshot in the Prometheus exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` headers for every declared metric (even
with zero series, so scrapers and the CI smoke check always see the full
catalog), one sample line per series, and histograms expanded into
cumulative ``_bucket{le=...}`` samples plus ``_sum`` / ``_count``.
"""

from __future__ import annotations

import json

__all__ = ["render_json", "render_prometheus"]


def render_json(snapshot: dict) -> str:
    """The snapshot as stable, indented JSON text."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape(str(value))}"'
                    for name, value in sorted(labels.items()))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def _sample(name: str, labels: dict, value: float) -> str:
    return f"{name}{_format_labels(labels)} {_format_value(value)}"


def render_prometheus(snapshot: dict) -> str:
    """The snapshot in Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        lines.append(f"# HELP {name} {_escape(entry.get('help', ''))}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for series in entry.get("series", ()):
            labels = dict(series.get("labels") or {})
            if entry["type"] == "histogram":
                for bound, count in series["buckets"].items():
                    lines.append(_sample(f"{name}_bucket",
                                         {**labels, "le": bound}, count))
                lines.append(_sample(f"{name}_sum", labels, series["sum"]))
                lines.append(_sample(f"{name}_count", labels,
                                     series["count"]))
            else:
                lines.append(_sample(name, labels, series["value"]))
    return "\n".join(lines) + "\n"
