"""Thread-safe named metrics: Counter / Gauge / Histogram behind a registry.

One :class:`MetricsRegistry` per :class:`~repro.db.database.VisualDatabase`
(components built standalone create their own private registry, so tests
keep per-instance counts).  Every metric is *named* and *labelled* the
Prometheus way — ``repro_plan_cache_lookups_total{outcome="hit"}`` — and the
engine's well-known metrics are declared up front in :data:`CATALOG` so an
exposition always carries ``# HELP`` / ``# TYPE`` for each of them, traffic
or not (dashboards and the CI smoke check key off the declared names).

Everything here is lock-disciplined the same way as the engine proper: the
registry and its metrics share one reentrant lock from
:func:`repro.locking.make_rlock`, the guarded attributes are annotated and
manifest-checked (:mod:`repro.analysis.guards`), and snapshot methods return
copies, never live references.  Gauge callbacks (e.g. a queue depth read)
are invoked *outside* the lock, keeping it a leaf in the lock-order graph.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable

from repro.locking import make_rlock

__all__ = ["CATALOG", "DEFAULT_BUCKETS", "MetricSpec", "MetricsRegistry",
           "Counter", "Gauge", "Histogram"]

#: Default latency buckets (seconds): 100µs up to 10s, Prometheus-style.
DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                   0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: name, kind, help text and label names."""

    name: str
    kind: str
    help: str
    labels: tuple = ()
    buckets: tuple | None = None


#: Every metric the engine emits, declared up front.  A registry created
#: without an explicit catalog pre-registers all of these, so the Prometheus
#: exposition names them even before any traffic touches them.
CATALOG: tuple[MetricSpec, ...] = (
    MetricSpec("repro_query_plan_seconds", "histogram",
               "Time spent resolving a query's plan (parse + cascade "
               "selection, or a plan-cache hit), per table.", ("table",)),
    MetricSpec("repro_query_execute_seconds", "histogram",
               "End-to-end execution time of one query, per table.",
               ("table",)),
    MetricSpec("repro_query_snapshot_capture_seconds", "histogram",
               "Time to capture a frozen shard snapshot under the shard "
               "lock.", ("table",)),
    MetricSpec("repro_query_merge_seconds", "histogram",
               "Time to merge freshly classified labels back into the "
               "shard.", ("table",)),
    MetricSpec("repro_query_rows_classified_total", "counter",
               "Rows actually classified by a cascade, per table and "
               "predicate category.", ("table", "category")),
    MetricSpec("repro_cascade_level_evaluated_total", "counter",
               "Images reaching each cascade level.", ("cascade", "level")),
    MetricSpec("repro_cascade_level_decided_total", "counter",
               "Images decided at each cascade level.", ("cascade", "level")),
    MetricSpec("repro_wal_append_seconds", "histogram",
               "WAL record append latency (payload write + fsync'd log "
               "line), per table.", ("table",)),
    MetricSpec("repro_wal_replay_seconds", "histogram",
               "WAL replay duration on recovery, per table.", ("table",)),
    MetricSpec("repro_store_hits_total", "counter",
               "Representation-store lookups served from a cached array."),
    MetricSpec("repro_store_misses_total", "counter",
               "Representation-store lookups that had to run the transform."),
    MetricSpec("repro_store_evictions_total", "counter",
               "Representations evicted by the byte-budget LRU."),
    MetricSpec("repro_plan_cache_lookups_total", "counter",
               "Plan-cache lookups by outcome (hit | rebind | miss).",
               ("outcome",)),
    MetricSpec("repro_plan_cache_invalidations_total", "counter",
               "Whole-plan-cache invalidations (scenario, catalog or "
               "retention changes)."),
    MetricSpec("repro_plan_cache_evictions_total", "counter",
               "Plan-cache LRU evictions."),
    MetricSpec("repro_admission_queries_total", "counter",
               "Admission-controller events (submitted | rejected | "
               "completed | failed).", ("event",)),
    MetricSpec("repro_admission_queue_depth", "gauge",
               "Queries waiting in the admission queue right now."),
    MetricSpec("repro_queries_total", "counter",
               "Served query outcomes (completed | failed | timeouts | "
               "rejected).", ("outcome",)),
    MetricSpec("repro_server_request_seconds", "histogram",
               "Wire-request handling latency by command.", ("cmd",)),
)


class _Metric:
    """Shared plumbing: label validation and the registry's lock."""

    kind = ""

    def __init__(self, name: str, help: str, labels: tuple, lock) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._lock = lock
        self._series: dict = {}  # guarded by: self._lock

    def _key(self, labels: dict) -> tuple:
        if sorted(labels) != sorted(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.label_names)}, got {sorted(labels)}")
        return tuple(str(labels[name]) for name in self.label_names)

    def _labels_dict(self, key: tuple) -> dict:
        return dict(zip(self.label_names, key))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class Counter(_Metric):
    """A monotonically increasing count, one series per label combination."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def series(self) -> list[dict]:
        """JSON-safe series snapshot (copies, never live state)."""
        with self._lock:
            items = sorted(self._series.items())
        return [{"labels": self._labels_dict(key), "value": float(value)}
                for key, value in items]


class Gauge(_Metric):
    """A value that goes up and down; series may be set or callback-backed."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: tuple, lock) -> None:
        super().__init__(name, help, labels, lock)
        self._functions: dict = {}  # guarded by: self._lock

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def set_function(self, fn: Callable[[], float], **labels) -> None:
        """Back one series with a callable sampled at read time (e.g. a
        queue's current depth) — invoked outside the registry lock."""
        key = self._key(labels)
        with self._lock:
            self._functions[key] = fn

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            fn = self._functions.get(key)
            if fn is None:
                return float(self._series.get(key, 0.0))
        return float(fn())

    def series(self) -> list[dict]:
        with self._lock:
            values = dict(self._series)
            functions = dict(self._functions)
        for key, fn in functions.items():
            values[key] = float(fn())
        return [{"labels": self._labels_dict(key), "value": float(value)}
                for key, value in sorted(values.items())]


class Histogram(_Metric):
    """Observations bucketed by upper bound (cumulative at export time)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labels: tuple, lock,
                 buckets: tuple = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labels, lock)
        self.buckets = tuple(sorted(float(bound) for bound in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        # Last slot catches observations above every bound (+Inf only).
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "count": 0, "sum": 0.0,
                    "counts": [0] * (len(self.buckets) + 1)}
            series["count"] += 1
            series["sum"] += float(value)
            series["counts"][index] += 1

    def value(self, **labels) -> float:
        """The observation *count* for one series (0 when unseen)."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return float(series["count"]) if series is not None else 0.0

    def series(self) -> list[dict]:
        with self._lock:
            items = [(key, series["count"], series["sum"],
                      list(series["counts"]))
                     for key, series in sorted(self._series.items())]
        out = []
        for key, count, total, counts in items:
            cumulative: dict[str, int] = {}
            running = 0
            for bound, n in zip(self.buckets, counts):
                running += n
                cumulative[format_bound(bound)] = running
            cumulative["+Inf"] = count
            out.append({"labels": self._labels_dict(key), "count": count,
                        "sum": total, "buckets": cumulative})
        return out


def format_bound(bound: float) -> str:
    """A bucket bound as Prometheus spells it (integral bounds without .0)."""
    return f"{bound:g}"


class MetricsRegistry:
    """All of one engine's metrics, by name.

    Components take ``metrics: MetricsRegistry | None = None`` and build a
    private registry when handed ``None``; a :class:`VisualDatabase` creates
    one and injects it everywhere so ``stats`` and ``metrics`` views agree.
    """

    def __init__(self, catalog: tuple = CATALOG) -> None:
        self._lock = make_rlock("telemetry-metrics")
        self._metrics: dict = {}  # guarded by: self._lock
        for spec in catalog:
            self._metrics[spec.name] = self._build(
                spec.kind, spec.name, spec.help, spec.labels, spec.buckets)

    def _build(self, kind: str, name: str, help: str, labels: tuple,
               buckets: tuple | None):
        if kind == "counter":
            return Counter(name, help, labels, self._lock)
        if kind == "gauge":
            return Gauge(name, help, labels, self._lock)
        if kind == "histogram":
            return Histogram(name, help, labels, self._lock,
                             buckets=buckets or DEFAULT_BUCKETS)
        raise ValueError(f"unknown metric kind {kind!r}")

    def _named(self, name: str, kind: str, help: str, labels: tuple,
               buckets: tuple | None = None):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = self._build(
                    kind, name, help, labels, buckets)
        if metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {kind}")
        return metric

    def counter(self, name: str, help: str = "",
                labels: tuple = ()) -> Counter:
        """The named counter (pre-declared or created on first use)."""
        return self._named(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> Gauge:
        return self._named(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", labels: tuple = (),
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._named(name, "histogram", help, labels, buckets)

    def value(self, name: str, **labels) -> float:
        """One series' current value; 0.0 for an unknown metric/series."""
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        return metric.value(**labels)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Every metric's JSON-safe state: ``{name: {type, help, labels,
        series}}`` — a deep copy, safe to serialize or mutate."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: {"type": metric.kind, "help": metric.help,
                       "labels": list(metric.label_names),
                       "series": metric.series()}
                for name, metric in metrics}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self.names())} metrics)"
