"""Per-query trace spans: where one query's wall time actually went.

A :class:`Tracer` hands out :class:`Trace` objects — one per query (or
ingest) — each a tree of :class:`Span` context managers::

    trace = tracer.trace("query", sql=sql)
    with trace.root as span:
        with span.child("plan"):
            ...
        with span.child("execute", table="cam_0") as execute_span:
            execute_span.annotate(rows=42)

Spans are safe under fan-out: every span of a trace shares the trace's
reentrant lock, and child spans are handed to worker threads explicitly
(``executor.execute(plan, span=...)``) rather than via thread-local state,
so a ``ThreadPoolExecutor`` shard still lands its spans under the right
parent.  Instrumented code takes ``span=NO_SPAN`` by default — the no-op
singleton absorbs ``child``/``annotate`` calls, so hot paths never branch
on ``None``.

The tracer keeps the last ``keep`` traces in a ring buffer;
``db.telemetry()`` exposes them alongside the metrics snapshot.
"""

from __future__ import annotations

import time
from collections import deque

from repro.locking import make_lock, make_rlock

__all__ = ["Span", "Trace", "Tracer", "NO_SPAN"]


class Span:
    """One timed region of a trace; a context manager producing children."""

    def __init__(self, name: str, lock, **attrs) -> None:
        self.name = name
        self._start = time.perf_counter()
        self._attrs = dict(attrs)  # guarded by: self._lock
        self._children: list = []  # guarded by: self._lock
        self._elapsed_s: float | None = None  # guarded by: self._lock
        self._error: str | None = None  # guarded by: self._lock
        # Attached last: the guarded-write sanitizer reads writes made
        # before the lock exists as construction, which these are.
        self._lock = lock

    def child(self, name: str, **attrs) -> "Span":
        """A new child span (sharing this trace's lock), started now."""
        span = Span(name, self._lock, **attrs)
        with self._lock:
            self._children.append(span)
        return span

    def annotate(self, **attrs) -> None:
        """Attach key/value facts to this span (rows in/out, savings, ...)."""
        with self._lock:
            self._attrs.update(attrs)

    @property
    def elapsed_s(self) -> float | None:
        """Seconds from start to exit; ``None`` while the span is open."""
        with self._lock:
            return self._elapsed_s

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        with self._lock:
            self._elapsed_s = elapsed
            if exc_type is not None:
                self._error = f"{exc_type.__name__}: {exc}"
        return False

    def to_dict(self) -> dict:
        """This span and its subtree as JSON-safe data (a deep copy)."""
        with self._lock:
            return self._as_dict()

    def _as_dict(self) -> dict:
        node: dict = {"name": self.name, "elapsed_s": self._elapsed_s,
                      "attrs": dict(self._attrs),
                      "children": [child._as_dict()
                                   for child in self._children]}
        if self._error is not None:
            node["error"] = self._error
        return node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, elapsed_s={self.elapsed_s})"


class Trace:
    """One query's span tree: an id plus the root :class:`Span`."""

    def __init__(self, trace_id: str, name: str, **attrs) -> None:
        # One reentrant lock shared by every span of the tree, so a parent
        # serializing its subtree can walk children without re-deadlocking.
        self._lock = make_rlock("telemetry-trace")
        self.trace_id = trace_id
        self.root = Span(name, self._lock, **attrs)

    def to_dict(self) -> dict:
        node = self.root.to_dict()
        node["trace_id"] = self.trace_id
        return node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({self.trace_id!r}, {self.root.name!r})"


class _NoopSpan:
    """The do-nothing span: ``child`` returns itself, everything else is a
    no-op, so instrumented code never branches on ``None``."""

    __slots__ = ()
    name = "noop"
    elapsed_s = None

    def child(self, name: str, **attrs) -> "_NoopSpan":
        return self

    def annotate(self, **attrs) -> None:
        return None

    def to_dict(self) -> dict:
        return {"name": "noop", "elapsed_s": None, "attrs": {},
                "children": []}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NO_SPAN"


#: The shared no-op span instrumented signatures default to.
NO_SPAN = _NoopSpan()


class Tracer:
    """Hands out traces and remembers the most recent ``keep`` of them."""

    def __init__(self, keep: int = 32) -> None:
        if keep < 1:
            raise ValueError("keep must be positive")
        self.keep = keep
        self._next_id = 1  # guarded by: self._lock
        self._recent: deque = deque(maxlen=keep)  # guarded by: self._lock
        # Attached last, so the guarded-write sanitizer reads the two
        # assignments above as construction.
        self._lock = make_lock("telemetry-tracer")

    def trace(self, name: str, **attrs) -> Trace:
        """A new :class:`Trace` (ids are process-ordered: t000001, ...)."""
        with self._lock:
            trace_id = f"t{self._next_id:06d}"
            self._next_id += 1
        trace = Trace(trace_id, name, **attrs)
        with self._lock:
            self._recent.append(trace)
        return trace

    def recent(self) -> list[dict]:
        """The retained traces, oldest first, as JSON-safe dicts."""
        with self._lock:
            traces = list(self._recent)
        return [trace.to_dict() for trace in traces]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(keep={self.keep})"
