"""Input transformation functions (the paper's set ``F``).

A *physical representation* of an image is produced by resizing it and/or
reducing its color information.  TAHOMA treats the choice of representation as
part of query optimization: smaller representations are cheaper to load,
cheaper to transform and enable much smaller CNNs.

The public surface is:

* low-level image ops (:mod:`repro.transforms.resize`,
  :mod:`repro.transforms.color`, :mod:`repro.transforms.ops`),
* :class:`~repro.transforms.spec.TransformSpec`, the declarative description
  of one representation (resolution + color mode), and
* :func:`~repro.transforms.spec.standard_transform_grid`, the paper's default
  grid of 4 resolutions x 5 color variants.
"""

from repro.transforms.color import (
    COLOR_MODES,
    channels_for_mode,
    extract_channel,
    quantize_color_depth,
    to_color_mode,
    to_grayscale,
)
from repro.transforms.compose import Compose
from repro.transforms.ops import horizontal_flip, normalize
from repro.transforms.resize import resize, resize_area, resize_bilinear, resize_nearest
from repro.transforms.spec import (
    PAPER_COLOR_MODES,
    PAPER_RESOLUTIONS,
    TransformSpec,
    standard_transform_grid,
    transform_subsets,
)

__all__ = [
    "resize",
    "resize_area",
    "resize_bilinear",
    "resize_nearest",
    "to_grayscale",
    "extract_channel",
    "to_color_mode",
    "quantize_color_depth",
    "channels_for_mode",
    "COLOR_MODES",
    "normalize",
    "horizontal_flip",
    "Compose",
    "TransformSpec",
    "standard_transform_grid",
    "transform_subsets",
    "PAPER_RESOLUTIONS",
    "PAPER_COLOR_MODES",
]
