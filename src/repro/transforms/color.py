"""Color-space transformations: channel extraction, grayscale, depth reduction.

The paper's five color variants per resolution are: full 3-channel color, the
individual red/green/blue channels, and single-channel grayscale.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "COLOR_MODES",
    "channels_for_mode",
    "to_grayscale",
    "extract_channel",
    "to_color_mode",
    "quantize_color_depth",
]

#: The paper's five color variants.
COLOR_MODES = ("rgb", "red", "green", "blue", "gray")

_CHANNEL_INDEX = {"red": 0, "green": 1, "blue": 2}

#: ITU-R BT.601 luma coefficients.
_LUMA = np.array([0.299, 0.587, 0.114], dtype=np.float64)


def channels_for_mode(mode: str) -> int:
    """Number of channels in the representation produced by ``mode``."""
    if mode == "rgb":
        return 3
    if mode in COLOR_MODES:
        return 1
    raise ValueError(f"unknown color mode {mode!r}; choose from {COLOR_MODES}")


def _check_rgb(image: np.ndarray) -> None:
    if image.shape[-1] != 3:
        raise ValueError(
            f"expected a 3-channel image, got {image.shape[-1]} channels")


def to_grayscale(image: np.ndarray) -> np.ndarray:
    # shape: (..., 3) -> (..., 1)
    """Convert an RGB image (HWC or NHWC) to single-channel grayscale."""
    _check_rgb(image)
    gray = image @ _LUMA
    return gray[..., None]


def extract_channel(image: np.ndarray, channel: str) -> np.ndarray:
    # shape: (..., 3) -> (..., 1)
    """Extract one of the ``red``/``green``/``blue`` channels as a 1-channel image."""
    _check_rgb(image)
    try:
        index = _CHANNEL_INDEX[channel]
    except KeyError:
        raise ValueError(f"unknown channel {channel!r}; "
                         f"choose from {sorted(_CHANNEL_INDEX)}") from None
    return image[..., index:index + 1].copy()


def to_color_mode(image: np.ndarray, mode: str) -> np.ndarray:
    # shape: (..., 3) -> (..., C')
    """Apply one of the paper's color variants to an RGB image."""
    if mode == "rgb":
        _check_rgb(image)
        return image.copy()
    if mode == "gray":
        return to_grayscale(image)
    if mode in _CHANNEL_INDEX:
        return extract_channel(image, mode)
    raise ValueError(f"unknown color mode {mode!r}; choose from {COLOR_MODES}")


def quantize_color_depth(image: np.ndarray, bits: int) -> np.ndarray:
    # shape: (...) -> (...)
    """Reduce color depth to ``bits`` bits per channel (values stay in [0, 1]).

    Not part of the paper's default grid but listed as one of the physical
    representation knobs; exposed for the extension benchmarks.
    """
    if not 1 <= bits <= 8:
        raise ValueError("bits must be between 1 and 8")
    levels = 2 ** bits - 1
    return np.round(np.clip(image, 0.0, 1.0) * levels) / levels
