"""Function composition for image transformations."""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["Compose"]


class Compose:
    """Apply a sequence of image transformations in order.

    Each step is a callable taking and returning an image array.  ``Compose``
    itself is a callable, so composed pipelines can be nested.
    """

    def __init__(self, steps: list[Callable[[np.ndarray], np.ndarray]]) -> None:
        if not steps:
            raise ValueError("Compose requires at least one step")
        self.steps = list(steps)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        out = image
        for step in self.steps:
            out = step(out)
        return out

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Compose({len(self.steps)} steps)"
