"""Miscellaneous image operations: normalization and augmentation flips."""

from __future__ import annotations

import numpy as np

__all__ = ["normalize", "horizontal_flip"]


def normalize(image: np.ndarray, mean: float | np.ndarray = 0.5,
              std: float | np.ndarray = 0.5) -> np.ndarray:
    # shape: (...) -> (...)
    """Standardize pixel values: ``(image - mean) / std``."""
    std_arr = np.asarray(std, dtype=np.float64)
    if np.any(std_arr == 0):
        raise ValueError("std must be non-zero")
    return (image - mean) / std_arr


def horizontal_flip(image: np.ndarray) -> np.ndarray:
    # shape: (..., H, W, C) -> (..., H, W, C)
    """Mirror an HWC image (or NHWC batch) left-to-right.

    This is the data-augmentation operation the paper uses to double its
    training sets.
    """
    if image.ndim == 3:
        return image[:, ::-1, :].copy()
    if image.ndim == 4:
        return image[:, :, ::-1, :].copy()
    raise ValueError(f"expected HWC or NHWC array, got shape {image.shape}")
